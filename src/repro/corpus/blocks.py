"""Reusable instruction-sequence builders for the benchmark corpus.

The corpus programs re-create the *structure* of the paper's 19 benchmarks
(packet parsing with bounds checks, per-CPU counters in array maps, header
rewriting, redirects, tracepoint accounting) out of these building blocks.
The blocks intentionally reproduce the slightly-redundant instruction
patterns clang emits for such code — separate zero-initialisation of adjacent
stack slots, register copies before stores, repeated loads — because those
are precisely the patterns K2's search learns to compact (paper §9).
"""

from __future__ import annotations

from typing import List

from ..bpf import builders as b
from ..bpf.helpers import HelperId
from ..bpf.instruction import Instruction
from ..bpf.opcodes import JmpOp, MemSize

__all__ = [
    "load_packet_pointers", "bounds_check", "parse_ethertype",
    "stack_zero_key", "stack_store_key", "array_map_increment",
    "map_lookup_value", "swap_mac_addresses", "decrement_ttl",
    "return_action", "clang_style_counter_init",
]


def load_packet_pointers(data_reg: int = 2, end_reg: int = 3) -> List[Instruction]:
    """``data_reg = ctx->data; end_reg = ctx->data_end`` (XDP prologue)."""
    return [
        b.LDX_MEM(MemSize.W, data_reg, 1, 0),
        b.LDX_MEM(MemSize.W, end_reg, 1, 4),
    ]


def bounds_check(data_reg: int, end_reg: int, length: int,
                 fail_offset: int, scratch_reg: int = 4) -> List[Instruction]:
    """``if (data + length > data_end) goto +fail_offset`` (jump on failure).

    ``fail_offset`` is relative to the instruction *after* the jump, exactly
    like BPF jump offsets.
    """
    return [
        b.MOV64_REG(scratch_reg, data_reg),
        b.ADD64_IMM(scratch_reg, length),
        b.JMP_REG(JmpOp.JGT, scratch_reg, end_reg, fail_offset),
    ]


def parse_ethertype(data_reg: int, proto_reg: int) -> List[Instruction]:
    """Load the 16-bit ethertype (network byte order) into ``proto_reg``."""
    return [
        b.LDX_MEM(MemSize.H, proto_reg, data_reg, 12),
        b.ENDIAN_BE(proto_reg, 16),
    ]


def stack_zero_key(offset: int, width: int = 4,
                   scratch_reg: int = 6) -> List[Instruction]:
    """Zero a stack slot the way clang does it: through a zeroed register."""
    size = MemSize.W if width == 4 else MemSize.DW
    return [
        b.MOV64_IMM(scratch_reg, 0),
        b.STX_MEM(size, 10, scratch_reg, offset),
    ]


def stack_store_key(value_reg: int, offset: int,
                    width: int = 4) -> List[Instruction]:
    """Store a register-held key into the stack slot used for map calls."""
    size = MemSize.W if width == 4 else MemSize.DW
    return [b.STX_MEM(size, 10, value_reg, offset)]


def clang_style_counter_init(first_offset: int = -4,
                             second_offset: int = -8,
                             scratch_reg: int = 7) -> List[Instruction]:
    """The xdp_pktcntr pattern from paper §9 example 1.

    Two adjacent 32-bit stack slots are zero-initialised through a register;
    K2 coalesces this into a single 64-bit immediate store.
    """
    return [
        b.MOV64_IMM(scratch_reg, 0),
        b.STX_MEM(MemSize.W, 10, scratch_reg, first_offset),
        b.STX_MEM(MemSize.W, 10, scratch_reg, second_offset),
    ]


def map_lookup_value(map_fd: int, key_stack_offset: int,
                     miss_offset: int) -> List[Instruction]:
    """``r0 = bpf_map_lookup_elem(map, &key); if (!r0) goto +miss_offset``."""
    return [
        b.MOV64_REG(2, 10),
        b.ADD64_IMM(2, key_stack_offset),
        b.LD_MAP_FD(1, map_fd),
        b.CALL_HELPER(HelperId.MAP_LOOKUP_ELEM),
        b.JEQ_IMM(0, 0, miss_offset),
    ]


def array_map_increment(map_fd: int, key_index: int,
                        key_stack_offset: int = -4,
                        increment: int = 1) -> List[Instruction]:
    """Increment slot ``key_index`` of a per-CPU style array counter map.

    Produces the canonical sequence: build the key on the stack, look it up,
    NULL-check, then ``xadd`` the value — 10 instructions, the shape of
    ``xdp_pktcntr`` / ``xdp_exception`` style accounting code.
    """
    sequence = [
        b.MOV64_IMM(6, key_index),
        b.STX_MEM(MemSize.W, 10, 6, key_stack_offset),
    ]
    sequence += map_lookup_value(map_fd, key_stack_offset, miss_offset=2)
    sequence += [
        b.MOV64_IMM(6, increment),
        b.STX_XADD(MemSize.DW, 0, 6, 0),
    ]
    return sequence


def swap_mac_addresses(data_reg: int = 2) -> List[Instruction]:
    """Swap source and destination MAC addresses byte-group by byte-group.

    This is the (intentionally) suboptimal six-load/six-store pattern from
    ``xdp2_kern`` that K2 compacts with wider accesses (paper Table 11).
    """
    sequence: List[Instruction] = []
    for offset in range(0, 6, 2):
        sequence += [
            b.LDX_MEM(MemSize.H, 6, data_reg, offset),
            b.LDX_MEM(MemSize.H, 7, data_reg, offset + 6),
            b.STX_MEM(MemSize.H, data_reg, 7, offset),
            b.STX_MEM(MemSize.H, data_reg, 6, offset + 6),
        ]
    return sequence


def decrement_ttl(data_reg: int = 2, ttl_offset: int = 22) -> List[Instruction]:
    """Decrement the IPv4 TTL field in place (simplified: no checksum fix)."""
    return [
        b.LDX_MEM(MemSize.B, 6, data_reg, ttl_offset),
        b.ADD64_IMM(6, -1),
        b.STX_MEM(MemSize.B, data_reg, 6, ttl_offset),
    ]


def return_action(action: int) -> List[Instruction]:
    """``return action`` for XDP programs."""
    return [b.MOV64_IMM(0, action), b.EXIT_INSN()]
