"""The benchmark corpus: reproductions of the paper's 19 benchmark programs.

The paper evaluates K2 on programs drawn from the Linux kernel's BPF samples
(benchmarks 1-13), Facebook's Katran load balancer (14, 19), the hXDP paper
(15, 16) and Cilium (17, 18).  The original clang-compiled object files are
not redistributable, so each benchmark is re-created here as hand-written
bytecode with the same structure the paper describes: packet parsing with
bounds checks, per-CPU array counters, device/CPU map redirects, header
rewriting, tracepoint accounting and socket-level filtering — including the
slightly-redundant instruction patterns clang emits, which are K2's
optimization targets (see DESIGN.md, "Substitutions").

Instruction counts therefore differ from the paper's Table 1, but the
relative behaviour (how much K2 can compress each class of program) is
preserved.  ``xdp_router_ipv4``, ``xdp_fwd``, ``recvmsg4`` and
``xdp-balancer`` are scaled-down versions of much larger originals.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from ..bpf.asm import assemble
from ..bpf.hooks import HookType
from ..bpf.maps import MapDef, MapEnvironment, MapType
from ..bpf.program import BpfProgram

__all__ = ["BenchmarkProgram", "CORPUS", "LONG_BENCHMARKS", "get_benchmark",
           "benchmark_names", "all_benchmarks"]


@dataclasses.dataclass
class BenchmarkProgram:
    """One corpus entry: the program plus its provenance metadata."""

    name: str
    origin: str               # "linux", "facebook", "hxdp", "cilium"
    description: str
    hook_type: HookType
    build: Callable[[], BpfProgram]
    paper_index: int          # the benchmark number used in Table 1
    scaled_down: bool = False

    def program(self) -> BpfProgram:
        return self.build()


# --------------------------------------------------------------------------- #
# Map environments shared by several benchmarks
# --------------------------------------------------------------------------- #
def _counter_maps() -> MapEnvironment:
    return MapEnvironment([
        MapDef(fd=1, name="counters", map_type=MapType.PERCPU_ARRAY,
               key_size=4, value_size=8, max_entries=4),
    ])


def _stats_and_dev_maps() -> MapEnvironment:
    return MapEnvironment([
        MapDef(fd=1, name="stats", map_type=MapType.PERCPU_ARRAY,
               key_size=4, value_size=8, max_entries=8),
        MapDef(fd=2, name="tx_port", map_type=MapType.DEVMAP,
               key_size=4, value_size=4, max_entries=8),
    ])


def _proto_count_maps() -> MapEnvironment:
    return MapEnvironment([
        MapDef(fd=1, name="rxcnt", map_type=MapType.PERCPU_ARRAY,
               key_size=4, value_size=8, max_entries=256),
    ])


def _flow_maps() -> MapEnvironment:
    return MapEnvironment([
        MapDef(fd=1, name="flow_table", map_type=MapType.HASH,
               key_size=8, value_size=8, max_entries=64),
        MapDef(fd=2, name="stats", map_type=MapType.PERCPU_ARRAY,
               key_size=4, value_size=8, max_entries=8),
    ])


def _make(name: str, hook: HookType, maps: Optional[MapEnvironment],
          text: str) -> BpfProgram:
    return BpfProgram(instructions=assemble(text), hook=HookType and
                      __import__("repro.bpf.hooks", fromlist=["get_hook"]).get_hook(hook),
                      maps=maps or MapEnvironment(), name=name)


# --------------------------------------------------------------------------- #
# 1-5: kernel tracepoint/devmap/cpumap accounting programs
# --------------------------------------------------------------------------- #
_XDP_EXCEPTION = """
    ; count exceptions per action code (bounded to the map size)
    ldxw r6, [r1+12]
    and64 r6, 3
    mov64 r7, 0
    stxw [r10-4], r7
    stxw [r10-4], r6
    mov64 r2, r10
    add64 r2, -4
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, out
    mov64 r6, 1
    xadd64 [r0+0], r6
out:
    mov64 r0, 2
    exit
"""

_XDP_REDIRECT_ERR = """
    ; count redirect errors keyed by queue index
    ldxw r6, [r1+16]
    and64 r6, 3
    mov64 r7, r6
    stxw [r10-4], r7
    mov64 r2, r10
    add64 r2, -4
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, out
    mov64 r6, 1
    mov64 r7, r6
    xadd64 [r0+0], r7
out:
    mov64 r0, 2
    exit
"""

_XDP_DEVMAP_XMIT = """
    ; account transmitted/dropped packet pairs, then update a second slot
    mov64 r8, r1
    ldxw r6, [r1+12]
    and64 r6, 3
    mov64 r7, 0
    stxw [r10-4], r7
    stxw [r10-8], r7
    stxw [r10-4], r6
    mov64 r2, r10
    add64 r2, -4
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, second
    mov64 r6, 1
    xadd64 [r0+0], r6
second:
    ldxw r6, [r8+16]
    and64 r6, 3
    stxw [r10-8], r6
    mov64 r2, r10
    add64 r2, -8
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, out
    ldxdw r3, [r0+0]
    add64 r3, 1
    stxdw [r0+0], r3
out:
    mov64 r0, 2
    exit
"""

_XDP_CPUMAP_KTHREAD = """
    ; kthread scheduling statistics: processed += 1, sched += drops
    mov64 r6, 0
    stxw [r10-4], r6
    stxw [r10-8], r6
    mov64 r2, r10
    add64 r2, -4
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, out
    mov64 r6, 1
    xadd64 [r0+0], r6
    call bpf_get_smp_processor_id
    and64 r0, 3
    mov64 r0, 2
    exit
out:
    mov64 r0, 2
    exit
"""

_XDP_CPUMAP_ENQUEUE = """
    ; enqueue statistics keyed by target CPU
    call bpf_get_smp_processor_id
    and64 r0, 3
    mov64 r6, r0
    mov64 r7, 0
    stxw [r10-4], r7
    stxw [r10-4], r6
    mov64 r2, r10
    add64 r2, -4
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, out
    mov64 r6, 1
    xadd64 [r0+0], r6
    mov64 r7, 1
    xadd64 [r0+0], r7
out:
    mov64 r0, 2
    exit
"""

# --------------------------------------------------------------------------- #
# 6-8: tracepoint and socket filter programs
# --------------------------------------------------------------------------- #
_SYS_ENTER_OPEN = """
    ; count sys_enter_open invocations per flag class
    ldxdw r6, [r1+24]
    and64 r6, 3
    mov64 r7, 0
    stxw [r10-4], r7
    stxw [r10-4], r6
    mov64 r2, r10
    add64 r2, -4
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, out
    mov64 r6, 1
    xadd64 [r0+0], r6
out:
    mov64 r0, 0
    exit
"""

_SOCKET_0 = """
    ; accept TCP and UDP over IPv4, truncate everything else
    ldxw r6, [r1+16]
    be32 r6
    mov64 r7, r6
    rsh64 r7, 16
    jne r7, 0x0800, drop
    ldxw r8, [r1+0]
    jlt r8, 34, drop
    mov64 r0, -1
    exit
drop:
    mov64 r0, 0
    exit
"""

_SOCKET_1 = """
    ; classify by packet mark and length, count via the hash of the mark
    ldxw r6, [r1+8]
    mov64 r7, r6
    and64 r7, 0xff
    stxw [r10-4], r7
    mov64 r2, r10
    add64 r2, -4
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, pass
    mov64 r6, 1
    xadd64 [r0+0], r6
pass:
    mov64 r0, -1
    exit
"""

# --------------------------------------------------------------------------- #
# 9-13: kernel XDP data-path samples
# --------------------------------------------------------------------------- #
_XDP1 = """
    ; xdp1: parse eth + ipv4/ipv6, count per protocol, drop everything
    mov64 r0, 1
    ldxw r2, [r1+0]
    ldxw r3, [r1+4]
    mov64 r4, r2
    add64 r4, 14
    jgt r4, r3, out
    ldxh r6, [r2+12]
    be16 r6
    jeq r6, 0x0800, ipv4
    jeq r6, 0x86dd, ipv6
    ja count_other
ipv4:
    mov64 r4, r2
    add64 r4, 34
    jgt r4, r3, out
    ldxb r7, [r2+23]
    ja store_key
ipv6:
    mov64 r4, r2
    add64 r4, 54
    jgt r4, r3, out
    ldxb r7, [r2+20]
    ja store_key
count_other:
    mov64 r7, 0
store_key:
    and64 r7, 0xff
    mov64 r6, 0
    stxw [r10-4], r6
    stxw [r10-4], r7
    mov64 r2, r10
    add64 r2, -4
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, out
    mov64 r6, 1
    xadd64 [r0+0], r6
    mov64 r0, 1
    exit
out:
    mov64 r0, 1
    exit
"""

_XDP2 = """
    ; xdp2: like xdp1 but swap MACs and transmit ipv4 packets back out
    mov64 r0, 1
    mov64 r9, r1
    ldxw r2, [r1+0]
    ldxw r3, [r1+4]
    mov64 r4, r2
    add64 r4, 14
    jgt r4, r3, out
    ldxh r6, [r2+12]
    be16 r6
    jne r6, 0x0800, out
    mov64 r4, r2
    add64 r4, 34
    jgt r4, r3, out
    ldxb r7, [r2+23]
    and64 r7, 0xff
    mov64 r6, 0
    stxw [r10-4], r6
    stxw [r10-4], r7
    mov64 r2, r10
    add64 r2, -4
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, out
    mov64 r6, 1
    xadd64 [r0+0], r6
    ldxw r2, [r9+0]
    ldxw r3, [r9+4]
    mov64 r4, r2
    add64 r4, 14
    jgt r4, r3, out
    ldxh r6, [r2+0]
    ldxh r7, [r2+6]
    stxh [r2+0], r7
    stxh [r2+6], r6
    ldxh r6, [r2+2]
    ldxh r7, [r2+8]
    stxh [r2+2], r7
    stxh [r2+8], r6
    ldxh r6, [r2+4]
    ldxh r7, [r2+10]
    stxh [r2+4], r7
    stxh [r2+10], r6
    mov64 r0, 3
    exit
out:
    mov64 r0, 1
    exit
"""

_XDP_ROUTER_IPV4 = """
    ; simplified xdp_router_ipv4: parse, ttl-check, fib lookup, rewrite, redirect
    mov64 r0, 2
    mov64 r9, r1
    ldxw r2, [r1+0]
    ldxw r3, [r1+4]
    mov64 r4, r2
    add64 r4, 34
    jgt r4, r3, out
    ldxh r6, [r2+12]
    be16 r6
    jne r6, 0x0800, out
    ldxb r7, [r2+22]
    jle r7, 1, drop
    ldxw r8, [r2+30]
    mov64 r6, 0
    stxw [r10-4], r6
    stxw [r10-8], r6
    stxw [r10-4], r8
    mov64 r2, r10
    add64 r2, -8
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, pass
    ldxdw r7, [r0+0]
    ldxw r2, [r9+0]
    ldxw r3, [r9+4]
    mov64 r4, r2
    add64 r4, 34
    jgt r4, r3, out
    ldxb r6, [r2+22]
    add64 r6, -1
    stxb [r2+22], r6
    stxw [r2+26], r7
    mov64 r6, 0
    stxw [r10-12], r6
    ld_map_fd r1, 2
    mov64 r2, 0
    mov64 r3, 0
    call bpf_redirect_map
    exit
drop:
    mov64 r0, 1
    exit
pass:
    mov64 r0, 2
    exit
out:
    mov64 r0, 2
    exit
"""

_XDP_REDIRECT = """
    ; xdp_redirect: count the packet, then send it out of a fixed port
    mov64 r0, 2
    ldxw r2, [r1+0]
    ldxw r3, [r1+4]
    mov64 r4, r2
    add64 r4, 14
    jgt r4, r3, drop
    mov64 r6, 0
    stxw [r10-4], r6
    stxw [r10-4], r6
    mov64 r2, r10
    add64 r2, -4
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, redirect
    mov64 r6, 1
    xadd64 [r0+0], r6
redirect:
    ld_map_fd r1, 2
    mov64 r2, 0
    mov64 r3, 0
    call bpf_redirect_map
    exit
drop:
    mov64 r0, 1
    exit
"""

_XDP_FWD = """
    ; simplified xdp_fwd: parse, lookup the flow, rewrite MACs, redirect
    mov64 r0, 2
    mov64 r9, r1
    ldxw r2, [r1+0]
    ldxw r3, [r1+4]
    mov64 r4, r2
    add64 r4, 34
    jgt r4, r3, out
    ldxh r6, [r2+12]
    be16 r6
    jne r6, 0x0800, out
    ldxw r7, [r2+26]
    ldxw r8, [r2+30]
    mov64 r6, 0
    stxdw [r10-8], r6
    stxw [r10-8], r7
    stxw [r10-4], r8
    mov64 r2, r10
    add64 r2, -8
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, pass
    ldxdw r7, [r0+0]
    mov64 r6, 0
    stxw [r10-12], r6
    stxw [r10-12], r6
    mov64 r2, r10
    add64 r2, -12
    ld_map_fd r1, 2
    call bpf_map_lookup_elem
    jeq r0, 0, pass
    mov64 r6, 1
    xadd64 [r0+0], r6
    ldxw r2, [r9+0]
    ldxw r3, [r9+4]
    mov64 r4, r2
    add64 r4, 34
    jgt r4, r3, out
    ldxb r6, [r2+22]
    add64 r6, -1
    stxb [r2+22], r6
    mov64 r5, r7
    and64 r5, 0xffff
    stxh [r2+0], r5
    mov64 r5, r7
    rsh64 r5, 16
    and64 r5, 0xffff
    stxh [r2+2], r5
    mov64 r5, r7
    rsh64 r5, 32
    and64 r5, 0xffff
    stxh [r2+4], r5
    ld_map_fd r1, 2
    mov64 r2, 0
    mov64 r3, 0
    call bpf_redirect_map
    exit
pass:
    mov64 r0, 2
    exit
out:
    mov64 r0, 2
    exit
"""

# --------------------------------------------------------------------------- #
# 14, 19: Facebook (Katran)
# --------------------------------------------------------------------------- #
_XDP_PKTCNTR = """
    ; Facebook xdp_pktcntr: two counters initialised exactly as in paper §9
    mov64 r6, 0
    stxw [r10-4], r6
    stxw [r10-8], r6
    ldxw r7, [r1+16]
    and64 r7, 3
    stxw [r10-8], r7
    mov64 r2, r10
    add64 r2, -8
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, out
    mov64 r6, 1
    xadd64 [r0+0], r6
out:
    mov64 r0, 2
    exit
"""

_XDP_BALANCER = """
    ; scaled-down Katran balancer: parse, hash the 5-tuple-ish fields,
    ; consult the flow table, fall back to a stats update, forward
    mov64 r0, 2
    mov64 r7, r1
    ldxw r2, [r1+0]
    ldxw r3, [r1+4]
    mov64 r4, r2
    add64 r4, 42
    jgt r4, r3, out
    ldxh r6, [r2+12]
    be16 r6
    jne r6, 0x0800, out
    ldxb r5, [r2+23]
    jeq r5, 6, l4ok
    jeq r5, 17, l4ok
    ja out
l4ok:
    ldxw r8, [r2+26]
    ldxw r9, [r2+30]
    mov64 r6, r8
    xor64 r6, r9
    ldxh r5, [r2+34]
    lsh64 r5, 16
    or64 r6, r5
    mov64 r5, r6
    and64 r5, 0xffe00000
    rsh64 r5, 21
    mov64 r5, 0
    stxdw [r10-8], r5
    stxw [r10-8], r8
    stxw [r10-4], r9
    mov64 r2, r10
    add64 r2, -8
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, miss
    ldxdw r9, [r0+0]
    mov64 r6, 1
    xadd64 [r0+0], r6
    ja stats
miss:
    mov64 r6, 0
    stxw [r10-12], r6
    stxw [r10-12], r6
    mov64 r2, r10
    add64 r2, -12
    ld_map_fd r1, 2
    call bpf_map_lookup_elem
    jeq r0, 0, stats
    mov64 r6, 1
    xadd64 [r0+0], r6
stats:
    ldxw r2, [r7+0]
    ldxw r3, [r7+4]
    mov64 r4, r2
    add64 r4, 42
    jgt r4, r3, out
    ldxb r6, [r2+22]
    add64 r6, -1
    stxb [r2+22], r6
    ldxh r6, [r2+0]
    ldxh r7, [r2+6]
    stxh [r2+0], r7
    stxh [r2+6], r6
    ldxh r6, [r2+2]
    ldxh r7, [r2+8]
    stxh [r2+2], r7
    stxh [r2+8], r6
    ldxh r6, [r2+4]
    ldxh r7, [r2+10]
    stxh [r2+4], r7
    stxh [r2+10], r6
    mov64 r0, 3
    exit
out:
    mov64 r0, 2
    exit
"""

# --------------------------------------------------------------------------- #
# 15, 16: hXDP benchmarks
# --------------------------------------------------------------------------- #
_XDP_FW = """
    ; hXDP firewall: parse 5-tuple, drop flows present in the deny table
    mov64 r0, 2
    ldxw r2, [r1+0]
    ldxw r3, [r1+4]
    mov64 r4, r2
    add64 r4, 42
    jgt r4, r3, pass
    ldxh r6, [r2+12]
    be16 r6
    jne r6, 0x0800, pass
    ldxb r7, [r2+23]
    jne r7, 17, pass
    ldxw r8, [r2+26]
    ldxw r9, [r2+30]
    mov64 r6, 0
    stxdw [r10-8], r6
    stxw [r10-8], r8
    stxw [r10-4], r9
    mov64 r2, r10
    add64 r2, -8
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, count
    mov64 r0, 1
    exit
count:
    mov64 r6, 0
    stxw [r10-12], r6
    stxw [r10-12], r6
    mov64 r2, r10
    add64 r2, -12
    ld_map_fd r1, 2
    call bpf_map_lookup_elem
    jeq r0, 0, pass
    mov64 r6, 1
    xadd64 [r0+0], r6
pass:
    mov64 r0, 2
    exit
"""

_XDP_MAP_ACCESS = """
    ; hXDP map access benchmark: one lookup plus a counter bump per packet
    mov64 r0, 2
    ldxw r2, [r1+0]
    ldxw r3, [r1+4]
    mov64 r4, r2
    add64 r4, 14
    jgt r4, r3, out
    ldxb r6, [r2+0]
    and64 r6, 3
    mov64 r7, 0
    stxw [r10-4], r7
    stxw [r10-4], r6
    mov64 r2, r10
    add64 r2, -4
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, out
    mov64 r6, 1
    xadd64 [r0+0], r6
out:
    mov64 r0, 2
    exit
"""

# --------------------------------------------------------------------------- #
# 17, 18: Cilium
# --------------------------------------------------------------------------- #
_FROM_NETWORK = """
    ; Cilium from-network: validate, classify by ethertype, tag + count
    mov64 r0, 2
    ldxw r2, [r1+0]
    ldxw r3, [r1+4]
    mov64 r4, r2
    add64 r4, 14
    jgt r4, r3, out
    ldxh r6, [r2+12]
    be16 r6
    mov64 r7, 0
    jeq r6, 0x0800, classify
    jeq r6, 0x86dd, v6
    ja store
v6:
    mov64 r7, 2
    ja store
classify:
    mov64 r7, 1
store:
    mov64 r8, 0
    stxw [r10-4], r8
    stxw [r10-8], r8
    stxw [r10-4], r7
    mov64 r2, r10
    add64 r2, -4
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, out
    mov64 r6, 1
    xadd64 [r0+0], r6
out:
    mov64 r0, 2
    exit
"""

_RECVMSG4 = """
    ; Cilium recvmsg4: rewrite the destination of a recvmsg socket call
    ; when the service map has a backend for it
    ldxw r6, [r1+24]
    mov64 r7, r6
    and64 r7, 0xffff
    ldxw r8, [r1+4]
    mov64 r9, 0
    stxdw [r10-8], r9
    stxw [r10-8], r8
    stxw [r10-4], r7
    mov64 r2, r10
    add64 r2, -8
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, out
    ldxdw r6, [r0+0]
    mov64 r7, r6
    and64 r7, 0xffffffff
    mov64 r8, r6
    rsh64 r8, 32
    mov64 r9, 0
    stxw [r10-12], r9
    stxw [r10-12], r9
    mov64 r2, r10
    add64 r2, -12
    ld_map_fd r1, 2
    call bpf_map_lookup_elem
    jeq r0, 0, out
    mov64 r6, 1
    xadd64 [r0+0], r6
out:
    mov64 r0, 1
    exit
"""


# --------------------------------------------------------------------------- #
# 20-22: long programs (length-scaling additions, not in the paper's Table 1)
#
# Realistic in-network programs are far longer than the paper's corpus (the
# INSIGHT survey's datapaths run to hundreds of instructions).  These three
# benchmarks are 100+ instruction programs in the same style as 1-19 —
# repeated clang-like accounting segments, unrolled hash pipelines, wide
# tracepoint classification — and are the workload of the *windowed* segment
# synthesis scheduler (`k2 optimize --windowed`,
# :mod:`repro.synthesis.windows`): whole-program search at laptop budgets
# effectively never visits any single optimization site in programs this
# long, while per-window search still finds the planted redundancies.
# --------------------------------------------------------------------------- #
def _classify_segment(offset: int, slot: int) -> str:
    """One clang-style classification segment (11 instructions).

    Re-validates the packet the way clang re-materializes bounds checks,
    classifies one payload byte into a stack slot (with the redundant
    zero-init store clang emits) and accumulates a running sum.
    """
    return f"""
    ldxw r2, [r9+0]
    ldxw r3, [r9+4]
    mov64 r4, r2
    add64 r4, 42
    jgt r4, r3, out
    ldxb r6, [r2+{offset}]
    and64 r6, 3
    mov64 r7, 0
    stxw [r10-{slot}], r7
    stxw [r10-{slot}], r6
    add64 r8, r6"""


def _counter_segment(key_reg: str, skip_label: str) -> str:
    """One guarded per-key counter bump (12 instructions)."""
    return f"""
    mov64 r6, {key_reg}
    and64 r6, 3
    mov64 r7, 0
    stxw [r10-4], r7
    stxw [r10-4], r6
    mov64 r2, r10
    add64 r2, -4
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, {skip_label}
    mov64 r6, 1
    xadd64 [r0+0], r6
{skip_label}:"""


_XDP_STATS_LADDER = "\n".join(
    ["""
    ; long accounting ladder: six per-byte classification segments spilled
    ; to distinct stack slots, a fold over the slots, two guarded counters
    mov64 r0, 2
    mov64 r9, r1
    mov64 r8, 0"""]
    + [_classify_segment(offset, slot)
       for offset, slot in zip([15, 16, 17, 18, 19, 20],
                               [16, 20, 24, 28, 32, 36])]
    + ["""
    ldxw r6, [r10-16]
    ldxw r7, [r10-20]
    add64 r6, r7
    ldxw r7, [r10-24]
    add64 r6, r7
    ldxw r7, [r10-28]
    add64 r6, r7
    ldxw r7, [r10-32]
    add64 r6, r7
    ldxw r7, [r10-36]
    add64 r6, r7
    xor64 r8, r6"""]
    + [_counter_segment("r6", "cnt1"),
       _counter_segment("r8", "cnt2")]
    + ["""
out:
    mov64 r0, 2
    exit
"""])


def _hash_round(offset: int) -> str:
    """One unrolled hash round over a packet word (7 instructions).

    The trailing ``and64``/``mov64 r5, 0`` pair is the dead-compute idiom
    clang leaves behind when a masked intermediate is spilled elsewhere.
    """
    return f"""
    ldxw r5, [r2+{offset}]
    mov64 r6, r5
    xor64 r7, r6
    lsh64 r7, 1
    mov64 r5, r7
    and64 r5, 0xffff
    mov64 r5, 0"""


_XDP_CSUM_PIPELINE = "\n".join(
    ["""
    ; Katran-style wide pipeline: parse, an 8-round unrolled packet hash,
    ; flow lookup with a stats fallback, MAC swap and transmit
    mov64 r0, 2
    mov64 r9, r1
    ldxw r2, [r1+0]
    ldxw r3, [r1+4]
    mov64 r4, r2
    add64 r4, 54
    jgt r4, r3, out
    ldxh r6, [r2+12]
    be16 r6
    jne r6, 0x0800, out
    mov64 r7, 0"""]
    + [_hash_round(offset) for offset in range(14, 46, 4)]
    + ["""
    mov64 r6, 0
    stxdw [r10-8], r6
    stxw [r10-8], r7
    stxw [r10-4], r7
    mov64 r2, r10
    add64 r2, -8
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, miss
    mov64 r6, 1
    xadd64 [r0+0], r6
    ja stats
miss:
    mov64 r6, 0
    stxw [r10-12], r6
    stxw [r10-12], r6
    mov64 r2, r10
    add64 r2, -12
    ld_map_fd r1, 2
    call bpf_map_lookup_elem
    jeq r0, 0, stats
    mov64 r6, 1
    xadd64 [r0+0], r6
stats:
    ldxw r2, [r9+0]
    ldxw r3, [r9+4]
    mov64 r4, r2
    add64 r4, 54
    jgt r4, r3, out
    ldxh r6, [r2+0]
    ldxh r7, [r2+6]
    stxh [r2+0], r7
    stxh [r2+6], r6
    ldxh r6, [r2+2]
    ldxh r7, [r2+8]
    stxh [r2+2], r7
    stxh [r2+8], r6
    ldxh r6, [r2+4]
    ldxh r7, [r2+10]
    stxh [r2+4], r7
    stxh [r2+10], r6
    mov64 r0, 3
    exit
out:
    mov64 r0, 2
    exit
"""])


def _mix_round(shift: int) -> str:
    """One scalar mixing round with a redundant spill/reload pair."""
    return f"""
    stxdw [r10-16], r6
    ldxdw r6, [r10-16]
    mov64 r4, r6
    rsh64 r4, {shift}
    xor64 r6, r4
    mov64 r4, r6
    lsh64 r4, {shift + 1}
    add64 r7, r4
    mov64 r4, 0"""


def _tracepoint_count_segment(key_setup: str, skip_label: str) -> str:
    """One guarded counter update keyed by a derived scalar."""
    return f"""
    {key_setup}
    and64 r6, 3
    mov64 r5, 0
    stxw [r10-4], r5
    stxw [r10-4], r6
    mov64 r2, r10
    add64 r2, -4
    ld_map_fd r1, 1
    call bpf_map_lookup_elem
    jeq r0, 0, {skip_label}
    mov64 r6, 1
    xadd64 [r0+0], r6
{skip_label}:"""


_SYS_ENTER_WIDE = "\n".join(
    ["""
    ; wide tracepoint classifier: mix four argument fields through an
    ; unrolled scalar hash, then bump three derived per-class counters
    mov64 r9, r1
    ldxdw r6, [r9+24]
    ldxdw r7, [r9+32]
    ldxdw r8, [r9+8]
    ldxw r5, [r9+4]
    add64 r7, r5"""]
    + [_mix_round(shift) for shift in (3, 7, 13, 17, 21, 9, 5, 11)]
    + ["""
    xor64 r8, r7
    mov64 r5, r8
    rsh64 r5, 4
    xor64 r8, r5"""]
    + [_tracepoint_count_segment("mov64 r6, r6", "cls1"),
       _tracepoint_count_segment("mov64 r6, r7", "cls2"),
       _tracepoint_count_segment("mov64 r6, r8", "cls3")]
    + ["""
    mov64 r0, 0
    exit
"""])


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
def _entry(paper_index: int, name: str, origin: str, description: str,
           hook: HookType, maps_factory, text: str,
           scaled_down: bool = False) -> BenchmarkProgram:
    def build() -> BpfProgram:
        from ..bpf.hooks import get_hook

        maps = maps_factory() if maps_factory else MapEnvironment()
        return BpfProgram(instructions=assemble(text), hook=get_hook(hook),
                          maps=maps, name=name)

    return BenchmarkProgram(name=name, origin=origin, description=description,
                            hook_type=hook, build=build,
                            paper_index=paper_index, scaled_down=scaled_down)


CORPUS: Dict[str, BenchmarkProgram] = {entry.name: entry for entry in [
    _entry(1, "xdp_exception", "linux",
           "Count XDP exceptions per action code", HookType.XDP,
           _counter_maps, _XDP_EXCEPTION),
    _entry(2, "xdp_redirect_err", "linux",
           "Count redirect errors per queue", HookType.XDP,
           _counter_maps, _XDP_REDIRECT_ERR),
    _entry(3, "xdp_devmap_xmit", "linux",
           "Devmap transmit statistics", HookType.XDP,
           _counter_maps, _XDP_DEVMAP_XMIT),
    _entry(4, "xdp_cpumap_kthread", "linux",
           "Cpumap kthread scheduling statistics", HookType.XDP,
           _counter_maps, _XDP_CPUMAP_KTHREAD),
    _entry(5, "xdp_cpumap_enqueue", "linux",
           "Cpumap enqueue statistics", HookType.XDP,
           _counter_maps, _XDP_CPUMAP_ENQUEUE),
    _entry(6, "sys_enter_open", "linux",
           "Tracepoint: count openat() calls per flag class",
           HookType.TRACEPOINT, _counter_maps, _SYS_ENTER_OPEN),
    _entry(7, "socket-0", "linux",
           "Socket filter: accept IPv4 TCP/UDP", HookType.SOCKET_FILTER,
           None, _SOCKET_0),
    _entry(8, "socket-1", "linux",
           "Socket filter: count packets by mark", HookType.SOCKET_FILTER,
           _counter_maps, _SOCKET_1),
    _entry(9, "xdp_router_ipv4", "linux",
           "IPv4 forwarding with FIB-style lookup (scaled down)",
           HookType.XDP, _stats_and_dev_maps, _XDP_ROUTER_IPV4, True),
    _entry(10, "xdp_redirect", "linux",
           "Redirect every packet out of a fixed port", HookType.XDP,
           _stats_and_dev_maps, _XDP_REDIRECT),
    _entry(11, "xdp1", "linux",
           "Parse and count packets per IP protocol, then drop",
           HookType.XDP, _proto_count_maps, _XDP1),
    _entry(12, "xdp2", "linux",
           "xdp1 plus MAC swap and transmit", HookType.XDP,
           _proto_count_maps, _XDP2),
    _entry(13, "xdp_fwd", "linux",
           "Full forwarding plane: flow lookup + header rewrite (scaled down)",
           HookType.XDP, _flow_maps, _XDP_FWD, True),
    _entry(14, "xdp_pktcntr", "facebook",
           "Katran packet counter", HookType.XDP,
           _counter_maps, _XDP_PKTCNTR),
    _entry(15, "xdp_fw", "hxdp",
           "hXDP stateful firewall", HookType.XDP, _flow_maps, _XDP_FW),
    _entry(16, "xdp_map_access", "hxdp",
           "hXDP map access microbenchmark", HookType.XDP,
           _counter_maps, _XDP_MAP_ACCESS),
    _entry(17, "from-network", "cilium",
           "Cilium from-network classification", HookType.XDP,
           _counter_maps, _FROM_NETWORK),
    _entry(18, "recvmsg4", "cilium",
           "Cilium recvmsg4 service translation (scaled down)",
           HookType.CGROUP_SOCK_ADDR, _flow_maps, _RECVMSG4, True),
    _entry(19, "xdp-balancer", "facebook",
           "Katran-style L4 load balancer (scaled down)", HookType.XDP,
           _flow_maps, _XDP_BALANCER, True),
    _entry(20, "xdp_stats_ladder", "linux",
           "Long accounting ladder: six guarded per-byte counters (100+ insns)",
           HookType.XDP, _proto_count_maps, _XDP_STATS_LADDER),
    _entry(21, "xdp_csum_pipeline", "facebook",
           "Wide pipeline: unrolled packet hash, flow lookup, MAC swap "
           "(100+ insns)", HookType.XDP, _flow_maps, _XDP_CSUM_PIPELINE),
    _entry(22, "sys_enter_wide", "linux",
           "Wide tracepoint classifier: unrolled scalar hash, three counters "
           "(100+ insns)", HookType.TRACEPOINT, _counter_maps,
           _SYS_ENTER_WIDE),
]}

#: The long (100+ instruction) length-scaling benchmarks (paper_index 20+),
#: the primary workload of the windowed segment-synthesis scheduler.
LONG_BENCHMARKS = ["xdp_stats_ladder", "xdp_csum_pipeline", "sys_enter_wide"]


def benchmark_names() -> List[str]:
    return list(CORPUS)


def get_benchmark(name: str) -> BenchmarkProgram:
    return CORPUS[name]


def all_benchmarks() -> List[BenchmarkProgram]:
    return list(CORPUS.values())
