"""The 19-program benchmark corpus used by the evaluation harness."""

from .programs import (
    CORPUS, BenchmarkProgram, all_benchmarks, benchmark_names, get_benchmark,
)
from . import blocks

__all__ = [name for name in dir() if not name.startswith("_")]
