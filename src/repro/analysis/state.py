"""Abstract machine state for the fused analyzer.

The state mirrors :class:`repro.bpf.memtypes.AbstractState` (registers,
tracked stack slots, initialized stack bytes, verified packet bound) but
carries :class:`~repro.analysis.domains.AbsVal` product values and is
*hashable on demand*: :meth:`AnalysisState.signature` produces the tuple the
incremental analyzer uses to key its per-basic-block memo — two states with
equal signatures produce identical block summaries, which is what makes
block reuse across MCMC proposals sound.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from ..bpf.hooks import Hook
from ..bpf.opcodes import STACK_SIZE
from ..bpf.regions import MemRegion
from .domains import AbsVal

__all__ = ["AnalysisState"]


class AnalysisState:
    """Registers, tracked stack slots and the verified packet bound."""

    __slots__ = ("regs", "stack", "stack_written", "packet_bound")

    def __init__(self, regs: List[AbsVal], stack: Dict[int, AbsVal],
                 stack_written: FrozenSet[int], packet_bound: int):
        self.regs = regs
        self.stack = stack
        self.stack_written = stack_written
        self.packet_bound = packet_bound

    # ------------------------------------------------------------------ #
    @staticmethod
    def entry(hook: Hook) -> "AnalysisState":
        regs = [AbsVal.uninitialized() for _ in range(11)]
        regs[1] = AbsVal.pointer(MemRegion.CTX, offset=0)
        regs[10] = AbsVal.pointer(MemRegion.STACK, offset=STACK_SIZE)
        return AnalysisState(regs=regs, stack={}, stack_written=frozenset(),
                             packet_bound=0)

    def copy(self) -> "AnalysisState":
        return AnalysisState(regs=list(self.regs), stack=dict(self.stack),
                             stack_written=self.stack_written,
                             packet_bound=self.packet_bound)

    # ------------------------------------------------------------------ #
    def join(self, other: "AnalysisState") -> "AnalysisState":
        regs = [a if a == b else a.join(b)
                for a, b in zip(self.regs, other.regs)]
        stack = {slot: self.stack[slot].join(other.stack[slot])
                 for slot in self.stack.keys() & other.stack.keys()}
        return AnalysisState(
            regs=regs, stack=stack,
            stack_written=self.stack_written & other.stack_written,
            packet_bound=min(self.packet_bound, other.packet_bound))

    # ------------------------------------------------------------------ #
    def signature(self) -> Tuple:
        """Hashable identity: equal signatures ⇒ identical analysis behaviour."""
        return (tuple(self.regs),
                tuple(sorted(self.stack.items())),
                self.stack_written,
                self.packet_bound)

    def invalidate_stack_overlap(self, slot: int, width: int) -> None:
        """Drop tracked 8-byte slot values that a store to ``[slot, slot+width)``
        would partially or fully overwrite."""
        if not self.stack:
            return
        dead = [tracked for tracked in self.stack
                if tracked < slot + width and tracked + 8 > slot]
        for tracked in dead:
            del self.stack[tracked]
