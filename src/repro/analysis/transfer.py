"""Instruction transfer and branch refinement over the fused product domain.

This is the single abstract semantics behind both unified checkers: the
incremental block analyzer (:mod:`repro.analysis.analyzer`, powering
:class:`repro.safety.SafetyChecker` in ``fused`` mode) and the
path-sensitive kernel-checker walk (:class:`repro.verifier.KernelChecker`
in ``fused`` mode).  It subsumes the two older analyses —
:mod:`repro.bpf.memtypes` (provenance/offset/constant) and
:mod:`repro.bpf.valrange` (intervals) — and additionally models the parts
of the interpreter's behaviour those passes missed:

* loads of context packet-pointer fields only become pointers when the
  access width matches the field (the interpreter's rewrite rule);
* stores that partially overwrite a tracked 8-byte stack slot invalidate
  the slot (the old analysis only dropped exact-slot matches);
* ``bpf_xdp_adjust_head``/``_tail`` invalidate every packet pointer and
  reset the verified packet bound (stale pointers fault at run time).

Constant folding goes through :func:`repro.semantics.alu_op_concrete` /
:func:`repro.semantics.byteswap` — the interpreter's own tables — so the
abstract and concrete semantics cannot drift.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..bpf.helpers import HELPERS, HelperId
from ..bpf.hooks import CtxFieldKind, Hook
from ..bpf.opcodes import AluOp, JmpOp, MemSize, SrcOperand
from ..bpf.regions import MemRegion
from ..bpf.valrange import ValueInterval, refine_interval_for_branch
from ..semantics import byteswap
from .domains import AbsVal, scalar_alu_transfer
from .state import AnalysisState
from .tnum import Tnum

__all__ = ["transfer", "refine_branch", "PACKET_MUTATING_HELPERS"]

_U64 = (1 << 64) - 1

#: Helpers whose success invalidates previously-derived packet pointers.
PACKET_MUTATING_HELPERS = frozenset({
    int(HelperId.XDP_ADJUST_HEAD), int(HelperId.XDP_ADJUST_TAIL),
})

_PACKET_REGIONS = (MemRegion.PACKET, MemRegion.PACKET_END)

#: Regions backed by exactly one runtime object, where a concrete offset
#: identifies a unique address (unlike MAP_VALUE, one buffer per entry).
_SINGLE_OBJECT_REGIONS = frozenset({
    MemRegion.STACK, MemRegion.CTX, MemRegion.PACKET, MemRegion.PACKET_END,
})


def _as_scalar(value: AbsVal) -> AbsVal:
    """View any abstract value as a scalar (pointers become unknown u64s)."""
    if value.region == MemRegion.SCALAR:
        return value
    return AbsVal.scalar(None)


def _signed(delta: int) -> int:
    return delta - (1 << 64) if delta >= (1 << 63) else delta


def transfer(state: AnalysisState, insn, hook: Hook) -> AnalysisState:
    """Apply one non-branch instruction to a copy of the abstract state."""
    state = state.copy()
    regs = state.regs

    if insn.is_nop:
        return state

    if insn.is_lddw:
        if insn.src == 1:
            regs[insn.dst] = AbsVal.pointer(MemRegion.MAP_PTR, map_fd=insn.imm)
        else:
            regs[insn.dst] = AbsVal.scalar(insn.imm64 or insn.imm)
        return state

    if insn.is_alu:
        regs[insn.dst] = _alu_result(regs, insn)
        return state

    if insn.is_load:
        regs[insn.dst] = _load_result(state, insn, hook)
        return state

    if insn.is_store or insn.is_xadd:
        _apply_store(state, insn)
        return state

    if insn.is_call:
        _apply_call(state, insn)
        return state

    return state


# --------------------------------------------------------------------------- #
# ALU
# --------------------------------------------------------------------------- #
def _alu_result(regs, insn) -> AbsVal:
    op = insn.alu_op
    dst_val: AbsVal = regs[insn.dst]
    is64 = insn.is_alu64

    if op == AluOp.END:
        return _end_result(dst_val, insn)
    if op == AluOp.NEG:
        scalar = _as_scalar(dst_val)
        if scalar.const is not None:
            width_mask = _U64 if is64 else 0xFFFFFFFF
            return AbsVal.scalar((-scalar.const) & width_mask)
        tnum = Tnum.const(0).sub(scalar.tnum)
        if not is64:
            tnum = tnum.truncate32()
        return AbsVal.from_parts(tnum, ValueInterval.top() if is64
                                 else ValueInterval(0, 0xFFFFFFFF))

    src_val = regs[insn.src] if insn.uses_reg_source else AbsVal.scalar(insn.imm)

    if op == AluOp.MOV:
        if is64:
            return src_val
        scalar = _as_scalar(src_val)
        return AbsVal.from_parts(scalar.tnum.truncate32(),
                                 scalar.rng.truncate32())

    # Pointer arithmetic: ptr +/- scalar keeps the region (64-bit only).
    if dst_val.is_pointer and is64 and op in (AluOp.ADD, AluOp.SUB):
        if not src_val.is_pointer:
            delta = _as_scalar(src_val).const
            offset = None
            if dst_val.offset is not None and delta is not None:
                signed = _signed(delta)
                offset = dst_val.offset + (signed if op == AluOp.ADD else -signed)
            return AbsVal.pointer(dst_val.region, offset=offset,
                                  map_fd=dst_val.map_fd,
                                  maybe_null=dst_val.maybe_null)
        if op == AluOp.SUB:
            # ptr - ptr yields a scalar (packet length computations).  Within
            # one single-object region the difference of known offsets is
            # exact; MAP_VALUE is excluded because two value pointers with
            # equal offsets may address different map entries.
            if (dst_val.region == src_val.region
                    and dst_val.region in _SINGLE_OBJECT_REGIONS
                    and dst_val.offset is not None
                    and src_val.offset is not None):
                return AbsVal.scalar(dst_val.offset - src_val.offset)
            return AbsVal.scalar(None)

    return scalar_alu_transfer(op, _as_scalar(dst_val), _as_scalar(src_val),
                               is64)


def _end_result(dst_val: AbsVal, insn) -> AbsVal:
    """ENDianness conversion: byteswap (be) or width truncation (le)."""
    width = insn.imm
    if width not in (16, 32, 64):
        return AbsVal.scalar(None)
    scalar = _as_scalar(dst_val)
    swap = insn.src_operand == SrcOperand.X
    if scalar.const is not None:
        value = byteswap(scalar.const, width) if swap \
            else scalar.const & ((1 << width) - 1)
        return AbsVal.scalar(value)
    if swap:
        return AbsVal.scalar(None)
    mask = (1 << width) - 1
    return AbsVal.from_parts(scalar.tnum.truncate(width),
                             ValueInterval(0, min(scalar.rng.hi, mask)))


# --------------------------------------------------------------------------- #
# Memory
# --------------------------------------------------------------------------- #
def _load_result(state: AnalysisState, insn, hook: Hook) -> AbsVal:
    base: AbsVal = state.regs[insn.src]
    width = insn.access_bytes

    if base.region == MemRegion.CTX and base.offset is not None:
        field = hook.field_by_offset(base.offset + insn.off)
        # The interpreter only rewrites a ctx load into a packet pointer
        # when the access width matches the field exactly; a partial load
        # yields raw scalar bytes.
        if field is not None and field.size == width:
            if field.kind == CtxFieldKind.PACKET_PTR:
                return AbsVal.pointer(MemRegion.PACKET, offset=0)
            if field.kind == CtxFieldKind.PACKET_END_PTR:
                return AbsVal.pointer(MemRegion.PACKET_END, offset=0)
    elif base.region == MemRegion.STACK and base.offset is not None:
        slot = base.offset + insn.off
        if insn.mem_size == MemSize.DW and slot in state.stack:
            return state.stack[slot]

    # Any other load produces a scalar bounded by the access width.
    limit = (1 << (8 * width)) - 1
    return AbsVal.from_parts(Tnum(0, limit), ValueInterval(0, limit))


def _apply_store(state: AnalysisState, insn) -> None:
    base: AbsVal = state.regs[insn.dst]
    if base.region != MemRegion.STACK or base.offset is None:
        return
    slot = base.offset + insn.off
    width = insn.access_bytes
    # A store of any width clobbers every tracked 8-byte value it overlaps
    # (the pre-fused analysis only dropped exact-slot matches, missing
    # partial overwrites of spilled pointers).
    state.invalidate_stack_overlap(slot, width)
    state.stack_written = state.stack_written | frozenset(
        range(slot, slot + width))
    if insn.is_store_reg and insn.mem_size == MemSize.DW and not insn.is_xadd:
        state.stack[slot] = state.regs[insn.src]
    elif insn.is_store_imm and insn.mem_size == MemSize.DW:
        state.stack[slot] = AbsVal.scalar(insn.imm)


# --------------------------------------------------------------------------- #
# Helper calls
# --------------------------------------------------------------------------- #
def _apply_call(state: AnalysisState, insn) -> None:
    regs = state.regs
    spec = HELPERS.get(insn.imm)
    result = AbsVal.scalar(None)
    if spec is not None and spec.returns_pointer_to is not None:
        map_fd = None
        if spec.map_ptr_arg is not None:
            map_arg = regs[spec.map_ptr_arg]
            if map_arg.region == MemRegion.MAP_PTR:
                map_fd = map_arg.map_fd
        result = AbsVal.pointer(spec.returns_pointer_to, offset=0,
                                map_fd=map_fd,
                                maybe_null=spec.may_return_null)

    if insn.imm in PACKET_MUTATING_HELPERS:
        # On success the packet moved: every previously-derived packet
        # pointer is stale (it faults in the interpreter), and the verified
        # bound no longer holds.
        for reg in range(11):
            if regs[reg].region in _PACKET_REGIONS:
                regs[reg] = AbsVal.unknown()
        for slot, value in list(state.stack.items()):
            if value.region in _PACKET_REGIONS:
                state.stack[slot] = AbsVal.unknown()
        state.packet_bound = 0

    regs[0] = result
    # r1-r5 are clobbered by the call and become unreadable (paper §6,
    # kernel-checker-specific constraint 3).
    for reg in range(1, 6):
        regs[reg] = AbsVal.uninitialized()


# --------------------------------------------------------------------------- #
# Branch refinement
# --------------------------------------------------------------------------- #
def refine_branch(state: AnalysisState, insn, taken: bool) -> AnalysisState:
    """Refine the abstract state along one edge of a conditional jump.

    Mirrors the pre-fused refinements (NULL checks on map lookups, packet
    bounds checks) and adds scalar refinement of the interval component on
    64-bit comparisons against immediates.  Edges the refinement proves
    impossible are *not* pruned: the state is propagated unrefined instead,
    so reachability — and therefore the set of instructions checked —
    matches the legacy analyses exactly.
    """
    state = state.copy()
    if not insn.is_conditional_jump:
        return state
    op = insn.jmp_op
    dst_val = state.regs[insn.dst]
    src_is_imm = not insn.uses_reg_source
    src_val = None if src_is_imm else state.regs[insn.src]

    # --- NULL-check refinement -------------------------------------------- #
    if src_is_imm and insn.imm == 0 and dst_val.is_pointer and dst_val.maybe_null:
        if op == JmpOp.JEQ:
            if taken:
                state.regs[insn.dst] = AbsVal.scalar(0)
            else:
                state.regs[insn.dst] = dataclasses.replace(dst_val,
                                                           maybe_null=False)
        elif op == JmpOp.JNE:
            if taken:
                state.regs[insn.dst] = dataclasses.replace(dst_val,
                                                           maybe_null=False)
            else:
                state.regs[insn.dst] = AbsVal.scalar(0)

    # --- Scalar interval refinement ---------------------------------------- #
    # JMP32 compares only the low halves; refining the 64-bit interval from
    # it would be unsound, so those branches refine nothing.
    if (src_is_imm and not insn.is_jump32
            and dst_val.region == MemRegion.SCALAR):
        refined = refine_interval_for_branch(dst_val.rng, op, insn.imm, taken)
        if refined is not None:
            tnum = dst_val.tnum
            equal_edge = (op == JmpOp.JEQ and taken) or \
                (op == JmpOp.JNE and not taken)
            if equal_edge:
                tnum = Tnum.const(insn.imm)
            state.regs[insn.dst] = AbsVal.from_parts(tnum, refined)
        # refined is None ⇒ the edge is statically impossible; keep the
        # unrefined state rather than pruning (see docstring).

    # --- Packet bounds refinement ------------------------------------------ #
    if src_val is not None:
        pkt, pkt_on_dst = None, None
        if (dst_val.region == MemRegion.PACKET
                and src_val.region == MemRegion.PACKET_END):
            pkt, pkt_on_dst = dst_val, True
        elif (src_val.region == MemRegion.PACKET
              and dst_val.region == MemRegion.PACKET_END):
            pkt, pkt_on_dst = src_val, False
        if pkt is not None and pkt.offset is not None:
            bound = pkt.offset
            safe_taken: Optional[bool] = None
            if pkt_on_dst:
                if op in (JmpOp.JGT, JmpOp.JSGT):       # pkt > end -> overflow
                    safe_taken = False
                elif op in (JmpOp.JLE, JmpOp.JSLE):     # pkt <= end -> safe
                    safe_taken = True
                elif op in (JmpOp.JGE, JmpOp.JSGE):
                    safe_taken = False
                elif op in (JmpOp.JLT, JmpOp.JSLT):
                    safe_taken = True
            else:
                if op in (JmpOp.JGT, JmpOp.JSGT):       # end > pkt -> safe
                    safe_taken = True
                elif op in (JmpOp.JLE, JmpOp.JSLE):
                    safe_taken = False
                elif op in (JmpOp.JGE, JmpOp.JSGE):
                    safe_taken = True
                elif op in (JmpOp.JLT, JmpOp.JSLT):
                    safe_taken = False
            if safe_taken is not None and taken == safe_taken:
                state.packet_bound = max(state.packet_bound, bound)
    return state
