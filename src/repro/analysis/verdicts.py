"""Safety verdict types shared by every static checker in the system.

These types were born in :mod:`repro.safety.safety_checker` and are
re-exported from there unchanged; they live here so that the fused abstract
interpreter (:mod:`repro.analysis`), the search-loop safety checker
(:mod:`repro.safety`) and the kernel-checker model (:mod:`repro.verifier`)
can all speak the same verdict language without import cycles.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional

from ..interpreter import ProgramInput

__all__ = ["SafetyViolationKind", "SafetyViolation", "SafetyResult"]


class SafetyViolationKind(enum.Enum):
    """Categories of safety violations, matching the paper's §6 checklist."""

    MALFORMED = "malformed"
    UNREACHABLE_CODE = "unreachable_code"
    LOOP = "loop"
    BAD_JUMP = "bad_jump"
    OUT_OF_BOUNDS = "out_of_bounds"
    UNKNOWN_POINTER = "unknown_pointer"
    NULL_DEREFERENCE = "null_dereference"
    UNINITIALIZED_READ = "uninitialized_read"
    MISALIGNED_ACCESS = "misaligned_access"
    READ_ONLY_REGISTER = "read_only_register"
    POINTER_ARITHMETIC = "pointer_arithmetic"
    CTX_STORE = "ctx_store"
    POINTER_LEAK = "pointer_leak"
    HELPER_MISUSE = "helper_misuse"
    BAD_RETURN_VALUE = "bad_return_value"


@dataclasses.dataclass(frozen=True)
class SafetyViolation:
    """One violation found in a candidate program."""

    kind: SafetyViolationKind
    insn_index: Optional[int]
    message: str

    def __str__(self) -> str:
        location = f"insn {self.insn_index}" if self.insn_index is not None else "program"
        return f"[{self.kind.value}] {location}: {self.message}"

    def rebased(self, delta: int) -> "SafetyViolation":
        """The same violation with its instruction index shifted by ``delta``.

        Used by the incremental analyzer, which memoizes per-basic-block
        summaries with block-relative indices and rebases them to absolute
        positions when a block is reused.
        """
        if self.insn_index is None or delta == 0:
            return self
        return SafetyViolation(self.kind, self.insn_index + delta, self.message)


@dataclasses.dataclass
class SafetyResult:
    """Outcome of checking one candidate."""

    violations: List[SafetyViolation]
    counterexamples: List[ProgramInput] = dataclasses.field(default_factory=list)

    @property
    def safe(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.safe
