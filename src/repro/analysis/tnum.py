"""Tristate numbers ("tnums"): the kernel verifier's known-bits domain.

The Linux verifier tracks, for every scalar register, which *bits* are
definitely 0, definitely 1 or unknown (``kernel/bpf/tnum.c``).  K2's safety
story (paper §6) models the same checks the kernel performs, so the fused
abstract interpreter in :mod:`repro.analysis` carries a tnum next to the
:class:`~repro.bpf.valrange.ValueInterval` for every scalar — the two
abstractions are incomparable (a tnum proves ``x & 3 == 0`` where an
interval cannot; an interval proves ``x < 14`` where a tnum cannot) and the
product of both is what the kernel itself uses.

Representation (identical to the kernel's)::

    Tnum(value, mask):  gamma(t) = { x | x & ~mask == value }

``mask`` has a 1 for every unknown bit; ``value`` carries the known bits and
is always 0 on unknown positions (``value & mask == 0``).

Every transfer function below over-approximates the concrete 64-bit
operation: if ``x in a`` and ``y in b`` then ``concrete_op(x, y) in
op(a, b)``.  The property-based suite in ``tests/test_analysis_domains.py``
checks exactly that statement against :func:`repro.semantics.alu_op_concrete`
on sampled operands.
"""

from __future__ import annotations

import dataclasses

__all__ = ["Tnum"]

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1


@dataclasses.dataclass(frozen=True)
class Tnum:
    """A tristate number over unsigned 64-bit values."""

    value: int = 0
    mask: int = _U64

    def __post_init__(self) -> None:
        if self.value & self.mask:
            raise ValueError("tnum invariant violated: value & mask != 0")
        if not 0 <= self.value <= _U64 or not 0 <= self.mask <= _U64:
            raise ValueError("tnum fields must be unsigned 64-bit values")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def unknown() -> "Tnum":
        return Tnum(0, _U64)

    @staticmethod
    def const(value: int) -> "Tnum":
        return Tnum(value & _U64, 0)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def is_const(self) -> bool:
        return self.mask == 0

    @property
    def const_value(self):
        return self.value if self.mask == 0 else None

    @property
    def is_unknown(self) -> bool:
        return self.mask == _U64 and self.value == 0

    def contains(self, x: int) -> bool:
        """True if the concrete value ``x`` is in this tnum's set."""
        return (x & _U64) & ~self.mask == self.value

    @property
    def min_value(self) -> int:
        """Smallest concrete value in the set (unknown bits cleared)."""
        return self.value

    @property
    def max_value(self) -> int:
        """Largest concrete value in the set (unknown bits set)."""
        return self.value | self.mask

    def __str__(self) -> str:  # pragma: no cover - debugging convenience
        if self.is_const:
            return f"{{{self.value:#x}}}"
        if self.is_unknown:
            return "⊤"
        return f"(v={self.value:#x}, m={self.mask:#x})"

    # ------------------------------------------------------------------ #
    # Lattice operations
    # ------------------------------------------------------------------ #
    def union(self, other: "Tnum") -> "Tnum":
        """Join: the smallest tnum containing both sets (kernel tnum_union)."""
        mu = self.mask | other.mask | (self.value ^ other.value)
        return Tnum(self.value & other.value & ~mu & _U64, mu & _U64)

    join = union

    def intersect(self, other: "Tnum"):
        """Meet; returns None when the two sets are provably disjoint."""
        if (self.value ^ other.value) & ~self.mask & ~other.mask:
            return None
        mu = self.mask & other.mask
        value = (self.value | other.value) & ~mu
        return Tnum(value & _U64, mu & _U64)

    # ------------------------------------------------------------------ #
    # Transfer functions (kernel tnum.c algorithms)
    # ------------------------------------------------------------------ #
    def add(self, other: "Tnum") -> "Tnum":
        sm = self.mask + other.mask
        sv = self.value + other.value
        sigma = sm + sv
        chi = sigma ^ sv
        mu = (chi | self.mask | other.mask) & _U64
        return Tnum(sv & ~mu & _U64, mu)

    def sub(self, other: "Tnum") -> "Tnum":
        dv = (self.value - other.value) & _U64
        alpha = dv + self.mask
        beta = dv - other.mask
        chi = alpha ^ beta
        mu = (chi | self.mask | other.mask) & _U64
        return Tnum(dv & ~mu & _U64, mu)

    def bitwise_and(self, other: "Tnum") -> "Tnum":
        alpha = self.value | self.mask
        beta = other.value | other.mask
        value = self.value & other.value
        return Tnum(value, alpha & beta & ~value & _U64)

    def bitwise_or(self, other: "Tnum") -> "Tnum":
        value = self.value | other.value
        mu = self.mask | other.mask
        return Tnum(value, mu & ~value & _U64)

    def bitwise_xor(self, other: "Tnum") -> "Tnum":
        value = self.value ^ other.value
        mu = self.mask | other.mask
        return Tnum(value & ~mu & _U64, mu)

    def lshift(self, shift: int) -> "Tnum":
        shift &= 63
        return Tnum((self.value << shift) & _U64, (self.mask << shift) & _U64)

    def rshift(self, shift: int) -> "Tnum":
        shift &= 63
        return Tnum(self.value >> shift, self.mask >> shift)

    def arshift(self, shift: int, width: int = 64) -> "Tnum":
        """Arithmetic shift right; the sign bit replicates per-component.

        A set (unknown) sign bit in ``mask`` fills the vacated positions with
        unknown bits; a known sign bit fills them with its known value —
        exactly the kernel's cast-to-signed implementation.
        """
        shift &= width - 1
        wmask = (1 << width) - 1

        def _sar(x: int) -> int:
            x &= wmask
            if x >= 1 << (width - 1):
                x -= 1 << width
            return (x >> shift) & wmask

        value, mask = _sar(self.value), _sar(self.mask)
        # Positions that became "known 1" in the mask are unknown bits: clear
        # them from value to restore the invariant.
        return Tnum(value & ~mask & wmask, mask)

    def truncate32(self) -> "Tnum":
        """The tnum of the value's low 32 bits (zero-extended)."""
        return Tnum(self.value & _U32, self.mask & _U32)

    def truncate(self, width_bits: int) -> "Tnum":
        wmask = (1 << width_bits) - 1
        return Tnum(self.value & wmask, self.mask & wmask)
