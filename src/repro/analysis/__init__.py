"""Unified incremental abstract-interpretation safety analysis (paper §6).

One product domain — pointer provenance × tnums (known bits) × value
intervals — analyzed over basic blocks with per-block input-state
memoization, so the synthesis hot loop only re-analyzes the blocks an MCMC
proposal actually changed.  Powers :class:`repro.safety.SafetyChecker` and
:class:`repro.verifier.KernelChecker` in their default ``fused`` mode and
the verification pipeline's static-safety pre-stage; select ``legacy`` via
``SearchOptions.analysis`` / CLI ``--analysis`` for the ablation baseline.
"""

from .analyzer import AbstractAnalyzer, AnalysisOutcome
from .domains import AbsVal, scalar_alu_transfer
from .state import AnalysisState
from .tnum import Tnum
from .transfer import refine_branch, transfer
from .verdicts import SafetyResult, SafetyViolation, SafetyViolationKind

__all__ = [
    "AbstractAnalyzer", "AnalysisOutcome", "AbsVal", "AnalysisState",
    "Tnum", "SafetyResult", "SafetyViolation", "SafetyViolationKind",
    "scalar_alu_transfer", "refine_branch", "transfer",
    "ANALYSIS_KINDS", "resolve_analysis_kind",
]

#: The selectable analysis implementations (the ``--analysis`` ablation).
ANALYSIS_KINDS = ("fused", "legacy")


def resolve_analysis_kind(kind) -> str:
    """Normalize an ``--analysis`` value, defaulting to ``fused``."""
    if kind is None:
        return "fused"
    if kind not in ANALYSIS_KINDS:
        raise ValueError(f"unknown analysis kind {kind!r}; "
                         f"choose from {', '.join(ANALYSIS_KINDS)}")
    return kind
