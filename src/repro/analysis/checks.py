"""Per-instruction safety checks over the fused abstract state.

These functions are the single implementation of the paper's §6 per-point
checklist, consumed by both unified checkers:

* :class:`repro.analysis.analyzer.AbstractAnalyzer` composes them through
  :func:`check_instruction` inside its memoized per-block walk (the search
  loop's :class:`~repro.safety.SafetyChecker` in ``fused`` mode);
* :class:`repro.verifier.KernelChecker` in ``fused`` mode calls the
  individual pieces from its path-sensitive ``do_check()`` walk, keeping
  its own kernel-style rejection messages where they differ.

The rules mirror the legacy :class:`~repro.safety.SafetyChecker` exactly,
plus the checks the interpreter enforces but the legacy pass missed:
atomic adds through context pointers, and helper arguments (map references
and the memory regions behind key/value/params pointers).
"""

from __future__ import annotations

from typing import List

from ..bpf.helpers import HELPERS, HelperId
from ..bpf.opcodes import AluOp, STACK_SIZE
from ..bpf.program import BpfProgram
from ..bpf.regions import MemRegion
from .domains import AbsVal
from .state import AnalysisState
from .verdicts import SafetyViolation, SafetyViolationKind

__all__ = ["check_uninitialized_reads", "check_pointer_alu",
           "check_memory_access", "check_helper_args", "check_exit",
           "check_instruction"]


def check_uninitialized_reads(insn, state: AnalysisState,
                              index: int) -> List[SafetyViolation]:
    violations = []
    for reg in insn.regs_read():
        if not state.regs[reg].initialized:
            violations.append(SafetyViolation(
                SafetyViolationKind.UNINITIALIZED_READ, index,
                f"r{reg} is read before being written"))
    return violations


def check_pointer_alu(insn, state: AnalysisState,
                      index: int) -> List[SafetyViolation]:
    """Kernel-checker constraint: most ALU ops are disallowed on pointers."""
    dst_val: AbsVal = state.regs[insn.dst]
    if not dst_val.is_pointer:
        return []
    op = insn.alu_op
    if op in (AluOp.MOV, AluOp.END):
        return []
    if insn.is_alu64 and op in (AluOp.ADD, AluOp.SUB):
        return []
    return [SafetyViolation(
        SafetyViolationKind.POINTER_ARITHMETIC, index,
        f"ALU operation {op.name} on a pointer into "
        f"{dst_val.region.value} memory")]


def check_memory_access(program: BpfProgram, insn, state: AnalysisState,
                        index: int,
                        strict_alignment: bool = True) -> List[SafetyViolation]:
    violations: List[SafetyViolation] = []
    base_reg = insn.src if insn.is_load else insn.dst
    base: AbsVal = state.regs[base_reg]
    width = insn.access_bytes

    if base.region in (MemRegion.SCALAR, MemRegion.UNKNOWN):
        return [SafetyViolation(
            SafetyViolationKind.UNKNOWN_POINTER, index,
            f"memory access through r{base_reg}, which does not hold a "
            f"pointer with known provenance")]
    if base.maybe_null:
        violations.append(SafetyViolation(
            SafetyViolationKind.NULL_DEREFERENCE, index,
            f"r{base_reg} may be NULL (unchecked bpf_map_lookup_elem result)"))
    if base.region == MemRegion.MAP_PTR:
        violations.append(SafetyViolation(
            SafetyViolationKind.UNKNOWN_POINTER, index,
            "direct memory access through a map reference"))
        return violations
    if base.region == MemRegion.PACKET_END:
        violations.append(SafetyViolation(
            SafetyViolationKind.OUT_OF_BOUNDS, index,
            "memory access through the data_end sentinel pointer"))
        return violations

    # The interpreter rejects both stores and atomic adds through context
    # pointers (the legacy checker missed the atomic-add case).
    if (insn.is_store or insn.is_xadd) and base.region == MemRegion.CTX:
        violations.append(SafetyViolation(
            SafetyViolationKind.CTX_STORE, index,
            "store through a context (PTR_TO_CTX) pointer"))
        return violations

    if base.offset is None:
        violations.append(SafetyViolation(
            SafetyViolationKind.OUT_OF_BOUNDS, index,
            f"cannot bound the offset of the access through r{base_reg}"))
        return violations
    offset = base.offset + insn.off

    if base.region == MemRegion.STACK:
        if not 0 <= offset <= STACK_SIZE - width:
            violations.append(SafetyViolation(
                SafetyViolationKind.OUT_OF_BOUNDS, index,
                f"stack access at r10{offset - STACK_SIZE:+d} "
                f"width {width} is out of bounds"))
        elif strict_alignment and offset % width != 0:
            violations.append(SafetyViolation(
                SafetyViolationKind.MISALIGNED_ACCESS, index,
                f"stack access at r10{offset - STACK_SIZE:+d} is not "
                f"{width}-byte aligned"))
        elif insn.is_load:
            missing = [b for b in range(offset, offset + width)
                       if b not in state.stack_written]
            if missing:
                violations.append(SafetyViolation(
                    SafetyViolationKind.UNINITIALIZED_READ, index,
                    f"stack bytes at r10{offset - STACK_SIZE:+d} are read "
                    f"before being written"))
    elif base.region == MemRegion.CTX:
        if not 0 <= offset <= program.hook.ctx_size - width:
            violations.append(SafetyViolation(
                SafetyViolationKind.OUT_OF_BOUNDS, index,
                f"ctx access at offset {offset} width {width} is out of "
                f"bounds for {program.hook.name}"))
    elif base.region == MemRegion.PACKET:
        bound = state.packet_bound
        if offset < 0 or offset + width > bound:
            violations.append(SafetyViolation(
                SafetyViolationKind.OUT_OF_BOUNDS, index,
                f"packet access at offset {offset} width {width} exceeds "
                f"the verified packet bound of {bound} bytes"))
    elif base.region == MemRegion.MAP_VALUE:
        value_size = None
        if base.map_fd is not None and base.map_fd in program.maps:
            value_size = program.maps.definition(base.map_fd).value_size
        if value_size is None:
            violations.append(SafetyViolation(
                SafetyViolationKind.UNKNOWN_POINTER, index,
                "cannot determine which map this value pointer refers to"))
        elif not 0 <= offset <= value_size - width:
            violations.append(SafetyViolation(
                SafetyViolationKind.OUT_OF_BOUNDS, index,
                f"map value access at offset {offset} width {width} exceeds "
                f"the value size of {value_size} bytes"))
    return violations


# --------------------------------------------------------------------------- #
# Helper argument checks (interpreter fault surface the legacy pass missed)
# --------------------------------------------------------------------------- #
def _check_map_ref(program: BpfProgram, state: AnalysisState, reg: int,
                   index: int, helper: str) -> List[SafetyViolation]:
    value = state.regs[reg]
    if value.region != MemRegion.MAP_PTR or value.map_fd is None \
            or value.map_fd not in program.maps:
        return [SafetyViolation(
            SafetyViolationKind.HELPER_MISUSE, index,
            f"r{reg} does not hold a valid map reference for {helper}")]
    return []


def _check_mem_arg(program: BpfProgram, state: AnalysisState, reg: int,
                   size: int, index: int, what: str) -> List[SafetyViolation]:
    """The helper will read (or write) ``size`` bytes through ``reg``."""
    value = state.regs[reg]
    kind = SafetyViolationKind.HELPER_MISUSE
    if value.region in (MemRegion.SCALAR, MemRegion.UNKNOWN,
                        MemRegion.MAP_PTR, MemRegion.PACKET_END):
        return [SafetyViolation(kind, index,
                                f"r{reg} does not point to readable memory "
                                f"for the {what}")]
    if value.maybe_null:
        return [SafetyViolation(kind, index,
                                f"r{reg} may be NULL (unchecked lookup) when "
                                f"passed as the {what}")]
    if value.offset is None:
        return [SafetyViolation(kind, index,
                                f"cannot bound the {what} pointer in r{reg}")]
    offset = value.offset
    if value.region == MemRegion.STACK:
        in_bounds = 0 <= offset <= STACK_SIZE - size
    elif value.region == MemRegion.CTX:
        in_bounds = 0 <= offset <= program.hook.ctx_size - size
    elif value.region == MemRegion.PACKET:
        in_bounds = 0 <= offset and offset + size <= state.packet_bound
    else:  # MAP_VALUE
        value_size = None
        if value.map_fd is not None and value.map_fd in program.maps:
            value_size = program.maps.definition(value.map_fd).value_size
        in_bounds = value_size is not None and 0 <= offset <= value_size - size
    if not in_bounds:
        return [SafetyViolation(kind, index,
                                f"the {what} in r{reg} ({size} bytes at "
                                f"{value.region.value}+{offset}) is out of "
                                f"bounds")]
    return []


def check_helper_args(program: BpfProgram, insn, state: AnalysisState,
                      index: int) -> List[SafetyViolation]:
    """Model the argument accesses the interpreter performs for this helper.

    Only helpers whose runtime implementation dereferences an argument are
    checked, so the rules flag exactly the calls that can fault.
    """
    spec = HELPERS.get(insn.imm)
    if spec is None:
        return []  # unknown helper: already a structural HELPER_MISUSE
    violations: List[SafetyViolation] = []
    helper_id = spec.helper_id
    if helper_id in (HelperId.MAP_LOOKUP_ELEM, HelperId.MAP_UPDATE_ELEM,
                     HelperId.MAP_DELETE_ELEM):
        violations.extend(_check_map_ref(program, state, 1, index, spec.name))
        if not violations:
            definition = program.maps.definition(state.regs[1].map_fd)
            violations.extend(_check_mem_arg(
                program, state, 2, definition.key_size, index, "map key"))
            if helper_id == HelperId.MAP_UPDATE_ELEM:
                violations.extend(_check_mem_arg(
                    program, state, 3, definition.value_size, index,
                    "map value"))
    elif helper_id == HelperId.REDIRECT_MAP:
        violations.extend(_check_map_ref(program, state, 1, index, spec.name))
    elif helper_id == HelperId.FIB_LOOKUP:
        violations.extend(_check_mem_arg(
            program, state, 2, 64, index, "fib_lookup params struct"))
    return violations


def check_exit(program: BpfProgram, state: AnalysisState, index: int,
               check_return_range: bool = True) -> List[SafetyViolation]:
    value = state.regs[0]
    if value.is_pointer:
        return [SafetyViolation(
            SafetyViolationKind.POINTER_LEAK, index,
            "r0 holds a kernel pointer at program exit")]
    if check_return_range and program.hook.return_range is not None \
            and value.is_scalar:
        low, high = program.hook.return_range
        const = value.const
        if const is not None and not low <= const <= high:
            return [SafetyViolation(
                SafetyViolationKind.BAD_RETURN_VALUE, index,
                f"return value {const} outside "
                f"[{low}, {high}] for hook {program.hook.name}")]
        if const is None and (value.rng.hi < low or value.rng.lo > high):
            return [SafetyViolation(
                SafetyViolationKind.BAD_RETURN_VALUE, index,
                f"return value in [{value.rng.lo}, {value.rng.hi}] is "
                f"outside [{low}, {high}] for hook {program.hook.name}")]
    return []


def check_instruction(program: BpfProgram, insn, state: AnalysisState,
                      index: int,
                      strict_alignment: bool = True) -> List[SafetyViolation]:
    """Every §6 rule for one instruction; composition used by the analyzer."""
    if insn.is_nop:
        return []
    violations = check_uninitialized_reads(insn, state, index)
    if insn.is_alu:
        violations.extend(check_pointer_alu(insn, state, index))
    if insn.is_memory:
        violations.extend(check_memory_access(program, insn, state, index,
                                              strict_alignment))
    if insn.is_call:
        violations.extend(check_helper_args(program, insn, state, index))
    if insn.is_exit:
        violations.extend(check_exit(program, state, index))
    return violations
