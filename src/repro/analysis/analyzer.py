"""The unified, incremental abstract-interpretation safety analyzer.

:class:`AbstractAnalyzer` runs the fused product domain
(:mod:`repro.analysis.domains`) over a program's basic blocks and produces
the complete §6 verdict — the engine behind
:class:`repro.safety.SafetyChecker` in ``fused`` mode and the pipeline's
static-safety pre-stage.

Incrementality for the synthesis hot loop
-----------------------------------------
Every MCMC proposal differs from the current program in a small window, so
most basic blocks are byte-identical *and* reached with an identical input
state.  The analyzer exploits that with three memo layers, mirroring the
execution engine's decode-window reuse:

* a **program memo** keyed on :meth:`BpfProgram.content_key` — re-checking
  an already-seen candidate costs one dict probe;
* a **block memo** keyed on ``(hook, maps, block instructions, input-state
  signature)`` — a mutated proposal only re-analyzes the blocks whose
  instructions or input state actually changed (violations are stored with
  block-relative indices and rebased on reuse, so a block summary is shared
  by every program that contains it anywhere);
* a **CFG-shape cache** keyed on the control-relevant fields of the
  instruction sequence, skipping block splitting and topological sorting
  when a proposal only rewrites straight-line code.

All memos are capacity-bounded LRUs and affect speed only, never verdicts;
``stats()`` exposes hit counters for the ablation bench
(``benchmarks/bench_analysis_incremental.py``).
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from ..bpf.helpers import HELPERS
from ..bpf.instruction import Instruction
from ..bpf.program import BpfProgram
from .checks import check_instruction
from .state import AnalysisState
from .transfer import refine_branch, transfer
from .verdicts import SafetyViolation, SafetyViolationKind

__all__ = ["AnalysisOutcome", "AbstractAnalyzer"]


# --------------------------------------------------------------------------- #
# CFG shape: the control structure of a program, independent of operands
# --------------------------------------------------------------------------- #
@dataclasses.dataclass
class _ShapeBlock:
    start: int
    end: int
    #: (successor block index, edge kind) with kind in {"taken","fall","seq"}.
    successors: Tuple[Tuple[int, str], ...] = ()


@dataclasses.dataclass
class _CfgShape:
    blocks: List[_ShapeBlock]
    topo_order: Optional[List[int]]     # None when the graph has a cycle
    reachable: frozenset
    #: Indices of unreachable blocks, in block order.
    unreachable: Tuple[int, ...]


_JMP_CLASS = 0x05      # InsnClass.JMP
_JMP32_CLASS = 0x06    # InsnClass.JMP32
_JA_BITS = 0x00        # JmpOp.JA
_CALL_BITS = 0x80      # JmpOp.CALL
_EXIT_BITS = 0x90      # JmpOp.EXIT


def _shape_key(instructions: Sequence[Instruction]) -> Tuple:
    """Control-relevant digest: exits, jump kinds and offsets per position.

    Works on raw opcode bits (not the classification properties, which
    construct enum members per call): this runs for every program of a
    synthesis trace, so it is deliberately branch-light.
    """
    key = []
    append = key.append
    for insn in instructions:
        opcode = insn.opcode
        cls = opcode & 0x07
        if cls == _JMP_CLASS:
            bits = opcode & 0xF0
            if bits == _EXIT_BITS:
                append(-1)
            elif bits == _JA_BITS:
                append(("j", insn.off))
            elif bits == _CALL_BITS:
                append(0)
            else:
                append(("c", insn.off))
        elif cls == _JMP32_CLASS:
            bits = opcode & 0xF0
            # JMP32-encoded JA/CALL/EXIT bit patterns are not control flow
            # (the classification properties treat them as plain insns).
            if bits in (_JA_BITS, _CALL_BITS, _EXIT_BITS):
                append(0)
            else:
                append(("c", insn.off))
        else:
            append(0)
    return tuple(key)


def _build_shape(instructions: Sequence[Instruction]) -> _CfgShape:
    n = len(instructions)
    leaders = {0}
    for index, insn in enumerate(instructions):
        if insn.is_exit:
            if index + 1 < n:
                leaders.add(index + 1)
        elif insn.is_conditional_jump or insn.is_unconditional_jump:
            leaders.add(index + 1 + insn.off)
            if index + 1 < n:
                leaders.add(index + 1)
    starts = sorted(leaders)
    start_to_block = {start: i for i, start in enumerate(starts)}
    blocks: List[_ShapeBlock] = []
    for i, start in enumerate(starts):
        end = starts[i + 1] if i + 1 < len(starts) else n
        blocks.append(_ShapeBlock(start=start, end=end))

    for block in blocks:
        last_index = block.end - 1
        last = instructions[last_index]
        successors: List[Tuple[int, str]] = []
        if last.is_exit:
            pass
        elif last.is_unconditional_jump:
            successors.append((start_to_block[last_index + 1 + last.off], "seq"))
        elif last.is_conditional_jump:
            taken_target = last_index + 1 + last.off
            if last.off == 0 and last_index + 1 < n:
                # Both outcomes reach the same block; neither refinement
                # holds on its own, so the edge carries the join of the two
                # refined states (labeling it "taken" — as the legacy CFG
                # dedup effectively did — would smuggle the taken-branch
                # fact into executions that did not take the branch).
                successors.append((start_to_block[taken_target], "both"))
            else:
                raw = [start_to_block[taken_target]]
                if last_index + 1 < n:
                    raw.append(start_to_block[last_index + 1])
                for succ in dict.fromkeys(raw):
                    kind = "taken" if blocks[succ].start == taken_target \
                        else "fall"
                    successors.append((succ, kind))
        elif last_index + 1 < n:
            successors.append((start_to_block[last_index + 1], "seq"))
        block.successors = tuple(successors)

    # Reachability (DFS from the entry block).
    reachable = set()
    stack = [0]
    while stack:
        node = stack.pop()
        if node in reachable:
            continue
        reachable.add(node)
        stack.extend(succ for succ, _ in blocks[node].successors)

    # Kahn topological sort over the whole block graph (matching the
    # legacy networkx-based is_loop_free / topological_order semantics).
    indegree = [0] * len(blocks)
    for block in blocks:
        for succ, _ in block.successors:
            indegree[succ] += 1
    worklist = [i for i in range(len(blocks)) if indegree[i] == 0]
    topo: List[int] = []
    while worklist:
        node = worklist.pop()
        topo.append(node)
        for succ, _ in blocks[node].successors:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                worklist.append(succ)
    topo_order = topo if len(topo) == len(blocks) else None

    unreachable = tuple(i for i in range(len(blocks)) if i not in reachable)
    return _CfgShape(blocks=blocks, topo_order=topo_order,
                     reachable=frozenset(reachable), unreachable=unreachable)


# --------------------------------------------------------------------------- #
# Block summaries and analysis outcomes
# --------------------------------------------------------------------------- #
@dataclasses.dataclass
class _BlockSummary:
    """Memoized result of analyzing one block from one input state."""

    #: Violations with block-relative instruction indices.
    violations: Tuple[SafetyViolation, ...]
    #: Output state per outgoing edge kind ("taken"/"fall"/"seq").
    out_states: Dict[str, AnalysisState]


@dataclasses.dataclass
class AnalysisOutcome:
    """The fused analyzer's verdict for one program."""

    violations: Tuple[SafetyViolation, ...]

    @property
    def safe(self) -> bool:
        return not self.violations

    def violation_kinds(self) -> frozenset:
        return frozenset(v.kind for v in self.violations)


class AbstractAnalyzer:
    """Forward abstract interpretation with per-block incremental reuse."""

    def __init__(self, strict_alignment: bool = True,
                 program_memo_size: int = 4096,
                 block_memo_size: int = 32768,
                 shape_cache_size: int = 1024):
        self.strict_alignment = strict_alignment
        self._program_memo: "OrderedDict[Tuple, AnalysisOutcome]" = OrderedDict()
        self._block_memo: "OrderedDict[Tuple, _BlockSummary]" = OrderedDict()
        self._shape_cache: "OrderedDict[Tuple, _CfgShape]" = OrderedDict()
        self._program_memo_size = program_memo_size
        self._block_memo_size = block_memo_size
        self._shape_cache_size = shape_cache_size
        #: Per-instruction structural facts (instructions are immutable and
        #: shared across the programs of a trace).
        self._insn_info: Dict[Instruction, Tuple] = {}
        #: Counters surfaced by :meth:`stats`.
        self.programs_analyzed = 0
        self.program_memo_hits = 0
        self.blocks_analyzed = 0
        self.blocks_reused = 0

    # ------------------------------------------------------------------ #
    # Pickling: chains ship analyzers to worker processes; the memos are
    # pure accelerators, so ship configuration only (like the engine).
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        return {"strict_alignment": self.strict_alignment,
                "program_memo_size": self._program_memo_size,
                "block_memo_size": self._block_memo_size,
                "shape_cache_size": self._shape_cache_size}

    def __setstate__(self, state):
        self.__init__(**state)

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        return {"programs_analyzed": self.programs_analyzed,
                "program_memo_hits": self.program_memo_hits,
                "blocks_analyzed": self.blocks_analyzed,
                "blocks_reused": self.blocks_reused,
                "block_memo_entries": len(self._block_memo)}

    def clear_memos(self) -> None:
        self._program_memo.clear()
        self._block_memo.clear()
        self._shape_cache.clear()
        self._insn_info.clear()

    # ------------------------------------------------------------------ #
    # Program-memo transfer: the durable verdict store persists program
    # memos across runs, and the parallel engine re-seeds worker analyzers
    # each generation (pickling ships configuration only, so the memos
    # would otherwise restart cold in every process-pool generation).
    # ------------------------------------------------------------------ #
    def export_program_memo(self) -> Dict[Tuple, AnalysisOutcome]:
        """A picklable snapshot of the program memo (content key → outcome)."""
        return dict(self._program_memo)

    def seed_program_memo(self,
                          entries: Dict[Tuple, AnalysisOutcome]) -> int:
        """Insert memo ``entries`` not already present; returns how many.

        Seeded entries land coldest in the LRU order, so a saturated memo
        sheds them before anything this analyzer computed itself.
        """
        inserted = 0
        for key, outcome in entries.items():
            if key in self._program_memo:
                continue
            self._program_memo[key] = outcome
            self._program_memo.move_to_end(key, last=False)
            inserted += 1
        while len(self._program_memo) > self._program_memo_size:
            self._program_memo.popitem(last=False)
        return inserted

    # ------------------------------------------------------------------ #
    def analyze(self, program: BpfProgram,
                use_memo: bool = True) -> AnalysisOutcome:
        """Full §6 verdict for ``program`` (memoized on its content key)."""
        key = program.content_key() if use_memo else None
        if key is not None:
            cached = self._program_memo.get(key)
            if cached is not None:
                self._program_memo.move_to_end(key)
                self.program_memo_hits += 1
                return cached

        outcome = self._analyze(program, use_memo)
        if key is not None:
            self._program_memo[key] = outcome
            if len(self._program_memo) > self._program_memo_size:
                self._program_memo.popitem(last=False)
        return outcome

    # ------------------------------------------------------------------ #
    def _analyze(self, program: BpfProgram, use_memo: bool) -> AnalysisOutcome:
        self.programs_analyzed += 1
        instructions = program.instructions
        violations = self._check_structure(program, use_memo)
        fatal = {SafetyViolationKind.MALFORMED, SafetyViolationKind.BAD_JUMP}
        if any(v.kind in fatal for v in violations):
            return AnalysisOutcome(tuple(violations))

        shape = self._shape_for(instructions, use_memo)
        if shape.topo_order is None:
            violations.append(SafetyViolation(
                SafetyViolationKind.LOOP, None,
                "control-flow graph contains a back edge (loop)"))
            return AnalysisOutcome(tuple(violations))
        for block_index in shape.unreachable:
            block = shape.blocks[block_index]
            # Blocks made entirely of NOP padding are tolerated: the search
            # introduces them deliberately and they never execute.
            if all(instructions[i].is_nop for i in range(block.start, block.end)):
                continue
            violations.append(SafetyViolation(
                SafetyViolationKind.UNREACHABLE_CODE, block.start,
                f"basic block {block_index} is unreachable"))

        # A reachable final block whose last instruction is neither an exit
        # nor a jump lets control run past the end of the program — the
        # interpreter faults with InvalidJumpTarget there.  (A conditional
        # jump at the very end has the same problem on its fallthrough
        # outcome; an unconditional jump either targets a valid leader or
        # was already flagged as BAD_JUMP above.)
        final_block = shape.blocks[-1]
        if len(shape.blocks) - 1 in shape.reachable:
            last = instructions[final_block.end - 1]
            if not last.is_exit and not last.is_unconditional_jump:
                violations.append(SafetyViolation(
                    SafetyViolationKind.BAD_JUMP, final_block.end - 1,
                    "control can run past the end of the program"))

        violations.extend(self._dataflow(program, shape, use_memo))
        return AnalysisOutcome(tuple(violations))

    # ------------------------------------------------------------------ #
    def _insn_structure_info(self, insn: Instruction,
                             use_memo: bool = True) -> Tuple:
        """(jump offset | None, unknown-helper, writes-r10, is-exit) for one
        instruction — memoized, since a synthesis trace reuses the same
        (immutable) instruction objects across thousands of programs."""
        info = self._insn_info.get(insn) if use_memo else None
        if info is None:
            jump_off = insn.off if insn.is_jump and not insn.is_call \
                and not insn.is_exit else None
            unknown_helper = insn.is_call and insn.imm not in HELPERS
            writes_r10 = bool(insn.dst == 10 and insn.regs_written()
                              and 10 in insn.regs_written())
            info = (jump_off, unknown_helper, writes_r10, insn.is_exit)
            if use_memo:
                if len(self._insn_info) >= 1 << 16:
                    self._insn_info.clear()
                self._insn_info[insn] = info
        return info

    def _check_structure(self, program: BpfProgram,
                         use_memo: bool = True) -> List[SafetyViolation]:
        violations: List[SafetyViolation] = []
        instructions = program.instructions
        if not instructions:
            return [SafetyViolation(SafetyViolationKind.MALFORMED, None,
                                    "empty program")]
        n = len(instructions)
        has_exit = False
        for index, insn in enumerate(instructions):
            jump_off, unknown_helper, writes_r10, is_exit = \
                self._insn_structure_info(insn, use_memo)
            has_exit = has_exit or is_exit
            if jump_off is not None:
                target = index + 1 + jump_off
                if not 0 <= target < n:
                    violations.append(SafetyViolation(
                        SafetyViolationKind.BAD_JUMP, index,
                        f"jump target {target} outside the program"))
            if unknown_helper:
                violations.append(SafetyViolation(
                    SafetyViolationKind.HELPER_MISUSE, index,
                    f"unknown helper id {insn.imm}"))
            if writes_r10:
                violations.append(SafetyViolation(
                    SafetyViolationKind.READ_ONLY_REGISTER, index,
                    "write to the read-only frame pointer r10"))
        if not has_exit:
            violations.insert(0, SafetyViolation(
                SafetyViolationKind.MALFORMED, None, "no exit instruction"))
        return violations

    # ------------------------------------------------------------------ #
    def _shape_for(self, instructions: Sequence[Instruction],
                   use_memo: bool) -> _CfgShape:
        if not use_memo:
            return _build_shape(instructions)
        key = _shape_key(instructions)
        shape = self._shape_cache.get(key)
        if shape is None:
            shape = _build_shape(instructions)
            self._shape_cache[key] = shape
            if len(self._shape_cache) > self._shape_cache_size:
                self._shape_cache.popitem(last=False)
        else:
            self._shape_cache.move_to_end(key)
        return shape

    # ------------------------------------------------------------------ #
    def _dataflow(self, program: BpfProgram, shape: _CfgShape,
                  use_memo: bool) -> List[SafetyViolation]:
        instructions = program.instructions
        env_sig = insn_sigs = None
        if use_memo:
            content = program.content_key()
            env_sig = (content[1], content[2])  # hook name + map definitions
            insn_sigs = content[0]

        violations: List[SafetyViolation] = []
        entry_states: Dict[int, AnalysisState] = {
            0: AnalysisState.entry(program.hook)}

        for block_index in shape.topo_order:
            if block_index not in shape.reachable:
                continue
            block = shape.blocks[block_index]
            state = entry_states.get(block_index)
            if state is None:
                continue

            summary = None
            memo_key = None
            if use_memo:
                memo_key = (env_sig, insn_sigs[block.start:block.end],
                            state.signature())
                summary = self._block_memo.get(memo_key)
            if summary is None:
                summary = self._analyze_block(program, instructions, block,
                                              state)
                self.blocks_analyzed += 1
                if memo_key is not None:
                    self._block_memo[memo_key] = summary
                    if len(self._block_memo) > self._block_memo_size:
                        self._block_memo.popitem(last=False)
            else:
                self._block_memo.move_to_end(memo_key)
                self.blocks_reused += 1

            if block.start:
                violations.extend(v.rebased(block.start)
                                  for v in summary.violations)
            else:
                violations.extend(summary.violations)

            for successor, kind in block.successors:
                out = summary.out_states[kind]
                existing = entry_states.get(successor)
                entry_states[successor] = out if existing is None \
                    else existing.join(out)
        return violations

    # ------------------------------------------------------------------ #
    def _analyze_block(self, program: BpfProgram,
                       instructions: Sequence[Instruction],
                       block: _ShapeBlock,
                       entry: AnalysisState) -> _BlockSummary:
        state = entry
        violations: List[SafetyViolation] = []
        hook = program.hook
        last_index = block.end - 1

        for index in range(block.start, block.end):
            insn = instructions[index]
            if insn.is_nop:
                continue
            violations.extend(check_instruction(
                program, insn, state, index - block.start,
                self.strict_alignment))
            if index == last_index:
                break
            if insn.is_exit or insn.is_unconditional_jump:
                break
            state = transfer(state, insn, hook)

        last = instructions[last_index]
        out_states: Dict[str, AnalysisState] = {}
        if last.is_exit:
            pass
        elif last.is_conditional_jump:
            taken = refine_branch(state, last, taken=True)
            fall = refine_branch(state, last, taken=False)
            out_states["taken"] = taken
            out_states["fall"] = fall
            out_states["both"] = taken.join(fall)
        elif last.is_unconditional_jump:
            out_states["seq"] = state.copy() if state is entry else state
        else:
            out_states["seq"] = transfer(state, last, hook)
        return _BlockSummary(violations=tuple(violations),
                             out_states=out_states)
