"""The fused product domain: provenance × known-bits × value range.

One :class:`AbsVal` describes a register (or a tracked stack slot) at one
program point.  It fuses the three per-register abstractions that used to
live in separate analyses:

* pointer provenance with a concrete region offset
  (:mod:`repro.bpf.memtypes` — region, offset, map fd, null-ness,
  initialization),
* known bits (:class:`~repro.analysis.tnum.Tnum`, the kernel verifier's
  tristate numbers),
* an unsigned 64-bit interval (:class:`~repro.bpf.valrange.ValueInterval`).

For pointers the scalar components are pinned to ⊤ (region + concrete
offset carry all the information the safety checks consume); for scalars
the region is :data:`~repro.bpf.regions.MemRegion.SCALAR` and the tnum and
interval both constrain the concrete value.  Constant folding delegates to
:func:`repro.semantics.alu_op_concrete` — the same table the interpreter
executes — so "the analyzer's constant" can never drift from "the value the
engine computes".
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..bpf.opcodes import AluOp
from ..bpf.regions import MemRegion
from ..bpf.valrange import ValueInterval, apply_alu
from ..semantics import alu_op_concrete
from .tnum import Tnum

__all__ = ["AbsVal", "scalar_alu_transfer"]

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1

_TOP_TNUM = Tnum.unknown()
_TOP_RANGE = ValueInterval.top()


@dataclasses.dataclass(frozen=True)
class AbsVal:
    """Abstract value of one register / stack slot in the fused domain."""

    region: MemRegion = MemRegion.UNKNOWN
    offset: Optional[int] = None     # concrete offset from the region base
    map_fd: Optional[int] = None     # for MAP_PTR / MAP_VALUE provenance
    maybe_null: bool = False         # pointer may be NULL (unchecked lookup)
    initialized: bool = True         # False for never-written registers
    tnum: Tnum = _TOP_TNUM           # known bits (scalars only)
    rng: ValueInterval = _TOP_RANGE  # unsigned interval (scalars only)

    def __hash__(self) -> int:
        # Abstract values are hashed millions of times as parts of the
        # incremental analyzer's block-memo keys and state signatures;
        # cache the (immutable) hash on first use.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.region, self.offset, self.map_fd,
                           self.maybe_null, self.initialized,
                           self.tnum, self.rng))
            self.__dict__["_hash"] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def scalar(const: Optional[int] = None) -> "AbsVal":
        if const is None:
            return _SCALAR_TOP
        const &= _U64
        return AbsVal(region=MemRegion.SCALAR, tnum=Tnum.const(const),
                      rng=ValueInterval.constant(const))

    @staticmethod
    def from_parts(tnum: Tnum, rng: ValueInterval) -> "AbsVal":
        """A scalar known only through its abstractions, cross-narrowed."""
        # Each component may know the value exactly; propagate the constant
        # into the other so queries see the tightest description.
        if tnum.is_const and not rng.is_constant:
            rng = ValueInterval.constant(tnum.value)
        elif rng.is_constant and not tnum.is_const:
            tnum = Tnum.const(rng.lo)
        return AbsVal(region=MemRegion.SCALAR, tnum=tnum, rng=rng)

    @staticmethod
    def pointer(region: MemRegion, offset: Optional[int] = None,
                map_fd: Optional[int] = None,
                maybe_null: bool = False) -> "AbsVal":
        return AbsVal(region=region, offset=offset, map_fd=map_fd,
                      maybe_null=maybe_null)

    @staticmethod
    def uninitialized() -> "AbsVal":
        return _UNINITIALIZED

    @staticmethod
    def unknown() -> "AbsVal":
        return _UNKNOWN

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def is_pointer(self) -> bool:
        return self.region not in (MemRegion.SCALAR, MemRegion.UNKNOWN)

    @property
    def is_scalar(self) -> bool:
        return self.region == MemRegion.SCALAR

    @property
    def const(self) -> Optional[int]:
        """The concrete 64-bit value, when either component proves it."""
        if self.region != MemRegion.SCALAR:
            return None
        if self.tnum.is_const:
            return self.tnum.value
        return self.rng.const

    # ------------------------------------------------------------------ #
    # Lattice
    # ------------------------------------------------------------------ #
    def join(self, other: "AbsVal") -> "AbsVal":
        """Least-upper-bound merge at control-flow joins."""
        if self == other:
            return self
        initialized = self.initialized and other.initialized
        if self.region == other.region:
            if self.region == MemRegion.SCALAR:
                return AbsVal(region=MemRegion.SCALAR,
                              initialized=initialized,
                              tnum=self.tnum.union(other.tnum),
                              rng=self.rng.join(other.rng))
            return AbsVal(
                region=self.region,
                offset=self.offset if self.offset == other.offset else None,
                map_fd=self.map_fd if self.map_fd == other.map_fd else None,
                maybe_null=self.maybe_null or other.maybe_null,
                initialized=initialized)
        return AbsVal(region=MemRegion.UNKNOWN, initialized=initialized)


_SCALAR_TOP = AbsVal(region=MemRegion.SCALAR)
_UNINITIALIZED = AbsVal(region=MemRegion.UNKNOWN, initialized=False)
_UNKNOWN = AbsVal(region=MemRegion.UNKNOWN)


def _tnum_alu(op: AluOp, dst: Tnum, src: Tnum, width: int) -> Tnum:
    """Known-bits transfer for one ALU operation at the given width."""
    if op == AluOp.MOV:
        return src
    if op == AluOp.ADD:
        return dst.add(src)
    if op == AluOp.SUB:
        return dst.sub(src)
    if op == AluOp.AND:
        return dst.bitwise_and(src)
    if op == AluOp.OR:
        return dst.bitwise_or(src)
    if op == AluOp.XOR:
        return dst.bitwise_xor(src)
    if op == AluOp.LSH and src.is_const:
        return dst.lshift(src.value & (width - 1))
    if op == AluOp.RSH and src.is_const:
        return dst.rshift(src.value & (width - 1))
    if op == AluOp.ARSH and src.is_const:
        return dst.arshift(src.value & (width - 1), width)
    # MUL / DIV / MOD and variable shifts: constants were folded exactly by
    # the caller; anything else has no cheap known-bits rule.
    return Tnum.unknown()


def scalar_alu_transfer(op: AluOp, dst: AbsVal, src: AbsVal,
                        is64: bool) -> AbsVal:
    """Fused scalar ALU transfer: exact constant folding, else tnum × range.

    Both operands must be scalars (pointer arithmetic is handled by the
    instruction-level transfer in :mod:`repro.analysis.transfer`).
    """
    dst_const, src_const = dst.const, src.const
    if dst_const is not None and src_const is not None:
        return AbsVal.scalar(alu_op_concrete(op, dst_const, src_const, is64))

    width = 64 if is64 else 32
    dst_t, src_t = dst.tnum, src.tnum
    if not is64:
        dst_t, src_t = dst_t.truncate32(), src_t.truncate32()
    tnum = _tnum_alu(op, dst_t, src_t, width)
    if not is64:
        tnum = tnum.truncate32()
    rng = apply_alu(op, dst.rng, src.rng, is64)
    return AbsVal.from_parts(tnum, rng)
