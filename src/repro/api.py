"""The stable public facade: one config type, four verbs.

Everything the CLI can do is reachable programmatically through this
module, with one typed :class:`K2Config` replacing the historical
``K2Compiler(...)`` keyword sprawl::

    from repro import api

    config = api.K2Config(iterations=2000, settings=4, store="v.k2s")
    result = api.optimize(api.benchmark_program("xdp_pktcntr"), config)

    job = api.submit(config, benchmark="xdp_pktcntr", state=".k2d")
    for event in api.watch(job, state=".k2d"):
        print(event.event, event.data)

``K2Config`` fields mirror the CLI flags one-for-one (``--sync-interval``
is ``sync_interval`` and so on), so anything expressible on the command
line is expressible here with the same names and defaults — the CLI
itself is built on this module, which keeps the two from drifting.

Compatibility: the pre-facade entry points (``K2Compiler(goal=...,
iterations_per_chain=..., ...)`` and friends) keep working for one
release behind deprecation shims that emit :class:`DeprecationWarning`;
new code should construct a :class:`K2Config` and call these functions.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional

from .bpf import BpfProgram, HookType, assemble, get_hook
from .bpf.maps import MapEnvironment
from .core import CompilationResult, K2Compiler, OptimizationGoal
from .equivalence import EquivalenceOptions
from .synthesis import SearchOptions

__all__ = ["K2Config", "optimize", "submit", "watch", "wait",
           "store_stats", "serve", "load_program", "benchmark_program"]


@dataclasses.dataclass
class K2Config:
    """Every search knob, as one typed value.

    Field names, meanings and defaults mirror the ``k2 optimize`` /
    ``k2 submit`` flags exactly; see ``k2 optimize --help`` for the long
    documentation of each.  The service-only fields (``priority``,
    ``shards``, ``share_cache``/``share_counterexamples``) are ignored by
    the in-process :func:`optimize` and consumed by :func:`submit`.
    """

    # Search shape (``k2 optimize`` flags).
    goal: str = "size"
    iterations: int = 2000
    settings: int = 4
    seed: int = 0
    num_workers: int = 1
    executor: str = "auto"
    sync_interval: Optional[int] = None
    engine: str = "batch"
    analysis: str = "fused"
    portfolio: bool = False
    windowed: bool = False
    window_size: int = 24
    window_overlap: int = 8
    store: Optional[str] = None
    conflict_budget: Optional[int] = None
    verify_pipeline: Optional[str] = None
    # Result shaping (library-only; no CLI flag changes these today).
    top_k: Optional[int] = None
    time_budget_seconds: Optional[float] = None
    # Service-side scheduling (``k2 submit`` flags).
    priority: int = 0
    shards: int = 1
    share_cache: bool = True
    share_counterexamples: bool = True

    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        if self.goal not in ("size", "latency"):
            raise ValueError("goal must be 'size' or 'latency'")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if self.settings <= 0:
            raise ValueError("settings must be positive")
        if self.window_size < 2 or not \
                0 <= self.window_overlap < self.window_size:
            raise ValueError("window_size must be >= 2 and window_overlap "
                             "must be >= 0 and smaller than window_size")
        if self.conflict_budget is not None and self.conflict_budget <= 0:
            raise ValueError("conflict_budget must be positive")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")

    # ------------------------------------------------------------------ #
    def equivalence_options(self) -> EquivalenceOptions:
        equivalence = EquivalenceOptions.from_stages(self.verify_pipeline) \
            if self.verify_pipeline is not None else EquivalenceOptions()
        if self.portfolio:
            equivalence.portfolio = True
        if self.conflict_budget is not None:
            equivalence = dataclasses.replace(
                equivalence, max_conflicts=int(self.conflict_budget))
        return equivalence

    def search_options(self) -> SearchOptions:
        """The fully-resolved library options this config denotes."""
        self.validate()
        goal = OptimizationGoal.LATENCY if self.goal == "latency" \
            else OptimizationGoal.INSTRUCTION_COUNT
        return SearchOptions(
            goal=goal,
            iterations_per_chain=int(self.iterations),
            num_parameter_settings=int(self.settings),
            top_k=self.top_k if self.top_k is not None else (
                1 if goal == OptimizationGoal.INSTRUCTION_COUNT else 5),
            seed=int(self.seed),
            time_budget_seconds=self.time_budget_seconds,
            num_workers=int(self.num_workers),
            executor=self.executor,
            sync_interval=self.sync_interval,
            equivalence=self.equivalence_options(),
            engine=self.engine,
            analysis=self.analysis,
            window_mode=bool(self.windowed),
            window_size=int(self.window_size),
            window_overlap=int(self.window_overlap),
            share_cache=bool(self.share_cache),
            share_counterexamples=bool(self.share_counterexamples),
            store_path=self.store)

    def compiler(self) -> K2Compiler:
        return K2Compiler(options=self.search_options())

    def job_spec(self, benchmark: Optional[str] = None,
                 program_text: Optional[str] = None, hook: str = "xdp",
                 sync_interval: Optional[int] = None):
        """The service :class:`~repro.service.jobs.JobSpec` of this config.

        ``sync_interval`` overrides the config's (the service default is a
        finite 250 — the daemon checkpoints at generation boundaries, so
        unbounded generations would make crashes expensive).
        """
        from .service import JobSpec

        self.validate()
        if sync_interval is None:
            sync_interval = self.sync_interval \
                if self.sync_interval is not None else 250
        return JobSpec(
            benchmark=benchmark, program_text=program_text, hook=hook,
            goal=self.goal, iterations=int(self.iterations),
            settings=int(self.settings), seed=int(self.seed),
            sync_interval=sync_interval,
            num_workers=int(self.num_workers), executor=self.executor,
            engine=self.engine, analysis=self.analysis,
            windowed=bool(self.windowed),
            window_size=int(self.window_size),
            window_overlap=int(self.window_overlap),
            conflict_budget=self.conflict_budget,
            priority=int(self.priority), shards=int(self.shards),
            share_cache=bool(self.share_cache),
            share_counterexamples=bool(self.share_counterexamples))


# --------------------------------------------------------------------------- #
# Program loading
# --------------------------------------------------------------------------- #
def load_program(path: str, hook: str = "xdp") -> BpfProgram:
    """A :class:`BpfProgram` from a ``.s`` assembly file."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return BpfProgram(instructions=assemble(text),
                      hook=get_hook(HookType(hook)),
                      maps=MapEnvironment(), name=path)


def benchmark_program(name: str) -> BpfProgram:
    """A corpus benchmark's program (see ``k2 corpus`` for names)."""
    from .corpus import get_benchmark

    return get_benchmark(name).program()


# --------------------------------------------------------------------------- #
# Verbs
# --------------------------------------------------------------------------- #
def optimize(program: BpfProgram, config: Optional[K2Config] = None,
             settings: Optional[List] = None) -> CompilationResult:
    """Optimize ``program`` in-process; the facade's ``k2 optimize``."""
    return (config or K2Config()).compiler().optimize(program,
                                                      settings=settings)


def submit(config: Optional[K2Config] = None, *,
           benchmark: Optional[str] = None,
           program_text: Optional[str] = None, hook: str = "xdp",
           sync_interval: Optional[int] = None,
           state: str = ".k2d") -> str:
    """Submit a job to the daemon at ``state``; returns the job id."""
    from .service import DaemonClient

    spec = (config or K2Config()).job_spec(
        benchmark=benchmark, program_text=program_text, hook=hook,
        sync_interval=sync_interval)
    return DaemonClient(state).submit(spec)


def watch(job_id: str, *, state: str = ".k2d",
          timeout: Optional[float] = None) -> Iterator:
    """Stream a job's pushed events (generation progress, state changes,
    shard transitions) until its terminal event — no polling; see
    :meth:`repro.service.DaemonClient.watch`."""
    from .service import DaemonClient

    return DaemonClient(state).watch(job_id, timeout=timeout)


def wait(job_id: str, *, state: str = ".k2d",
         timeout: Optional[float] = None) -> dict:
    """Block until the job is terminal; returns its full record."""
    from .service import DaemonClient

    return DaemonClient(state).wait(job_id, timeout=timeout)


def store_stats(path: str) -> dict:
    """Summary statistics of a durable verdict store file."""
    from .store import VerdictStore

    return VerdictStore(path).stats()


def serve(state: str = ".k2d", *, max_job_attempts: int = 3,
          max_concurrent_jobs: int = 1,
          worker_budget: Optional[int] = None,
          peers: Optional[List[str]] = None,
          install_signal_handlers: bool = True) -> int:
    """Run a daemon in this process until shutdown; the facade's
    ``k2 serve`` (blocks; returns the exit status)."""
    from .service import K2Daemon

    daemon = K2Daemon(state, max_job_attempts=max_job_attempts,
                      max_concurrent_jobs=max_concurrent_jobs,
                      worker_budget=worker_budget, peers=peers)
    return daemon.serve_forever(
        install_signal_handlers=install_signal_handlers)
