"""libbpf-style loading of BPF object files.

Loading turns the compile-time artefact (:class:`~repro.objfile.format.
BpfObjectFile`) into runnable programs:

1. every map symbol is *created*, i.e. assigned a file descriptor and turned
   into a :class:`repro.bpf.maps.MapDef` inside a shared
   :class:`repro.bpf.maps.MapEnvironment`;
2. every program section's text is decoded into logical instructions;
3. relocation records are applied: each referenced ``LDDW`` slot gets the
   pseudo-map-fd source marker and the freshly assigned file descriptor as its
   64-bit immediate, which is exactly what ``libbpf`` does before handing the
   program to the kernel (paper Appendix D — K2 consumes *relocated* ELF).

The loader is deliberately strict: relocations must point at the first slot of
a ``LDDW`` instruction, and un-relocated map references are rejected, because
silently accepting them is how subtle drop-in-replacement bugs appear.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from ..bpf.encoder import decode_program
from ..bpf.hooks import get_hook
from ..bpf.instruction import Instruction
from ..bpf.maps import MapEnvironment
from ..bpf.program import BpfProgram
from .format import BpfObjectFile, ObjectFormatError, ProgramSection

__all__ = ["LoadedProgram", "LoadedObject", "ObjectLoader", "load_object"]

#: Source-register marker the kernel uses for "imm is a map fd" LDDW loads.
PSEUDO_MAP_FD = 1


def _slot_of_logical(instructions: List[Instruction]) -> List[int]:
    """Raw slot index of each logical instruction (LDDW occupies two slots)."""
    slots = []
    slot = 0
    for insn in instructions:
        slots.append(slot)
        slot += 2 if insn.is_lddw else 1
    return slots


@dataclasses.dataclass
class LoadedProgram:
    """One relocated, runnable program plus its relocation bookkeeping."""

    program: BpfProgram
    section: ProgramSection
    #: logical instruction index -> map symbol name, for every relocation.
    relocated_instructions: Dict[int, str]


@dataclasses.dataclass
class LoadedObject:
    """The result of loading a full object file."""

    object_file: BpfObjectFile
    maps: MapEnvironment
    #: map symbol name -> assigned file descriptor.
    map_fds: Dict[str, int]
    programs: List[LoadedProgram]

    def program(self, name: str) -> BpfProgram:
        for loaded in self.programs:
            if loaded.program.name == name:
                return loaded.program
        raise KeyError(name)


class ObjectLoader:
    """Loads object files: creates maps and applies relocations."""

    def __init__(self, first_fd: int = 1):
        if first_fd <= 0:
            raise ValueError("file descriptors must be positive")
        self.first_fd = first_fd

    # ------------------------------------------------------------------ #
    def load(self, object_file: BpfObjectFile) -> LoadedObject:
        """Create maps, relocate and decode every program section."""
        object_file.validate()
        maps, map_fds = self._create_maps(object_file)
        programs = [self._load_section(section, maps, map_fds)
                    for section in object_file.programs]
        return LoadedObject(object_file=object_file, maps=maps,
                            map_fds=map_fds, programs=programs)

    # ------------------------------------------------------------------ #
    def _create_maps(self, object_file: BpfObjectFile
                     ) -> tuple[MapEnvironment, Dict[str, int]]:
        environment = MapEnvironment()
        fds: Dict[str, int] = {}
        next_fd = self.first_fd
        for symbol in object_file.maps:
            definition = symbol.to_map_def(next_fd)
            environment.add(definition)
            fds[symbol.name] = next_fd
            next_fd += 1
        return environment, fds

    def _load_section(self, section: ProgramSection, maps: MapEnvironment,
                      map_fds: Dict[str, int]) -> LoadedProgram:
        instructions = decode_program(section.text)
        slots = _slot_of_logical(instructions)
        logical_by_slot = {slot: index for index, slot in enumerate(slots)}

        relocated: Dict[int, str] = {}
        for relocation in section.relocations:
            index = logical_by_slot.get(relocation.slot_index)
            if index is None:
                raise ObjectFormatError(
                    f"program {section.name!r}: relocation slot "
                    f"{relocation.slot_index} is not the first slot of an "
                    f"instruction")
            insn = instructions[index]
            if not insn.is_lddw:
                raise ObjectFormatError(
                    f"program {section.name!r}: relocation at slot "
                    f"{relocation.slot_index} does not target a LDDW "
                    f"instruction")
            fd = map_fds[relocation.symbol]
            instructions[index] = insn.with_fields(
                src=PSEUDO_MAP_FD, imm=fd, imm64=fd)
            relocated[index] = relocation.symbol

        self._check_no_unrelocated_references(section, instructions, relocated)
        program = BpfProgram(instructions=instructions,
                             hook=get_hook(section.hook_type),
                             maps=maps, name=section.name)
        program.validate()
        return LoadedProgram(program=program, section=section,
                             relocated_instructions=relocated)

    @staticmethod
    def _check_no_unrelocated_references(section: ProgramSection,
                                         instructions: List[Instruction],
                                         relocated: Dict[int, str]) -> None:
        for index, insn in enumerate(instructions):
            if insn.is_lddw and insn.src == PSEUDO_MAP_FD \
                    and index not in relocated:
                raise ObjectFormatError(
                    f"program {section.name!r}: instruction {index} is a map "
                    f"reference but has no relocation record")


def load_object(object_file: BpfObjectFile,
                first_fd: int = 1) -> LoadedObject:
    """Convenience wrapper: ``ObjectLoader(first_fd).load(object_file)``."""
    return ObjectLoader(first_fd=first_fd).load(object_file)
