"""The BPF object-file container format.

A :class:`BpfObjectFile` plays the role of the clang-emitted ELF object in the
original system: it carries one or more *program sections* (raw kernel-format
bytecode), a table of *map symbols* (compile-time map definitions without file
descriptors), per-program *relocation records* that tie ``LDDW`` map-reference
instructions to map symbols, and the license string.

The binary layout is deliberately simple — a fixed header followed by length-
prefixed sections — but it exercises the same failure modes as real ELF
handling: symbol/relocation bookkeeping, offset arithmetic in raw instruction
slots (LDDW occupies two slots), and byte-exact round-tripping.  Encoding and
decoding are covered by property-based tests because, as the paper notes,
binary encode/decode is a classic source of compiler bugs.
"""

from __future__ import annotations

import dataclasses
import io
import struct
from typing import Dict, List, Sequence

from ..bpf.hooks import HookType
from ..bpf.maps import MapDef, MapType

__all__ = ["ObjectFormatError", "MapSymbol", "Relocation", "ProgramSection",
           "BpfObjectFile"]

#: File magic ("K2 object, BPF") and the format version this code writes.
MAGIC = b"K2OBJBPF"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<8sHHI")          # magic, version, flags, num sections
_SECTION_HEADER = struct.Struct("<BI")     # section kind, payload length
_MAP_SYMBOL = struct.Struct("<16sBIII")    # name, type, key, value, max_entries
_RELOCATION = struct.Struct("<I16s")       # raw slot index, symbol name
_PROGRAM_HEADER = struct.Struct("<32s16sII")  # name, hook, num relocs, text len

_SECTION_LICENSE = 1
_SECTION_MAPS = 2
_SECTION_PROGRAM = 3

_MAP_TYPE_CODES: Dict[MapType, int] = {
    map_type: index for index, map_type in enumerate(MapType, start=1)
}
_MAP_TYPE_BY_CODE: Dict[int, MapType] = {
    code: map_type for map_type, code in _MAP_TYPE_CODES.items()
}

_HOOK_CODES: Dict[HookType, bytes] = {
    hook: hook.value.encode("ascii") for hook in HookType
}


class ObjectFormatError(ValueError):
    """Raised for malformed object files or inconsistent metadata."""


def _encode_name(name: str, width: int) -> bytes:
    raw = name.encode("utf-8")
    if len(raw) > width:
        raise ObjectFormatError(f"name {name!r} longer than {width} bytes")
    return raw.ljust(width, b"\0")


def _decode_name(raw: bytes) -> str:
    return raw.rstrip(b"\0").decode("utf-8")


@dataclasses.dataclass(frozen=True)
class MapSymbol:
    """A compile-time map definition, before a file descriptor is assigned.

    This is the object-file analogue of ``struct bpf_map_def`` living in the
    ``maps`` ELF section: everything the loader needs to create the map, but
    no runtime identity yet.
    """

    name: str
    map_type: MapType
    key_size: int
    value_size: int
    max_entries: int

    def to_map_def(self, fd: int) -> MapDef:
        """Instantiate the symbol as a runtime map definition with ``fd``."""
        return MapDef(fd=fd, name=self.name, map_type=self.map_type,
                      key_size=self.key_size, value_size=self.value_size,
                      max_entries=self.max_entries)

    @classmethod
    def from_map_def(cls, definition: MapDef) -> "MapSymbol":
        """Strip the runtime fd from a map definition."""
        return cls(name=definition.name, map_type=definition.map_type,
                   key_size=definition.key_size,
                   value_size=definition.value_size,
                   max_entries=definition.max_entries)


@dataclasses.dataclass(frozen=True)
class Relocation:
    """One relocation record: a ``LDDW`` map reference inside a text section.

    ``slot_index`` is the index of the *raw 8-byte instruction slot* (not the
    logical instruction index) whose immediate must be rewritten with the map
    file descriptor at load time, exactly like an ELF relocation targets a
    byte offset in ``.text``.
    """

    slot_index: int
    symbol: str


@dataclasses.dataclass
class ProgramSection:
    """One program (text) section of the object file."""

    name: str
    hook_type: HookType
    text: bytes
    relocations: List[Relocation] = dataclasses.field(default_factory=list)

    @property
    def num_slots(self) -> int:
        """Number of raw 8-byte instruction slots in the text."""
        return len(self.text) // 8

    def validate(self, map_symbols: Sequence[MapSymbol]) -> None:
        """Check the section's internal consistency."""
        if len(self.text) % 8 != 0:
            raise ObjectFormatError(
                f"program {self.name!r}: text length {len(self.text)} is not "
                f"a multiple of the 8-byte instruction slot size")
        names = {symbol.name for symbol in map_symbols}
        for relocation in self.relocations:
            if not 0 <= relocation.slot_index < self.num_slots:
                raise ObjectFormatError(
                    f"program {self.name!r}: relocation slot "
                    f"{relocation.slot_index} outside the text section")
            if relocation.symbol not in names:
                raise ObjectFormatError(
                    f"program {self.name!r}: relocation references unknown "
                    f"map symbol {relocation.symbol!r}")


@dataclasses.dataclass
class BpfObjectFile:
    """The object-file container: programs, map symbols and license."""

    programs: List[ProgramSection] = dataclasses.field(default_factory=list)
    maps: List[MapSymbol] = dataclasses.field(default_factory=list)
    license: str = "GPL"

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def program(self, name: str) -> ProgramSection:
        for section in self.programs:
            if section.name == name:
                return section
        raise KeyError(name)

    def map_symbol(self, name: str) -> MapSymbol:
        for symbol in self.maps:
            if symbol.name == name:
                return symbol
        raise KeyError(name)

    def validate(self) -> None:
        """Validate every section against the symbol table."""
        names = [symbol.name for symbol in self.maps]
        if len(names) != len(set(names)):
            raise ObjectFormatError("duplicate map symbol names")
        section_names = [section.name for section in self.programs]
        if len(section_names) != len(set(section_names)):
            raise ObjectFormatError("duplicate program section names")
        for section in self.programs:
            section.validate(self.maps)

    # ------------------------------------------------------------------ #
    # Binary serialization
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """Serialize the object file to its binary representation."""
        self.validate()
        sections: List[bytes] = []

        license_payload = self.license.encode("utf-8")
        sections.append(_SECTION_HEADER.pack(_SECTION_LICENSE,
                                             len(license_payload)))
        sections.append(license_payload)

        maps_payload = b"".join(
            _MAP_SYMBOL.pack(_encode_name(symbol.name, 16),
                             _MAP_TYPE_CODES[symbol.map_type],
                             symbol.key_size, symbol.value_size,
                             symbol.max_entries)
            for symbol in self.maps)
        sections.append(_SECTION_HEADER.pack(_SECTION_MAPS, len(maps_payload)))
        sections.append(maps_payload)

        for section in self.programs:
            relocs = b"".join(
                _RELOCATION.pack(reloc.slot_index,
                                 _encode_name(reloc.symbol, 16))
                for reloc in section.relocations)
            header = _PROGRAM_HEADER.pack(
                _encode_name(section.name, 32),
                _encode_name(section.hook_type.value, 16),
                len(section.relocations), len(section.text))
            payload = header + relocs + section.text
            sections.append(_SECTION_HEADER.pack(_SECTION_PROGRAM, len(payload)))
            sections.append(payload)

        header = _HEADER.pack(MAGIC, FORMAT_VERSION, 0,
                              2 + len(self.programs))
        return header + b"".join(sections)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BpfObjectFile":
        """Parse a binary object file; raises :class:`ObjectFormatError`."""
        stream = io.BytesIO(data)
        header = stream.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise ObjectFormatError("truncated object file header")
        magic, version, _flags, num_sections = _HEADER.unpack(header)
        if magic != MAGIC:
            raise ObjectFormatError(f"bad magic {magic!r}")
        if version != FORMAT_VERSION:
            raise ObjectFormatError(f"unsupported format version {version}")

        result = cls(programs=[], maps=[], license="")
        for _ in range(num_sections):
            raw = stream.read(_SECTION_HEADER.size)
            if len(raw) < _SECTION_HEADER.size:
                raise ObjectFormatError("truncated section header")
            kind, length = _SECTION_HEADER.unpack(raw)
            payload = stream.read(length)
            if len(payload) < length:
                raise ObjectFormatError("truncated section payload")
            if kind == _SECTION_LICENSE:
                result.license = payload.decode("utf-8")
            elif kind == _SECTION_MAPS:
                result.maps.extend(cls._parse_maps(payload))
            elif kind == _SECTION_PROGRAM:
                result.programs.append(cls._parse_program(payload))
            else:
                raise ObjectFormatError(f"unknown section kind {kind}")
        if stream.read(1):
            raise ObjectFormatError("trailing bytes after the last section")
        result.validate()
        return result

    # ------------------------------------------------------------------ #
    @staticmethod
    def _parse_maps(payload: bytes) -> List[MapSymbol]:
        if len(payload) % _MAP_SYMBOL.size != 0:
            raise ObjectFormatError("malformed map symbol table")
        symbols = []
        for offset in range(0, len(payload), _MAP_SYMBOL.size):
            name, type_code, key_size, value_size, max_entries = \
                _MAP_SYMBOL.unpack_from(payload, offset)
            if type_code not in _MAP_TYPE_BY_CODE:
                raise ObjectFormatError(f"unknown map type code {type_code}")
            symbols.append(MapSymbol(
                name=_decode_name(name),
                map_type=_MAP_TYPE_BY_CODE[type_code],
                key_size=key_size, value_size=value_size,
                max_entries=max_entries))
        return symbols

    @staticmethod
    def _parse_program(payload: bytes) -> ProgramSection:
        if len(payload) < _PROGRAM_HEADER.size:
            raise ObjectFormatError("truncated program section")
        name, hook_name, num_relocs, text_len = \
            _PROGRAM_HEADER.unpack_from(payload, 0)
        offset = _PROGRAM_HEADER.size
        relocations = []
        for _ in range(num_relocs):
            if offset + _RELOCATION.size > len(payload):
                raise ObjectFormatError("truncated relocation table")
            slot, symbol = _RELOCATION.unpack_from(payload, offset)
            relocations.append(Relocation(slot_index=slot,
                                          symbol=_decode_name(symbol)))
            offset += _RELOCATION.size
        text = payload[offset:offset + text_len]
        if len(text) != text_len:
            raise ObjectFormatError("truncated program text")
        try:
            hook_type = HookType(_decode_name(hook_name))
        except ValueError as exc:
            raise ObjectFormatError(str(exc)) from exc
        return ProgramSection(name=_decode_name(name), hook_type=hook_type,
                              text=text, relocations=relocations)
