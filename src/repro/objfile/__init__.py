"""BPF object-file handling: container format, loader and patcher.

The real K2 consumes BPF object files emitted by clang (ELF with a text
section, map definitions and relocation records) and emits a patched ELF that
is a drop-in replacement for the original (paper §7, Appendix D).  ELF itself
is incidental to the paper; what matters is the round trip

    object file  →  relocated bytecode + map environment  →  optimize
                 →  patched object file with the original linkage intact.

This package reproduces that round trip with a compact container format:

* :mod:`repro.objfile.format` — the :class:`BpfObjectFile` container
  (program sections, map symbols, relocation records, license) and its
  binary serialization,
* :mod:`repro.objfile.loader` — libbpf-style loading: map creation (fd
  assignment) and relocation of ``LDDW`` map references, producing
  :class:`repro.bpf.BpfProgram` objects ready for the compiler,
* :mod:`repro.objfile.patcher` — producing a drop-in replacement object
  file from an optimized program while preserving map symbols and
  relocations.
"""

from .format import (
    MapSymbol,
    ObjectFormatError,
    ProgramSection,
    Relocation,
    BpfObjectFile,
)
from .loader import LoadedObject, LoadedProgram, ObjectLoader, load_object
from .patcher import ObjectPatcher, PatchError, build_object, patch_object

__all__ = [
    "build_object",
    "BpfObjectFile",
    "MapSymbol",
    "ObjectFormatError",
    "ProgramSection",
    "Relocation",
    "LoadedObject",
    "LoadedProgram",
    "ObjectLoader",
    "load_object",
    "ObjectPatcher",
    "PatchError",
    "patch_object",
]
