"""Producing drop-in replacement object files.

K2's output path (paper §7, Appendix D): the optimized instruction sequence is
patched back into the original object file so that every piece of linkage
metadata — map symbols and the relocation records that tie ``LDDW`` map
references to them — stays valid.  The result can be handed to the same loader
as the original object and behaves as a drop-in replacement.

Two entry points:

* :func:`build_object` constructs an object file from scratch out of
  :class:`~repro.bpf.program.BpfProgram` objects (the reverse of loading) —
  used by the test corpus and by examples to fabricate "clang outputs";
* :class:`ObjectPatcher` / :func:`patch_object` replace one program section
  of an existing object file with an optimized program, recomputing its
  relocation records.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..bpf.encoder import encode_program
from ..bpf.instruction import Instruction
from ..bpf.maps import MapEnvironment
from ..bpf.program import BpfProgram
from .format import BpfObjectFile, MapSymbol, ProgramSection, Relocation
from .loader import PSEUDO_MAP_FD, _slot_of_logical

__all__ = ["PatchError", "ObjectPatcher", "patch_object", "build_object"]


class PatchError(ValueError):
    """Raised when an optimized program cannot be patched into the object."""


def _strip_map_fds(instructions: Sequence[Instruction]) -> List[Instruction]:
    """Zero the immediates of map references, as stored in an object file."""
    stripped = []
    for insn in instructions:
        if insn.is_lddw and insn.src == PSEUDO_MAP_FD:
            stripped.append(insn.with_fields(imm=0, imm64=0))
        else:
            stripped.append(insn)
    return stripped


def _map_references(instructions: Sequence[Instruction]) -> Dict[int, int]:
    """Logical index -> map fd for every map-reference LDDW instruction."""
    return {index: (insn.imm64 if insn.imm64 is not None else insn.imm)
            for index, insn in enumerate(instructions)
            if insn.is_lddw and insn.src == PSEUDO_MAP_FD}


def _relocations_for(instructions: Sequence[Instruction],
                     symbol_by_fd: Dict[int, str]) -> List[Relocation]:
    """Relocation records for the map references of an instruction list."""
    slots = _slot_of_logical(list(instructions))
    relocations = []
    for index, fd in _map_references(instructions).items():
        symbol = symbol_by_fd.get(fd)
        if symbol is None:
            raise PatchError(
                f"instruction {index} references map fd {fd}, which does not "
                f"correspond to any map symbol of the object file")
        relocations.append(Relocation(slot_index=slots[index], symbol=symbol))
    return relocations


def build_object(programs: Iterable[BpfProgram],
                 maps: Optional[MapEnvironment] = None,
                 license: str = "GPL") -> BpfObjectFile:
    """Build an object file from programs sharing one map environment.

    Map symbols are derived from the map environment (or, if omitted, from the
    first program's map environment); each program's ``LDDW`` map references
    are converted into relocation records against those symbols and their
    immediates zeroed in the stored text, which is how a compiler emits them
    before loading assigns file descriptors.
    """
    programs = list(programs)
    if not programs:
        raise PatchError("an object file needs at least one program section")
    environment = maps if maps is not None else programs[0].maps
    symbols = [MapSymbol.from_map_def(definition)
               for definition in environment.definitions()]
    symbol_by_fd = {definition.fd: definition.name
                    for definition in environment.definitions()}

    sections = []
    for program in programs:
        relocations = _relocations_for(program.instructions, symbol_by_fd)
        text = encode_program(_strip_map_fds(program.instructions))
        sections.append(ProgramSection(
            name=program.name, hook_type=program.hook.hook_type,
            text=text, relocations=relocations))

    object_file = BpfObjectFile(programs=sections, maps=symbols,
                                license=license)
    object_file.validate()
    return object_file


class ObjectPatcher:
    """Patches optimized programs back into an existing object file."""

    def __init__(self, object_file: BpfObjectFile,
                 map_fds: Optional[Dict[str, int]] = None):
        """``map_fds`` is the symbol→fd assignment used when the object was
        loaded; if omitted, the loader's default sequential assignment is
        assumed (fd 1 for the first symbol, 2 for the second, ...)."""
        self.object_file = object_file
        if map_fds is None:
            map_fds = {symbol.name: index + 1
                       for index, symbol in enumerate(object_file.maps)}
        self.map_fds = dict(map_fds)
        self._symbol_by_fd = {fd: name for name, fd in self.map_fds.items()}

    # ------------------------------------------------------------------ #
    def patch(self, section_name: str, optimized: BpfProgram) -> BpfObjectFile:
        """Return a new object file with ``section_name`` replaced.

        Every other section, the map symbol table and the license are carried
        over untouched; the patched section's relocations are recomputed from
        the optimized program's map references.
        """
        optimized.validate()
        original = self._find_section(section_name)
        if original.hook_type != optimized.hook.hook_type:
            raise PatchError(
                f"optimized program targets hook "
                f"{optimized.hook.hook_type.value!r} but section "
                f"{section_name!r} was compiled for "
                f"{original.hook_type.value!r}")

        relocations = _relocations_for(optimized.instructions,
                                       self._symbol_by_fd)
        self._check_same_maps_referenced(original, relocations, section_name)
        text = encode_program(_strip_map_fds(optimized.instructions))
        patched_section = ProgramSection(
            name=original.name, hook_type=original.hook_type,
            text=text, relocations=relocations)

        sections = [patched_section if section.name == section_name else section
                    for section in self.object_file.programs]
        patched = BpfObjectFile(programs=sections,
                                maps=list(self.object_file.maps),
                                license=self.object_file.license)
        patched.validate()
        return patched

    # ------------------------------------------------------------------ #
    def _find_section(self, name: str) -> ProgramSection:
        try:
            return self.object_file.program(name)
        except KeyError as exc:
            raise PatchError(f"no program section named {name!r}") from exc

    @staticmethod
    def _check_same_maps_referenced(original: ProgramSection,
                                    relocations: Sequence[Relocation],
                                    section_name: str) -> None:
        """A drop-in replacement must not reference maps the original didn't.

        The optimizer may *drop* a map reference (e.g. if a lookup becomes
        dead code) but introducing a new one would change the program's
        externally visible footprint.
        """
        original_symbols = {reloc.symbol for reloc in original.relocations}
        new_symbols = {reloc.symbol for reloc in relocations}
        extra = new_symbols - original_symbols
        if extra:
            raise PatchError(
                f"optimized section {section_name!r} references maps the "
                f"original did not: {sorted(extra)}")


def patch_object(object_file: BpfObjectFile, section_name: str,
                 optimized: BpfProgram,
                 map_fds: Optional[Dict[str, int]] = None) -> BpfObjectFile:
    """Convenience wrapper around :class:`ObjectPatcher`."""
    return ObjectPatcher(object_file, map_fds=map_fds).patch(section_name,
                                                             optimized)
