"""The decode-once batched execution engine.

:class:`ExecutionEngine` is the hot-loop replacement for the legacy
:class:`~repro.interpreter.Interpreter`.  It factors one execution into the
three costs the legacy interpreter pays on *every step* and hoists two of
them out of the loop:

* **dispatch** — resolved once per instruction at decode time
  (:mod:`repro.engine.decode`), cached across proposals;
* **state setup** — machine buffers allocated once and rewound in place
  between runs (:mod:`repro.engine.machine`);
* **semantics** — shared with the legacy interpreter through
  :mod:`repro.semantics`, so outputs are bit-identical.

``run(program, test)`` matches ``Interpreter.run`` exactly;
``run_batch(program, tests)`` amortizes the decode and machine setup over a
whole test suite, which is the shape of every hot-loop consumer (the MCMC
accept/reject step, the verification pipeline's replay stage, the perf rig).

:func:`create_engine` builds either engine from the ``--engine
legacy|decoded`` ablation knob; both expose the same ``run`` / ``run_batch``
surface.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..bpf.instruction import Instruction
from ..bpf.program import BpfProgram
from ..interpreter.errors import (
    BpfFault,
    InstructionLimitExceeded,
    InvalidJumpTarget,
)
from ..interpreter.interpreter import DEFAULT_STEP_LIMIT, Interpreter
from ..interpreter.state import PACKET_HEADROOM, ProgramInput, ProgramOutput
from .decode import DecodedProgram, ProgramDecoder
from .fuse import FusedDecoder, FusedProgram
from .machine import ResettableMachine

__all__ = ["ExecutionEngine", "FusedEngine", "create_engine", "ENGINE_KINDS",
           "DEFAULT_ENGINE_KIND"]

#: Engine kinds accepted by :func:`create_engine` and the CLI ``--engine``.
ENGINE_KINDS = ("batch", "fused", "decoded", "legacy")
DEFAULT_ENGINE_KIND = "batch"


class ExecutionEngine:
    """Executes BPF programs through pre-decoded micro-ops.

    Drop-in compatible with :class:`~repro.interpreter.Interpreter` (same
    constructor semantics, same ``run`` contract, bit-identical outputs) but
    designed to be *long-lived*: one engine per hot-loop consumer, so its
    decode cache and reusable machine state persist across the thousands of
    candidate executions of a synthesis run.

    Args:
        step_limit: dynamic instruction budget per run.
        opcode_cost_fn: optional per-instruction cost model; evaluated once
            per instruction at decode time (not once per executed step) and
            accumulated into ``ProgramOutput.estimated_ns`` in execution
            order, so totals match the legacy interpreter bit-for-bit.
        strict_uninitialized: fault on reads of uninitialized registers or
            stack bytes (compiled into the micro-ops).
        decode_cache_size: LRU capacity of the whole-program decode cache.
    """

    kind = "decoded"

    #: Decoder factory; the fused subclass swaps in its block compiler.
    _decoder_class = ProgramDecoder

    def __init__(self, step_limit: int = DEFAULT_STEP_LIMIT,
                 opcode_cost_fn: Optional[Callable[[Instruction], float]] = None,
                 strict_uninitialized: bool = True,
                 decode_cache_size: int = 512):
        self.step_limit = step_limit
        self.opcode_cost_fn = opcode_cost_fn
        self.strict_uninitialized = strict_uninitialized
        self._decoder = self._decoder_class(
            strict_uninitialized=strict_uninitialized,
            opcode_cost_fn=opcode_cost_fn,
            cache_size=decode_cache_size)
        self._machine: Optional[ResettableMachine] = None
        self.runs = 0

    # ------------------------------------------------------------------ #
    # Pickling: engines travel inside MarkovChain work units to process
    # pools.  Micro-ops are closures (unpicklable) and the machine is pure
    # scratch, so only the configuration crosses the boundary; caches
    # rebuild lazily on the other side.
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        return {"step_limit": self.step_limit,
                "opcode_cost_fn": self.opcode_cost_fn,
                "strict_uninitialized": self.strict_uninitialized,
                "decode_cache_size": self._decoder.cache_size}

    def __setstate__(self, state):
        self.__init__(**state)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def decode(self, program: BpfProgram) -> DecodedProgram:
        """Decode ``program`` (or fetch it from the LRU decode cache)."""
        return self._decoder.decode(program)

    def run(self, program: BpfProgram, test: ProgramInput) -> ProgramOutput:
        """Execute ``program`` on ``test``; faults are reported, not raised."""
        decoded = self.decode(program)
        machine = self._machine_for(program)
        machine.reset(test)
        return self._execute(decoded, machine)

    def run_batch(self, program: BpfProgram, tests: Sequence[ProgramInput],
                  stop_on_first_fault: bool = False,
                  expected: Optional[Sequence[ProgramOutput]] = None,
                  expected_observables: Optional[Sequence[tuple]] = None,
                  ) -> List[ProgramOutput]:
        """Execute ``program`` on every test, decoding once.

        With ``stop_on_first_fault`` the batch ends after the first faulting
        output (which is included in the returned list) — callers that only
        need to know *whether* a candidate misbehaves can skip the rest.

        With ``expected`` (reference outputs aligned with ``tests``) the
        batch ends after the first output whose ``observable()`` diverges
        from the reference — the replay stage's first-divergence early
        exit.  The divergent output is included, so a returned list shorter
        than ``tests`` pinpoints the refuting index at ``len(result) - 1``.

        ``expected_observables`` is the same early exit against
        *precomputed* ``ProgramOutput.observable()`` tuples — the replay
        stage derives them once per counterexample-pool refresh instead of
        once per candidate.
        """
        decoded = self.decode(program)
        machine = self._machine_for(program)
        outputs: List[ProgramOutput] = []
        for index, test in enumerate(tests):
            machine.reset(test)
            output = self._execute(decoded, machine)
            outputs.append(output)
            if stop_on_first_fault and output.fault is not None:
                break
            if expected is not None and \
                    output.observable() != expected[index].observable():
                break
            if expected_observables is not None and \
                    output.observable() != expected_observables[index]:
                break
        return outputs

    def stats(self) -> dict:
        """Decode-cache and run counters (benchmark / diagnostic surface)."""
        summary = self._decoder.stats()
        summary["runs"] = self.runs
        return summary

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _machine_for(self, program: BpfProgram) -> ResettableMachine:
        machine = self._machine
        # Identity checks catch a different hook/environment; the definition
        # comparison catches in-place mutation of a shared MapEnvironment
        # (MapEnvironment.add after this engine's first run).
        if (machine is None or machine.hook is not program.hook
                or machine.maps_env is not program.maps
                or machine.map_defs != tuple(program.maps.definitions())):
            machine = ResettableMachine(program.hook, program.maps)
            self._machine = machine
        return machine

    def _execute(self, decoded: DecodedProgram,
                 machine: ResettableMachine) -> ProgramOutput:
        ops = decoded.ops
        costs = decoded.costs
        num_insns = len(ops)
        limit = self.step_limit
        output = ProgramOutput()
        estimated = 0.0
        steps = 0
        pc = 0
        self.runs += 1
        try:
            if costs is None:
                while True:
                    if steps >= limit:
                        raise InstructionLimitExceeded(
                            f"exceeded {limit} steps", pc)
                    if not 0 <= pc < num_insns:
                        raise InvalidJumpTarget(f"pc {pc} outside program", pc)
                    steps += 1
                    next_pc = ops[pc](machine, pc)
                    if next_pc is None:
                        output.return_value = machine.exit_value
                        break
                    pc = next_pc
            else:
                while True:
                    if steps >= limit:
                        raise InstructionLimitExceeded(
                            f"exceeded {limit} steps", pc)
                    if not 0 <= pc < num_insns:
                        raise InvalidJumpTarget(f"pc {pc} outside program", pc)
                    steps += 1
                    estimated += costs[pc]
                    next_pc = ops[pc](machine, pc)
                    if next_pc is None:
                        output.return_value = machine.exit_value
                        break
                    pc = next_pc
        except BpfFault as fault:
            output.fault = f"{type(fault).__name__}: {fault}"
            output.return_value = None
        output.steps = steps
        output.estimated_ns = estimated
        output.packet = machine.packet_bytes()
        output.maps = machine.snapshot_maps()
        return output


class FusedEngine(ExecutionEngine):
    """The superinstruction tier: fused blocks plus batched replay.

    Two changes over the decoded engine, both proven bit-identical by the
    differential batteries in ``tests/test_engine_fused.py`` and
    ``tests/test_batch_replay.py``:

    * programs decode to per-basic-block superinstructions
      (:mod:`repro.engine.fuse`) executed by a block-level dispatch loop —
      one Python call per *block* instead of one per instruction;
    * :meth:`run_batch` rewinds the machine from cached per-test reset
      images (the packet/ctx row matrix built by
      :meth:`~repro.engine.machine.ResettableMachine.reset_images`) instead
      of re-deriving ctx fields and replaying map contents on every run.

    Programs whose static jump structure the CFG builder rejects fall back
    to decoded per-instruction execution inside the fusing decoder, so the
    engine accepts exactly the programs the other engines accept.

    ``promote_after`` tunes the decoder's tiered promotion: a program
    executes through the decoded tier until its ``content_key`` has been
    decoded that many times, and only then pays block-trace compilation.
    Synthesis churn (every proposal is a new content key, most die after
    one replay) stays on the cheap tier; survivors get fused throughput.
    Pass ``1`` to compile eagerly (the pre-promotion behaviour).
    """

    kind = "fused"
    _decoder_class = FusedDecoder

    def __init__(self, step_limit: int = DEFAULT_STEP_LIMIT,
                 opcode_cost_fn: Optional[Callable[[Instruction], float]] = None,
                 strict_uninitialized: bool = True,
                 decode_cache_size: int = 512,
                 promote_after: Optional[int] = None):
        super().__init__(step_limit=step_limit,
                         opcode_cost_fn=opcode_cost_fn,
                         strict_uninitialized=strict_uninitialized,
                         decode_cache_size=decode_cache_size)
        if promote_after is not None:
            self._decoder.promote_after = promote_after

    def __getstate__(self):
        state = super().__getstate__()
        state["promote_after"] = self._decoder.promote_after
        return state

    def run_batch(self, program: BpfProgram, tests: Sequence[ProgramInput],
                  stop_on_first_fault: bool = False,
                  expected: Optional[Sequence[ProgramOutput]] = None,
                  expected_observables: Optional[Sequence[tuple]] = None,
                  ) -> List[ProgramOutput]:
        decoded = self.decode(program)
        machine = self._machine_for(program)
        images = machine.reset_images(tests)
        outputs: List[ProgramOutput] = []
        for index, image in enumerate(images):
            machine.reset_from_image(image)
            output = self._execute(decoded, machine)
            outputs.append(output)
            if stop_on_first_fault and output.fault is not None:
                break
            if expected is not None and \
                    output.observable() != expected[index].observable():
                break
            if expected_observables is not None and \
                    output.observable() != expected_observables[index]:
                break
        return outputs

    def _execute(self, decoded, machine: ResettableMachine) -> ProgramOutput:
        if not isinstance(decoded, FusedProgram):
            # CfgError fallback: per-instruction decoded execution.
            return super()._execute(decoded, machine)
        handlers = decoded.handlers
        num_insns = decoded.num_insns
        limit = self.step_limit
        estimated = 0.0
        steps = 0
        pc = 0
        return_value = None
        fault_text = None
        self.runs += 1
        try:
            while True:
                if not 0 <= pc < num_insns:
                    # Mirror the legacy loop's fault precedence exactly:
                    # the step-limit check runs before the pc-bounds check
                    # on every iteration.
                    machine.fused_steps = steps
                    machine.fused_est = estimated
                    if steps >= limit:
                        raise InstructionLimitExceeded(
                            f"exceeded {limit} steps", pc)
                    raise InvalidJumpTarget(f"pc {pc} outside program", pc)
                pc, steps, estimated = handlers[pc](
                    machine, steps, limit, estimated)
                if pc is None:
                    return_value = machine.exit_value
                    break
        except BpfFault as fault:
            fault_text = f"{type(fault).__name__}: {fault}"
            # The loop locals are stale when a block raised mid-flight; the
            # block (or the bounds check above) spilled exact progress.
            steps = machine.fused_steps
            estimated = machine.fused_est
        # Untouched packet: serve the image's captured packet output (equal
        # bytes; the flag is set by every packet byte-write path and the
        # extent compare catches adjust_head/adjust_tail).
        packet = machine._image_packet_out
        if (packet is None or machine.packet_dirty
                or machine.packet_start != PACKET_HEADROOM
                or machine.packet_end != machine._image_packet_end):
            packet = machine.packet_bytes()
        return ProgramOutput(return_value, packet,
                             machine.snapshot_maps_dirty(), fault_text,
                             steps, estimated)


def create_engine(kind: Optional[str] = None,
                  step_limit: int = DEFAULT_STEP_LIMIT,
                  opcode_cost_fn: Optional[Callable[[Instruction], float]] = None,
                  strict_uninitialized: bool = True,
                  decode_cache_size: int = 512):
    """Build an execution engine for the ``--engine
    batch|fused|decoded|legacy`` knob.

    ``None`` (and ``"auto"``) select the batch engine — the lockstep
    vectorized tier, which degrades gracefully to fused execution for small
    batches or hosts without numpy — while ``"fused"``, ``"decoded"`` and
    ``"legacy"`` remain as ablation baselines (the throughput bench gates
    each tier against the one below).
    """
    if kind is None or kind == "auto":
        kind = DEFAULT_ENGINE_KIND
    if kind == "batch":
        from .batch import BatchedEngine
        return BatchedEngine(step_limit=step_limit,
                             opcode_cost_fn=opcode_cost_fn,
                             strict_uninitialized=strict_uninitialized,
                             decode_cache_size=decode_cache_size)
    if kind == "fused":
        return FusedEngine(step_limit=step_limit,
                           opcode_cost_fn=opcode_cost_fn,
                           strict_uninitialized=strict_uninitialized,
                           decode_cache_size=decode_cache_size)
    if kind == "decoded":
        return ExecutionEngine(step_limit=step_limit,
                               opcode_cost_fn=opcode_cost_fn,
                               strict_uninitialized=strict_uninitialized,
                               decode_cache_size=decode_cache_size)
    if kind == "legacy":
        return Interpreter(step_limit=step_limit,
                           opcode_cost_fn=opcode_cost_fn,
                           strict_uninitialized=strict_uninitialized)
    raise ValueError(
        f"unknown engine kind {kind!r}; choose from {ENGINE_KINDS}")
