"""Decode-once batched execution engine for the synthesis hot loop.

The package splits execution into five layers:

* :mod:`repro.engine.decode` — per-instruction micro-op compilation with an
  instruction memo and an LRU whole-program decode cache;
* :mod:`repro.engine.fuse` — superinstruction fusion: each basic block
  compiled into one exec'd callable, behind the same cache layers plus a
  per-block memo, with tiered promotion (decoded tier until a content key
  recurs, fused blocks after);
* :mod:`repro.engine.batch` — the lockstep vectorized tier: basic blocks
  compiled into functions over a structure-of-arrays machine image so one
  call advances a whole test batch, with warp-style divergence masks and
  per-lane scalar retirement;
* :mod:`repro.engine.machine` — machine state allocated once and rewound in
  place between test cases, with per-test reset images backing the batched
  replay fast path;
* :mod:`repro.engine.engine` — the :class:`ExecutionEngine` /
  :class:`FusedEngine` run loops, the batched ``run_batch`` API and the
  :func:`create_engine` factory behind the ``--engine
  batch|fused|decoded|legacy`` ablation knob.

Outputs are bit-identical to :class:`repro.interpreter.Interpreter` across
all engine kinds; the engines only change *when* dispatch and allocation
work happens — and, for the batch tier, *how many tests* one dispatch
advances.
"""

from .batch import BatchedEngine
from .decode import DecodedProgram, MicroOp, ProgramDecoder, compile_instruction
from .engine import (
    DEFAULT_ENGINE_KIND, ENGINE_KINDS, ExecutionEngine, FusedEngine,
    create_engine,
)
from .fuse import FusedDecoder, FusedProgram
from .machine import ResettableMachine

__all__ = [
    "BatchedEngine", "DecodedProgram", "MicroOp", "ProgramDecoder",
    "compile_instruction", "DEFAULT_ENGINE_KIND", "ENGINE_KINDS",
    "ExecutionEngine", "FusedEngine", "create_engine", "FusedDecoder",
    "FusedProgram", "ResettableMachine",
]
