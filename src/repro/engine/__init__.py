"""Decode-once batched execution engine for the synthesis hot loop.

The package splits execution into three layers:

* :mod:`repro.engine.decode` — per-instruction micro-op compilation with an
  instruction memo and an LRU whole-program decode cache;
* :mod:`repro.engine.machine` — machine state allocated once and rewound in
  place between test cases;
* :mod:`repro.engine.engine` — the :class:`ExecutionEngine` run loop, the
  batched ``run_batch`` API and the :func:`create_engine` factory behind the
  ``--engine legacy|decoded`` ablation knob.

Outputs are bit-identical to :class:`repro.interpreter.Interpreter`; the
engine only changes *when* dispatch and allocation work happens.
"""

from .decode import DecodedProgram, MicroOp, ProgramDecoder, compile_instruction
from .engine import (
    DEFAULT_ENGINE_KIND, ENGINE_KINDS, ExecutionEngine, create_engine,
)
from .machine import ResettableMachine

__all__ = [
    "DecodedProgram", "MicroOp", "ProgramDecoder", "compile_instruction",
    "DEFAULT_ENGINE_KIND", "ENGINE_KINDS", "ExecutionEngine", "create_engine",
    "ResettableMachine",
]
