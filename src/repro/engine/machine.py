"""Reusable machine state for the decode-once execution engine.

The legacy interpreter allocates a fresh :class:`~repro.interpreter.state.
MachineState` — registers, 512-byte stack, packet buffer, context struct and
every map's runtime state — for every test case it runs.  Inside the MCMC
hot loop that allocation happens tens of thousands of times per second and
dominates the cost of short programs.  :class:`ResettableMachine` allocates
those buffers once and rewinds them in place between runs:

* registers and initialization flags are cleared,
* the stack and its initialization shadow are zero-filled into the existing
  ``bytearray`` objects,
* the packet buffer is resized/refilled in place from the test's packet,
* maps are rewound through :meth:`repro.bpf.maps.MapState.reset`, which
  replays the address allocation sequence so flat value addresses are
  identical to a freshly instantiated map.

The reset observably matches construction: a machine reset for test *t*
behaves bit-for-bit like ``MachineState(hook, maps, t)`` (the differential
engine tests run both engines over batches to enforce this).
"""

from __future__ import annotations

from typing import List, Optional

from ..bpf.hooks import Hook
from ..bpf.maps import MapEnvironment
from ..bpf.opcodes import STACK_SIZE
from ..bpf.regions import CTX_BASE, STACK_BASE
from ..interpreter.state import MachineState, PACKET_HEADROOM, ProgramInput

__all__ = ["ResettableMachine"]

_ZERO_STACK = bytes(STACK_SIZE)
_ZERO_HEADROOM = bytes(PACKET_HEADROOM)


class ResettableMachine(MachineState):
    """A :class:`MachineState` whose buffers are reused across runs.

    Construction allocates everything once for a (hook, map environment)
    pair; :meth:`reset` rewinds the state for the next test case.  The
    machine is only valid for programs sharing that hook and map
    environment — the owning engine rebuilds it when they change.
    """

    def __init__(self, hook: Hook, maps: MapEnvironment):
        self.hook = hook
        self.maps_env = maps
        #: Definition snapshot: lets the engine detect in-place mutation of
        #: a shared MapEnvironment and rebuild the machine.
        self.map_defs = tuple(maps.definitions())
        self.test: Optional[ProgramInput] = None
        self.regs: List[int] = [0] * 11
        self.reg_initialized = [False] * 11
        self.stack = bytearray(STACK_SIZE)
        self.stack_initialized = bytearray(STACK_SIZE)
        self.packet_buffer = bytearray(PACKET_HEADROOM)
        self.packet_start = PACKET_HEADROOM
        self.packet_end = PACKET_HEADROOM
        self.ctx = bytearray(hook.ctx_size)
        self._zero_ctx = bytes(hook.ctx_size)
        self.maps = maps.instantiate()
        self._random_cursor = 0
        self.helper_trace: List[tuple] = []
        #: Set by the EXIT micro-op; read by the engine's run loop.
        self.exit_value: Optional[int] = None

    # ------------------------------------------------------------------ #
    def reset(self, test: ProgramInput) -> None:
        """Rewind every buffer for ``test`` (same effect as reconstruction)."""
        self.test = test
        regs = self.regs
        initialized = self.reg_initialized
        for index in range(11):
            regs[index] = 0
            initialized[index] = False

        self.stack[:] = _ZERO_STACK
        self.stack_initialized[:] = _ZERO_STACK

        packet = test.packet
        buffer = self.packet_buffer
        buffer[:PACKET_HEADROOM] = _ZERO_HEADROOM
        buffer[PACKET_HEADROOM:] = packet       # resizes in place
        self.packet_start = PACKET_HEADROOM
        self.packet_end = PACKET_HEADROOM + len(packet)

        self.ctx[:] = self._zero_ctx
        self._populate_ctx()

        maps = self.maps
        for state in maps.values():
            state.reset()
        for fd, entries in test.map_contents.items():
            if fd not in maps:
                continue
            for key, value in entries.items():
                maps[fd].update(key, value)

        self._random_cursor = 0
        self.helper_trace = []
        self.exit_value = None

        # Register ABI: r1 = ctx pointer, r10 = frame pointer.
        regs[1] = CTX_BASE
        initialized[1] = True
        regs[10] = STACK_BASE + STACK_SIZE
        initialized[10] = True
