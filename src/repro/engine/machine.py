"""Reusable machine state for the decode-once execution engine.

The legacy interpreter allocates a fresh :class:`~repro.interpreter.state.
MachineState` — registers, 512-byte stack, packet buffer, context struct and
every map's runtime state — for every test case it runs.  Inside the MCMC
hot loop that allocation happens tens of thousands of times per second and
dominates the cost of short programs.  :class:`ResettableMachine` allocates
those buffers once and rewinds them in place between runs:

* registers and initialization flags are cleared,
* the stack and its initialization shadow are zero-filled into the existing
  ``bytearray`` objects,
* the packet buffer is resized/refilled in place from the test's packet,
* maps are rewound through :meth:`repro.bpf.maps.MapState.reset`, which
  replays the address allocation sequence so flat value addresses are
  identical to a freshly instantiated map.

The reset observably matches construction: a machine reset for test *t*
behaves bit-for-bit like ``MachineState(hook, maps, t)`` (the differential
engine tests run both engines over batches to enforce this).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence

from ..bpf.hooks import Hook
from ..bpf.maps import MapEnvironment
from ..bpf.opcodes import STACK_SIZE
from ..bpf.regions import CTX_BASE, STACK_BASE
from ..interpreter.state import MachineState, PACKET_HEADROOM, ProgramInput

__all__ = ["ResettableMachine"]

_ZERO_STACK = bytes(STACK_SIZE)
_ZERO_HEADROOM = bytes(PACKET_HEADROOM)

#: Post-reset register file and init flags (ABI: r1 = ctx, r10 = frame
#: pointer), copied wholesale by the image-based fast reset.
_RESET_REGS = [0, CTX_BASE, 0, 0, 0, 0, 0, 0, 0, 0, STACK_BASE + STACK_SIZE]
_RESET_FLAGS = [False, True, False, False, False, False, False, False,
                False, False, True]

#: Capacity of the per-machine reset-image cache.  Hot-loop batches replay
#: the same (stable) test-suite objects thousands of times, so identity
#: hits dominate; the cap only bounds pathological churn.
_IMAGE_CACHE_SIZE = 1024


class ResettableMachine(MachineState):
    """A :class:`MachineState` whose buffers are reused across runs.

    Construction allocates everything once for a (hook, map environment)
    pair; :meth:`reset` rewinds the state for the next test case.  The
    machine is only valid for programs sharing that hook and map
    environment — the owning engine rebuilds it when they change.
    """

    def __init__(self, hook: Hook, maps: MapEnvironment):
        self.hook = hook
        self.maps_env = maps
        #: Definition snapshot: lets the engine detect in-place mutation of
        #: a shared MapEnvironment and rebuild the machine.
        self.map_defs = tuple(maps.definitions())
        self.test: Optional[ProgramInput] = None
        self.regs: List[int] = [0] * 11
        self.reg_initialized = [False] * 11
        self.stack = bytearray(STACK_SIZE)
        self.stack_initialized = bytearray(STACK_SIZE)
        self.packet_buffer = bytearray(PACKET_HEADROOM)
        self.packet_start = PACKET_HEADROOM
        self.packet_end = PACKET_HEADROOM
        self.ctx = bytearray(hook.ctx_size)
        self._zero_ctx = bytes(hook.ctx_size)
        self.maps = maps.instantiate()
        self._random_cursor = 0
        self.helper_trace: List[tuple] = []
        #: Set by the EXIT micro-op; read by the engine's run loop.
        self.exit_value: Optional[int] = None
        #: Step/cost counters spilled by fused blocks on a fault, so the
        #: fused runner reports exact progress (the counters live in block
        #: locals while a superinstruction executes).
        self.fused_steps = 0
        self.fused_est = 0.0
        #: Identity-keyed cache of reset images (see :meth:`reset_images`).
        self._image_cache: "OrderedDict[int, tuple]" = OrderedDict()
        #: True once anything may have written packet bytes this run (set
        #: by fused packet stores and the helper byte-write path); gates
        #: the image-cached packet output below.
        self.packet_dirty = False
        #: Post-reset packet output/extent of the restored image, letting
        #: the fused runner reuse the image's packet bytes when a run never
        #: touched the packet (None outside image-based resets).
        self._image_packet_out: Optional[bytes] = None
        self._image_packet_end = 0
        #: Cached all-pristine maps snapshot (see snapshot_maps_dirty).
        self._pristine_maps_snap: Optional[dict] = None

    # ------------------------------------------------------------------ #
    def reset(self, test: ProgramInput) -> None:
        """Rewind every buffer for ``test`` (same effect as reconstruction)."""
        self.test = test
        regs = self.regs
        initialized = self.reg_initialized
        for index in range(11):
            regs[index] = 0
            initialized[index] = False

        self.stack[:] = _ZERO_STACK
        self.stack_initialized[:] = _ZERO_STACK

        packet = test.packet
        buffer = self.packet_buffer
        buffer[:PACKET_HEADROOM] = _ZERO_HEADROOM
        buffer[PACKET_HEADROOM:] = packet       # resizes in place
        self.packet_start = PACKET_HEADROOM
        self.packet_end = PACKET_HEADROOM + len(packet)

        self.ctx[:] = self._zero_ctx
        self._populate_ctx()

        maps = self.maps
        for state in maps.values():
            state.reset()
        for fd, entries in test.map_contents.items():
            if fd not in maps:
                continue
            for key, value in entries.items():
                maps[fd].update(key, value)

        self._random_cursor = 0
        self.helper_trace = []
        self.exit_value = None
        self.packet_dirty = False
        self._image_packet_out = None

        # Register ABI: r1 = ctx pointer, r10 = frame pointer.
        regs[1] = CTX_BASE
        initialized[1] = True
        regs[10] = STACK_BASE + STACK_SIZE
        initialized[10] = True

    # ------------------------------------------------------------------ #
    def snapshot_maps_dirty(self) -> dict:
        """Per-fd map snapshots via the dirty-aware fast path.

        Equal to ``snapshot_maps()`` (the differential batteries compare
        them bit-for-bit); used by the fused engine's output construction.
        When every map is pristine the whole per-fd dict is served from a
        per-machine cache — snapshots are treated as immutable by every
        consumer, so sharing the mapping is safe.
        """
        maps = self.maps
        for state in maps.values():
            if state._dirty:
                return {fd: state.snapshot_dirty()
                        for fd, state in maps.items()}
        snap = self._pristine_maps_snap
        if snap is None:
            snap = {fd: state.snapshot_dirty() for fd, state in maps.items()}
            self._pristine_maps_snap = snap
        return snap

    # ------------------------------------------------------------------ #
    # Reset images: the batched-replay fast path.
    #
    # ``reset(test)`` spends most of its time in the two parts that depend
    # on the test case: populating the ctx struct field-by-field and
    # replaying ``test.map_contents`` through the map-helper path.  A reset
    # *image* captures the post-reset machine state once per test — the
    # fully built packet row, ctx row and per-map content images — so every
    # later rewind for the same test is a handful of buffer copies.  The
    # batch runner treats the per-test rows as the packet/ctx matrix one
    # candidate is replayed over.
    # ------------------------------------------------------------------ #
    def reset_image(self, test: ProgramInput) -> tuple:
        """Reset for ``test`` and capture the state as a restore image.

        The machine is left in the freshly reset state, so a caller may run
        immediately; the returned image replays that exact state through
        :meth:`reset_from_image`.
        """
        self.reset(test)
        return (test, bytes(self.packet_buffer), bytes(self.ctx),
                tuple((fd, state.export_image())
                      for fd, state in self.maps.items()),
                self.packet_end, self.packet_bytes())

    def reset_images(self, tests: Sequence[ProgramInput]) -> list:
        """Reset images for a batch, cached by test-object identity.

        Hot-loop consumers replay stable test objects (the synthesis test
        suite, the verification pipeline's counterexample pool) across
        thousands of candidates, so the images are cached keyed on
        ``id(test)`` with an identity check; the entry keeps the test
        object alive, so ids cannot be reused while cached.
        """
        cache = self._image_cache
        images = []
        for test in tests:
            entry = cache.get(id(test))
            if entry is not None and entry[0] is test:
                cache.move_to_end(id(test))
                images.append(entry[1])
                continue
            image = self.reset_image(test)
            cache[id(test)] = (test, image)
            if len(cache) > _IMAGE_CACHE_SIZE:
                cache.popitem(last=False)
            images.append(image)
        return images

    def reset_from_image(self, image: tuple) -> None:
        """Rewind to a captured image (bit-identical to ``reset(test)``)."""
        test, packet_image, ctx_image, map_images, packet_end, packet_out = \
            image
        self.test = test
        self.regs[:] = _RESET_REGS
        self.reg_initialized[:] = _RESET_FLAGS
        self.stack[:] = _ZERO_STACK
        self.stack_initialized[:] = _ZERO_STACK
        self.packet_buffer[:] = packet_image     # resizes in place
        self.packet_start = PACKET_HEADROOM
        self.packet_end = packet_end
        self.ctx[:] = ctx_image
        maps = self.maps
        for fd, map_image in map_images:
            state = maps[fd]
            # Pristine on both sides (no dirty entries now, none in the
            # image) means the restore is a no-op; skip the call.  For
            # hash-like maps an empty dirty set implies no entries at all
            # (updates always mark, deletes never unmark).
            if state._dirty or map_image[3]:
                state.restore_image(map_image)
        self._random_cursor = 0
        self.helper_trace = []
        self.exit_value = None
        self.packet_dirty = False
        self._image_packet_out = packet_out
        self._image_packet_end = packet_end
