"""Superinstruction fusion: one compiled callable per basic block.

The decoded engine (:mod:`repro.engine.decode`) pays one Python closure call
per executed instruction.  For straight-line code that call is almost pure
overhead: the closure body is a handful of list indexing operations, so the
interpreter loop spends most of its time entering and leaving frames.  This
module removes that boundary by *fusing* each basic block — the unit of
straight-line control flow produced by :func:`repro.bpf.cfg.build_cfg` —
into a single ``exec``-compiled Python function (a *superinstruction*)
whose body inlines the semantics of every instruction in the block:

* register reads/writes become direct ``regs[i]`` indexing on hoisted
  locals, with operand masks, immediates, jump targets and fault messages
  folded to literals at compile time;
* ALU and jump semantics are specialized per opcode (the generic
  ``alu_op_concrete`` dispatch disappears);
* loads and stores inline the flat-address region routing of
  :func:`repro.engine.decode.resolve_address` for the stack, packet and ctx
  fast paths, falling back to the shared routine for map values and faults;
* ctx loads of packet-pointer fields bake the hook's field table into a
  per-width offset set, so the rebase test is one frozenset probe;
* helper calls and unsupported encodings delegate to the position-compiled
  micro-op of the decoded engine, bound as a default argument.

Fused blocks preserve the legacy interpreter's observable contract exactly:
the step counter, the cost-model accumulation order, and every fault type,
message and precedence rule are emitted per instruction in the same order
the decoded engine executes them.  The per-instruction step-limit check is
hoisted to one budget compare at trace entry; entries too close to the
limit divert to :func:`_careful_trace`, which replays the span through the
decoded micro-ops with the legacy per-instruction check, so limit faults
carry the exact pc and step count.  ``tests/test_engine_fused.py`` enforces
bit-identity differentially.

Caching mirrors the decoded engine's two levels: a per-block memo keyed on
``(start pc, instruction fields, hook signature)`` so MCMC proposal churn
only recompiles the blocks a mutation actually touched, and an LRU cache of
whole fused programs keyed on ``content_key``.  Programs whose static jump
structure is broken (``build_cfg`` raises :class:`~repro.bpf.cfg.CfgError`
for out-of-range targets that only fault dynamically) fall back to the
decoded per-instruction path, keeping the engine total.
"""

from __future__ import annotations

import dataclasses
import struct
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple, Union

from ..bpf.cfg import CfgError, build_cfg
from ..bpf.helpers import helper_spec
from ..bpf.hooks import CtxFieldKind, Hook
from ..bpf.instruction import Instruction
from ..bpf.opcodes import AluOp, JmpOp, SrcOperand, STACK_SIZE
from ..bpf.program import BpfProgram
from ..bpf.regions import CTX_BASE, MAP_VALUE_BASE, PACKET_BASE, STACK_BASE
from ..interpreter.errors import (
    InstructionLimitExceeded,
    NullPointerDereference,
    OutOfBoundsAccess,
    ReadOnlyRegisterWrite,
    UninitializedRead,
)
from ..interpreter.state import MAP_PTR_BASE
from ..semantics import byteswap, to_signed
from .decode import (
    _HELPER_BODIES,
    DecodedProgram,
    MicroOp,
    ProgramDecoder,
    compile_instruction,
    resolve_address,
)

__all__ = ["FusedProgram", "FusedDecoder", "compile_trace"]

#: Upper bound on instructions covered by one fused trace.  Extension stops
#: only at basic-block boundaries, so every pc a trace can return is still
#: a leader with its own handler.  The cap bounds both generated-code size
#: (each leader's trace may overlap its successors') and the recompilation
#: cost of a mutation under proposal churn.
_TRACE_INSN_CAP = 48

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1
_REGION_SPAN = 0x1000_0000_0000

#: Upper bound on the per-block memo (same backstop role as the decoded
#: engine's per-instruction memo).
_MAX_BLOCK_MEMO = 1 << 14

def _careful_trace(m, steps, limit, est, pc, end, ops, costs):
    """Per-instruction replay of a trace span near the step limit.

    The fused fast path checks the step budget once at trace entry: with
    at least ``end - start`` steps remaining it cannot trip the limit, so
    its body carries no per-instruction limit compares.  When fewer steps
    remain, this routine takes over and replays the same span through the
    decoded micro-ops with the legacy interpreter's exact per-instruction
    check, so the limit fault carries the precise pc and step count.
    ``ops``/``costs`` are indexed relative to the trace start.
    """
    start = pc
    try:
        while pc < end:
            if steps >= limit:
                raise InstructionLimitExceeded(
                    f"exceeded {limit} steps", pc)
            steps += 1
            if costs is not None:
                est += costs[pc - start]
            next_pc = ops[pc - start](m, pc)
            if next_pc is None:
                return None, steps, est
            if next_pc != pc + 1:
                return next_pc, steps, est
            pc = next_pc
        return end, steps, est
    except BaseException:
        m.fused_steps = steps
        m.fused_est = est
        raise


#: Globals shared by every generated block function: fault constructors and
#: the routines that stay out-of-line (byteswap for its odd width errors,
#: resolve_address for map values and fault paths, the careful near-limit
#: trace replay).
_BLOCK_GLOBALS = {
    "_UNINIT": UninitializedRead,
    "_OOB": OutOfBoundsAccess,
    "_ROWRITE": ReadOnlyRegisterWrite,
    "_NPD": NullPointerDereference,
    "_byteswap": byteswap,
    "_resolve": resolve_address,
    "_ifb": int.from_bytes,
    "_care": _careful_trace,
    # Fixed-width little-endian accessors: prebound struct methods avoid
    # the slice allocation of bytes + int.from_bytes on every access.
    "_g2": struct.Struct("<H").unpack_from,
    "_g4": struct.Struct("<I").unpack_from,
    "_g8": struct.Struct("<Q").unpack_from,
    "_s2": struct.Struct("<H").pack_into,
    "_s4": struct.Struct("<I").pack_into,
    "_s8": struct.Struct("<Q").pack_into,
}

#: A fused basic block: ``(machine, steps, limit, est) -> (next_pc, steps,
#: est)`` where ``next_pc`` is None on exit.  On any exception the block
#: spills its step/cost progress to ``machine.fused_steps``/``fused_est``
#: before re-raising, so the runner reports faults with exact counters.
BlockFn = Callable[[object, int, int, float], Tuple[Optional[int], int, float]]


# --------------------------------------------------------------------------- #
# Hook signature: the part of a hook that fused code depends on
# --------------------------------------------------------------------------- #
@dataclasses.dataclass(frozen=True)
class _HookInfo:
    """Ctx layout facts baked into fused memory accesses."""

    ctx_size: int
    #: ``width -> frozenset(offsets)`` of packet-pointer fields of that exact
    #: size (the only ctx loads the engines rebase onto PACKET_BASE).
    packet_ptr_offsets: Tuple[Tuple[int, frozenset], ...]

    def offsets_for_width(self, width: int) -> frozenset:
        for candidate, offsets in self.packet_ptr_offsets:
            if candidate == width:
                return offsets
        return frozenset()

    @property
    def key(self) -> tuple:
        return (self.ctx_size, self.packet_ptr_offsets)


def _hook_info(hook: Hook) -> _HookInfo:
    by_width: Dict[int, set] = {}
    for field in hook.fields:
        if field.kind in (CtxFieldKind.PACKET_PTR, CtxFieldKind.PACKET_END_PTR):
            by_width.setdefault(field.size, set()).add(field.offset)
    packed = tuple(sorted((width, frozenset(offsets))
                          for width, offsets in by_width.items()))
    return _HookInfo(ctx_size=hook.ctx_size, packet_ptr_offsets=packed)


# --------------------------------------------------------------------------- #
# Code generation
# --------------------------------------------------------------------------- #
class _BlockEmitter:
    """Accumulates the source lines of one fused block function."""

    #: Machine buffers hoisted to locals when a trace touches them (object
    #: identity is stable for a whole run: resets and helpers mutate the
    #: buffers in place, never rebind the attributes).
    _BUFFERS = {"_stk": "m.stack", "_stki": "m.stack_initialized",
                "_pkt": "m.packet_buffer", "_ctx": "m.ctx",
                "_ps": "m.packet_start", "_pe": "m.packet_end"}

    def __init__(self, strict: bool, hoist_packet: bool = False):
        self.strict = strict
        #: True when the trace contains no helper calls, so the packet
        #: extents are loop-invariant and can be hoisted to entry locals
        #: (only adjust_head/adjust_tail ever move them mid-run).
        self.hoist_packet = hoist_packet
        self.lines: list = []
        #: Objects the generated code binds as default arguments (micro-ops
        #: for delegated instructions, frozensets for ctx rebasing).
        self.deps: list = []
        #: Step increments accumulated statically since the last
        #: materialization point (see :meth:`flush_steps`).
        self.pending = 0
        #: Hoisted buffer locals this trace references.
        self.buffers: set = set()

    def add(self, line: str, depth: int = 0) -> None:
        self.lines.append("        " + "    " * depth + line)

    def bind(self, name: str, value) -> str:
        self.deps.append((name, value))
        return name

    def buffer(self, name: str) -> str:
        self.buffers.add(name)
        return name

    def packet_extents(self, depth: int) -> Tuple[str, str]:
        """Names for (packet_start, packet_end) inside a packet branch."""
        if self.hoist_packet:
            return self.buffer("_ps"), self.buffer("_pe")
        self.add("_ps = m.packet_start", depth)
        return "_ps", "m.packet_end"

    @staticmethod
    def load_expr(buf: str, off: str, width: int) -> str:
        """A little-endian unsigned read: direct index for single bytes,
        a prebound ``struct`` unpack (no slice allocation) otherwise."""
        if width == 1:
            return f"{buf}[{off}]"
        return f"_g{width}({buf}, {off})[0]"

    @staticmethod
    def store_line(buf: str, off: str, width: int) -> str:
        """The little-endian write matching :meth:`load_expr`."""
        if width == 1:
            return f"{buf}[{off}] = _v"
        return f"_s{width}({buf}, {off}, _v)"

    # ------------------------------------------------------------------ #
    # Static step accounting.  Straight-line step counts are known at
    # compile time, so the counter is materialized only where its exact
    # value is observable: at trace exits (folded into the return), before
    # out-of-line calls that may raise a BpfFault and continue (the spill
    # handler reads the local), and just before emitted fault raises.
    # ------------------------------------------------------------------ #
    @property
    def steps_expr(self) -> str:
        return f"steps + {self.pending}" if self.pending else "steps"

    def flush_steps(self) -> None:
        if self.pending:
            self.add(f"steps += {self.pending}")
            self.pending = 0

    def _guard_raise(self, depth: int) -> None:
        # Immediately followed by an unconditional raise in the same
        # branch, so mutating ``steps`` here cannot desync other paths.
        if self.pending:
            self.add(f"steps += {self.pending}", depth)

    def emit_prologue(self, cost) -> None:
        # No limit compare here: the trace-entry budget guard proved the
        # whole span fits (near-limit entries divert to _careful_trace).
        self.pending += 1
        if cost is not None:
            self.add(f"est += {cost!r}")

    def emit_raise(self, expr: str, depth: int = 0) -> None:
        self._guard_raise(depth)
        self.add(f"raise {expr}", depth)

    def check_init(self, reg: int, pc: int, depth: int = 0) -> None:
        if not self.strict:
            return
        self.add(f"if not ini[{reg}]:", depth)
        self.emit_raise(f"_UNINIT('read of uninitialized r{reg}', {pc})",
                        depth + 1)

    # ------------------------------------------------------------------ #
    # ALU / jumps
    # ------------------------------------------------------------------ #
    def emit_alu(self, insn: Instruction, pc: int) -> None:
        kind = insn.alu_op
        is64 = insn.is_alu64
        dst = insn.dst
        mask = _U64 if is64 else _U32
        width = 64 if is64 else 32

        if kind == AluOp.END:
            swap = insn.src_operand == SrcOperand.X
            self.check_init(dst, pc)
            self.add(f"_v = regs[{dst}]")
            if swap:
                # Out-of-line: odd widths raise OverflowError, which must
                # propagate (not become a BpfFault), exactly as decoded.
                self.add(f"_v = _byteswap(_v, {insn.imm})")
            else:
                self.add(f"_v = _v & {(1 << insn.imm) - 1}")
            if dst == 10:
                self.emit_raise(
                    f"_ROWRITE('write to frame pointer r10', {pc})")
                return
            self.add(f"regs[{dst}] = _v & {_U64}")
            self.add(f"ini[{dst}] = True")
            return

        if kind == AluOp.NEG:
            if dst == 10:
                self.emit_raise(
                    f"_ROWRITE('write to frame pointer r10', {pc})")
                return
            self.check_init(dst, pc)
            read = f"regs[{dst}]" if is64 else f"(regs[{dst}] & {_U32})"
            self.add(f"regs[{dst}] = -{read} & {mask}")
            self.add(f"ini[{dst}] = True")
            return

        uses_reg = insn.uses_reg_source
        src = insn.src

        if kind == AluOp.MOV:
            if dst == 10:
                if uses_reg:
                    self.check_init(src, pc)
                self.emit_raise(
                    f"_ROWRITE('write to frame pointer r10', {pc})")
                return
            if uses_reg:
                self.check_init(src, pc)
                self.add(f"regs[{dst}] = regs[{src}] & {mask}")
            else:
                self.add(f"regs[{dst}] = {(insn.imm & _U64) & mask}")
            self.add(f"ini[{dst}] = True")
            return

        if dst == 10:
            if uses_reg:
                self.check_init(src, pc)
            self.check_init(dst, pc)
            self.emit_raise(f"_ROWRITE('write to frame pointer r10', {pc})")
            return

        # Binary op: the decoded engine checks/reads src before dst.
        if uses_reg:
            self.check_init(src, pc)
            self.add(f"_b = regs[{src}]" + ("" if is64 else f" & {_U32}"))
            b = "_b"
            b_const = None
        else:
            b_const = (insn.imm & _U64) & mask
            b = str(b_const)
        self.check_init(dst, pc)
        self.add(f"_a = regs[{dst}]" + ("" if is64 else f" & {_U32}"))

        shift_mask = width - 1
        if kind == AluOp.ADD:
            expr = f"(_a + {b})"
        elif kind == AluOp.SUB:
            expr = f"(_a - {b})"
        elif kind == AluOp.MUL:
            expr = f"(_a * {b})"
        elif kind == AluOp.DIV:
            if b_const is not None:
                expr = "0" if b_const == 0 else f"(_a // {b_const})"
            else:
                expr = f"(0 if _b == 0 else _a // _b)"
        elif kind == AluOp.MOD:
            if b_const is not None:
                expr = "_a" if b_const == 0 else f"(_a % {b_const})"
            else:
                expr = f"(_a if _b == 0 else _a % _b)"
        elif kind == AluOp.OR:
            expr = f"(_a | {b})"
        elif kind == AluOp.AND:
            expr = f"(_a & {b})"
        elif kind == AluOp.XOR:
            expr = f"(_a ^ {b})"
        elif kind == AluOp.LSH:
            amount = b_const & shift_mask if b_const is not None \
                else f"(_b & {shift_mask})"
            expr = f"(_a << {amount})"
        elif kind == AluOp.RSH:
            amount = b_const & shift_mask if b_const is not None \
                else f"(_b & {shift_mask})"
            expr = f"(_a >> {amount})"
        elif kind == AluOp.ARSH:
            amount = b_const & shift_mask if b_const is not None \
                else f"(_b & {shift_mask})"
            self.add(f"_a = _a - {1 << width} if _a >= {1 << (width - 1)} "
                     f"else _a")
            expr = f"(_a >> {amount})"
        else:  # pragma: no cover - exhaustive over AluOp
            raise ValueError(f"unsupported ALU op {kind!r}")
        self.add(f"regs[{dst}] = {expr} & {mask}")
        self.add(f"ini[{dst}] = True")

    def _jump_condition(self, insn: Instruction, pc: int) -> str:
        """Emit operand loads; return the branch-taken expression."""
        jop = insn.jmp_op
        is64 = not insn.is_jump32
        mask = _U64 if is64 else _U32
        width = 64 if is64 else 32
        dst = insn.dst

        # Decoded cond jumps check/read dst before src.
        self.check_init(dst, pc)
        self.add(f"_a = regs[{dst}]" + ("" if is64 else f" & {_U32}"))
        if insn.uses_reg_source:
            src = insn.src
            self.check_init(src, pc)
            self.add(f"_b = regs[{src}]" + ("" if is64 else f" & {_U32}"))
            b = "_b"
            b_const = None
        else:
            b_const = (insn.imm & _U64) & mask
            b = str(b_const)

        unsigned = {JmpOp.JEQ: "==", JmpOp.JNE: "!=", JmpOp.JGT: ">",
                    JmpOp.JGE: ">=", JmpOp.JLT: "<", JmpOp.JLE: "<="}
        signed = {JmpOp.JSGT: ">", JmpOp.JSGE: ">=",
                  JmpOp.JSLT: "<", JmpOp.JSLE: "<="}
        if jop in unsigned:
            return f"_a {unsigned[jop]} {b}"
        if jop == JmpOp.JSET:
            return f"(_a & {b}) != 0"
        if jop in signed:
            self.add(f"_a = _a - {1 << width} if _a >= {1 << (width - 1)} "
                     f"else _a")
            if b_const is not None:
                return f"_a {signed[jop]} {to_signed(b_const, width)}"
            self.add(f"_b = _b - {1 << width} if _b >= {1 << (width - 1)} "
                     f"else _b")
            return f"_a {signed[jop]} _b"
        raise ValueError(f"unsupported jump op {jop!r}")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # Memory accesses (inline the region routing of resolve_address)
    # ------------------------------------------------------------------ #
    def emit_load(self, insn: Instruction, pc: int, info: _HookInfo) -> None:
        src, dst, off, width = insn.src, insn.dst, insn.off, insn.access_bytes
        if src == 10:
            # Frame-pointer-relative access: r10 is a compile-time constant
            # (STACK_BASE + STACK_SIZE; writes to it always fault and reset
            # always initializes it), so the region routing and the bounds
            # check fold away entirely.  No out-of-line call remains, so
            # the step counter stays pending (raises materialize locally).
            k = STACK_SIZE + off
            if not 0 <= k <= STACK_SIZE - width:
                if k >= 0:
                    self.emit_raise(
                        f"_OOB('stack access at offset {off} "
                        f"width {width}', {pc})")
                else:
                    address = (STACK_BASE + k) & _U64
                    self.emit_raise(f"_NPD('access through non-pointer "
                                    f"value {address:#x}', {pc})")
                return
            if self.strict:
                self.add(f"if 0 in {self.buffer('_stki')}[{k}:{k + width}]:")
                self.emit_raise(f"_UNINIT('read of uninitialized stack "
                                f"bytes at {off}', {pc})", 1)
            if dst == 10:
                self.emit_raise(f"_ROWRITE('write to frame pointer r10', "
                                f"{pc})")
                return
            self.add(f"regs[{dst}] = "
                     f"{self.load_expr(self.buffer('_stk'), str(k), width)}")
            self.add(f"ini[{dst}] = True")
            return
        # The else-branch's _resolve may raise a BpfFault and continue, so
        # the step counter is materialized for the whole access.  The
        # region tests are disjoint, so their order is free: packet and ctx
        # come first (the r10 fast path above absorbs most stack traffic).
        self.flush_steps()
        self.check_init(src, pc)
        self.add(f"_addr = (regs[{src}] + {off}) & {_U64}")

        self.add(f"if {PACKET_BASE} <= _addr < {PACKET_BASE + _REGION_SPAN}:")
        self.add(f"_o = _addr - {PACKET_BASE}", 1)
        ps, pe = self.packet_extents(1)
        self.add(f"if not {ps} <= _o <= {pe} - {width}:", 1)
        self.add(f"raise _OOB('packet access at %d width {width} (packet "
                 f"length %d)' % (_o - {ps}, {pe} - {ps}), {pc})", 2)
        self.add(f"_v = {self.load_expr(self.buffer('_pkt'), '_o', width)}", 1)

        self.add(f"elif {CTX_BASE} <= _addr < {CTX_BASE + _REGION_SPAN}:")
        self.add(f"_o = _addr - {CTX_BASE}", 1)
        self.add(f"if _o > {info.ctx_size - width}:", 1)
        self.add(f"raise _OOB('ctx access at %d width {width}' % _o, {pc})", 2)
        self.add(f"_v = {self.load_expr(self.buffer('_ctx'), '_o', width)}", 1)
        rebase = info.offsets_for_width(width)
        if rebase:
            name = self.bind(f"_po_{pc}", rebase)
            self.add(f"if _o in {name}:", 1)
            self.add(f"_v = {PACKET_BASE} + _v", 2)

        self.add(f"elif {STACK_BASE} <= _addr < {STACK_BASE + _REGION_SPAN}:")
        self.add(f"_o = _addr - {STACK_BASE}", 1)
        self.add(f"if _o > {STACK_SIZE - width}:", 1)
        self.add(f"raise _OOB('stack access at offset %d width {width}' "
                 f"% (_o - {STACK_SIZE}), {pc})", 2)
        if self.strict:
            self.add(f"if 0 in {self.buffer('_stki')}[_o:_o + {width}]:", 1)
            self.add(f"raise _UNINIT('read of uninitialized stack bytes "
                     f"at %d' % (_o - {STACK_SIZE}), {pc})", 2)
        self.add(f"_v = {self.load_expr(self.buffer('_stk'), '_o', width)}", 1)

        self.add("else:")
        self.add(f"_buf, _o, _r = _resolve(m, _addr, {width}, {pc}, False)", 1)
        self.add(f"_v = {self.load_expr('_buf', '_o', width)}", 1)

        if dst == 10:
            self.add(f"raise _ROWRITE('write to frame pointer r10', {pc})")
            return
        self.add(f"regs[{dst}] = _v & {_U64}")
        self.add(f"ini[{dst}] = True")

    def emit_store(self, insn: Instruction, pc: int, info: _HookInfo) -> None:
        dst, src, off, width = insn.dst, insn.src, insn.off, insn.access_bytes
        value_mask = (1 << (8 * width)) - 1

        def value_lines(buffer: str, depth: int, offset: str = "_o") -> None:
            """Compute the stored value (after bounds checks, as decoded)."""
            if insn.is_xadd:
                self.check_init(src, pc, depth)
                self.add(f"_v = (regs[{src}] + "
                         f"{self.load_expr(buffer, offset, width)})"
                         f" & {value_mask}", depth)
            elif insn.is_store_reg:
                self.check_init(src, pc, depth)
                self.add(f"_v = regs[{src}] & {value_mask}", depth)
            else:
                self.add(f"_v = {insn.imm & value_mask}", depth)

        if dst == 10:
            # Constant frame-pointer base: see the matching load fast path.
            k = STACK_SIZE + off
            if not 0 <= k <= STACK_SIZE - width:
                if k >= 0:
                    self.emit_raise(
                        f"_OOB('stack access at offset {off} "
                        f"width {width}', {pc})")
                else:
                    address = (STACK_BASE + k) & _U64
                    self.emit_raise(f"_NPD('access through non-pointer "
                                    f"value {address:#x}', {pc})")
                return
            value_lines(self.buffer("_stk"), 0, str(k))
            self.add(self.store_line(self.buffer("_stk"), str(k), width))
            if width == 1:
                self.add(f"{self.buffer('_stki')}[{k}] = 1")
            else:
                shadow = b"\x01" * width
                self.add(f"{self.buffer('_stki')}[{k}:{k + width}] = "
                         f"{shadow!r}")
            return

        self.flush_steps()
        self.check_init(dst, pc)
        self.add(f"_addr = (regs[{dst}] + {off}) & {_U64}")

        self.add(f"if {PACKET_BASE} <= _addr < {PACKET_BASE + _REGION_SPAN}:")
        self.add(f"_o = _addr - {PACKET_BASE}", 1)
        ps, pe = self.packet_extents(1)
        self.add(f"if not {ps} <= _o <= {pe} - {width}:", 1)
        self.add(f"raise _OOB('packet access at %d width {width} (packet "
                 f"length %d)' % (_o - {ps}, {pe} - {ps}), {pc})", 2)
        value_lines(self.buffer("_pkt"), 1)
        self.add(self.store_line(self.buffer("_pkt"), "_o", width), 1)
        self.add("m.packet_dirty = True", 1)

        self.add(f"elif {STACK_BASE} <= _addr < {STACK_BASE + _REGION_SPAN}:")
        self.add(f"_o = _addr - {STACK_BASE}", 1)
        self.add(f"if _o > {STACK_SIZE - width}:", 1)
        self.add(f"raise _OOB('stack access at offset %d width {width}' "
                 f"% (_o - {STACK_SIZE}), {pc})", 2)
        value_lines(self.buffer("_stk"), 1)
        self.add(self.store_line(self.buffer("_stk"), "_o", width), 1)
        if width == 1:
            self.add(f"{self.buffer('_stki')}[_o] = 1", 1)
        else:
            shadow = b"\x01" * width
            self.add(f"{self.buffer('_stki')}[_o:_o + {width}] = {shadow!r}",
                     1)

        self.add(f"elif {CTX_BASE} <= _addr < {CTX_BASE + _REGION_SPAN}:")
        self.add(f"_o = _addr - {CTX_BASE}", 1)
        self.add(f"if _o > {info.ctx_size - width}:", 1)
        self.add(f"raise _OOB('ctx access at %d width {width}' % _o, {pc})", 2)
        self.add(f"raise _OOB('stores to ctx memory are not permitted', {pc})",
                 1)

        self.add("else:")
        self.add(f"_buf, _o, _r = _resolve(m, _addr, {width}, {pc})", 1)
        value_lines("_buf", 1)
        self.add(self.store_line("_buf", "_o", width), 1)


def compile_trace(instructions, start: int, end: int, strict: bool,
                  costs, info: _HookInfo,
                  micro_op_for: Callable[[int], MicroOp]) -> BlockFn:
    """Compile ``instructions[start:end]`` into one fused superinstruction.

    The span is a *trace*: one or more consecutive basic blocks in which
    every non-final conditional jump falls through to the next covered
    instruction (the taken edge returns to the dispatch loop, the
    fall-through edge continues inside the same function).  Compiling a
    single basic block is the one-block special case.

    ``costs`` is the per-instruction cost table of the whole program (or
    None without a cost model); ``micro_op_for`` supplies decoded micro-ops
    for delegated instructions (calls, unsupported encodings).
    """
    emitter = _BlockEmitter(
        strict,
        hoist_packet=not any(instructions[pc].is_call
                             for pc in range(start, end)))
    terminated = False
    for pc in range(start, end):
        insn = instructions[pc]
        emitter.emit_prologue(costs[pc] if costs is not None else None)
        # Mirror compile_instruction's classification order exactly.
        if insn.is_nop:
            if pc == end - 1:
                emitter.add(f"return {pc + 1}, {emitter.steps_expr}, est")
                terminated = True
        elif insn.is_exit:
            emitter.check_init(0, pc)
            emitter.add(f"m.exit_value = regs[0] & {_U64}")
            emitter.add(f"return None, {emitter.steps_expr}, est")
            terminated = True
        elif insn.is_unconditional_jump:
            emitter.add(f"return {pc + 1 + insn.off}, "
                        f"{emitter.steps_expr}, est")
            terminated = True
        elif insn.is_conditional_jump:
            condition = emitter._jump_condition(insn, pc)
            emitter.add(f"if {condition}:")
            emitter.add(f"return {pc + 1 + insn.off}, "
                        f"{emitter.steps_expr}, est", 1)
            if pc == end - 1:
                emitter.add(f"return {pc + 1}, {emitter.steps_expr}, est")
                terminated = True
            # Otherwise the fall-through edge continues inside this trace.
        elif insn.is_lddw:
            if insn.dst == 10:
                emitter.emit_raise(
                    f"_ROWRITE('write to frame pointer r10', {pc})")
            else:
                value = (MAP_PTR_BASE + insn.imm if insn.src == 1
                         else (insn.imm64 or insn.imm)) & _U64
                emitter.add(f"regs[{insn.dst}] = {value}")
                emitter.add(f"ini[{insn.dst}] = True")
        elif insn.is_call:
            # Helpers may raise a BpfFault and continue: materialize steps.
            emitter.flush_steps()
            spec = body = None
            try:
                spec = helper_spec(insn.imm)
                body = _HELPER_BODIES.get(spec.helper_id)
            except KeyError:
                pass
            if body is not None:
                # Inline the decoded call wrapper: invoke the shared helper
                # body directly and apply the ABI effects (r0 result, r1-r5
                # clobber) on the hoisted register locals.
                name = emitter.bind(f"_hb_{pc}", body)
                emitter.add(f"_r = {name}(m, {pc}, {strict})")
                emitter.add(f"m.helper_trace.append(({spec.name!r}, _r))")
                emitter.add(f"regs[0] = _r & {_U64}")
                emitter.add("ini[0] = True")
                emitter.add("ini[1] = ini[2] = ini[3] = False")
                emitter.add("ini[4] = ini[5] = False")
            else:
                # Unknown/unimplemented helpers raise through the micro-op.
                name = emitter.bind(f"_mo_{pc}", micro_op_for(pc))
                emitter.add(f"{name}(m, {pc})")
        elif insn.is_alu:
            emitter.emit_alu(insn, pc)
        elif insn.is_load:
            emitter.emit_load(insn, pc, info)
        elif insn.is_store or insn.is_xadd:
            emitter.emit_store(insn, pc, info)
        else:
            # Unknown/unsupported encodings raise through their micro-op.
            emitter.flush_steps()
            name = emitter.bind(f"_mo_{pc}", micro_op_for(pc))
            emitter.add(f"{name}(m, {pc})")
    if not terminated:
        emitter.add(f"return {end}, {emitter.steps_expr}, est")

    # Near-limit entries replay through micro-ops (exact per-instruction
    # limit checks); bound eagerly so memoized traces stay program-free.
    emitter.bind("_ops", tuple(micro_op_for(pc) for pc in range(start, end)))
    emitter.bind("_costs", (tuple(costs[start:end])
                            if costs is not None else None))

    defaults = "".join(f", {name}=_deps[{index}]"
                       for index, (name, _) in enumerate(emitter.deps))
    hoists = [f"    {name} = {_BlockEmitter._BUFFERS[name]}"
              for name in sorted(emitter.buffers)]
    source = "\n".join(
        [f"def _block(m, steps, limit, est{defaults}):",
         f"    if steps + {end - start} > limit:",
         f"        return _care(m, steps, limit, est, {start}, {end}, "
         f"_ops, _costs)",
         "    regs = m.regs",
         "    ini = m.reg_initialized"]
        + hoists
        + ["    try:"]
        + emitter.lines
        + ["    except BaseException:",
           "        m.fused_steps = steps",
           "        m.fused_est = est",
           "        raise"])
    namespace = {"_deps": [value for _, value in emitter.deps]}
    exec(compile(source, f"<fused trace {start}:{end}>", "exec"),
         _BLOCK_GLOBALS, namespace)
    return namespace["_block"]


# --------------------------------------------------------------------------- #
# Fused programs and the fusing decoder
# --------------------------------------------------------------------------- #
@dataclasses.dataclass
class FusedProgram:
    """A program compiled to per-block superinstructions.

    ``handlers`` is indexed by pc; only block-leader pcs hold a callable
    (every dynamically reachable pc is a leader by CFG construction — jump
    targets are statically validated, fallthrough lands on the next leader
    or one past the end, which the runner turns into the legacy fault).
    """

    handlers: Tuple[Optional[BlockFn], ...]
    num_insns: int

    def __len__(self) -> int:
        return self.num_insns


#: Decodes of one ``content_key`` before trace compilation pays for itself.
#: Synthesis churn kills most proposals after a single pooled replay, so
#: their first execution runs on the (compilation-free) decoded tier; a
#: program seen again is likely a survivor and gets fused.
DEFAULT_PROMOTE_AFTER = 2


class FusedDecoder:
    """Compiles programs to fused blocks behind the same two cache layers
    as :class:`~repro.engine.decode.ProgramDecoder`, with a third, block
    -level memo in between so proposal churn only recompiles changed blocks.

    Compilation is *tiered*: the first ``promote_after - 1`` decodes of a
    content key serve the per-instruction decoded program, and the key is
    promoted to fused blocks only when it keeps coming back — one-shot
    proposal churn never pays trace compilation.
    """

    def __init__(self, strict_uninitialized: bool = True,
                 opcode_cost_fn=None, cache_size: int = 512):
        if cache_size <= 0:
            raise ValueError("cache_size must be positive")
        self.strict_uninitialized = strict_uninitialized
        self.opcode_cost_fn = opcode_cost_fn
        self.cache_size = cache_size
        self.promote_after = DEFAULT_PROMOTE_AFTER
        #: Whole-program LRU: content_key -> FusedProgram | DecodedProgram.
        self._programs: "OrderedDict[tuple, Union[FusedProgram, DecodedProgram]]" = OrderedDict()
        #: content_key -> decode count, for entries still on the decoded
        #: tier awaiting promotion.  CFG validation is deferred to the
        #: promotion point; a CfgError there pins the entry to the decoded
        #: tier for good (it leaves pending and is counted as a fallback).
        self._pending: Dict[tuple, int] = {}
        self._blocks: Dict[tuple, BlockFn] = {}
        self._micro_memo: Dict[tuple, MicroOp] = {}
        self._hook_infos: Dict[int, Tuple[Hook, _HookInfo]] = {}
        #: Decoded-path fallback for programs build_cfg refuses (and the
        #: pre-promotion tier).
        self._fallback = ProgramDecoder(
            strict_uninitialized=strict_uninitialized,
            opcode_cost_fn=opcode_cost_fn, cache_size=cache_size)
        self.program_hits = 0
        self.program_misses = 0
        self.blocks_compiled = 0
        self.blocks_reused = 0
        self.fallbacks = 0
        self.promotions = 0

    # ------------------------------------------------------------------ #
    def decode(self, program: BpfProgram) -> Union[FusedProgram, DecodedProgram]:
        key = program.content_key()
        cached = self._programs.get(key)
        if cached is not None:
            self.program_hits += 1
            self._programs.move_to_end(key)
            pending = self._pending.get(key)
            if pending is not None:
                pending += 1
                if pending >= self.promote_after:
                    # The key keeps coming back: promote to fused blocks.
                    # CFG construction was deferred to this point so that
                    # one-shot proposals never pay it; a statically broken
                    # jump structure surfaces here instead and pins the
                    # program to the decoded tier permanently.
                    del self._pending[key]
                    try:
                        cfg = build_cfg(program.instructions)
                    except CfgError:
                        self.fallbacks += 1
                    else:
                        cached = self._fuse(program, cfg)
                        self._programs[key] = cached
                        self.promotions += 1
                else:
                    self._pending[key] = pending
            return cached
        self.program_misses += 1

        if self.promote_after > 1:
            # First sighting: serve the decoded tier and start the
            # promotion counter.  No CFG work yet — churn proposals that
            # never come back must cost exactly a per-instruction decode.
            fused: Union[FusedProgram, DecodedProgram] = \
                self._fallback.decode(program)
            self._pending[key] = 1
        else:
            try:
                cfg = build_cfg(program.instructions)
            except CfgError:
                # Statically broken jump structure: such programs still
                # have defined dynamic behaviour (they fault when the bad
                # edge is taken), so execute them through the
                # per-instruction path.
                self.fallbacks += 1
                fused = self._fallback.decode(program)
            else:
                fused = self._fuse(program, cfg)
        self._programs[key] = fused
        if len(self._programs) > self.cache_size:
            evicted_key, _ = self._programs.popitem(last=False)
            self._pending.pop(evicted_key, None)
        return fused

    def _fuse(self, program: BpfProgram, cfg) -> FusedProgram:
        instructions = cfg.instructions
        info = self._info_for(program.hook)
        cost_fn = self.opcode_cost_fn
        costs = ([cost_fn(insn) for insn in instructions]
                 if cost_fn is not None else None)
        handlers: list = [None] * len(instructions)
        blocks = cfg.blocks          # in instruction order, contiguous
        micro_op_for = self._micro_op_for(instructions)
        for index, block in enumerate(blocks):
            # Extend the trace through fall-through edges: a block ending in
            # a conditional jump (or cut only by an external jump target)
            # continues into its successor inside the same function.  Stops
            # at exits and unconditional jumps, whose next pc never falls
            # through, and at the size cap — always on a block boundary.
            next_index = index
            end = block.end
            while True:
                terminator = instructions[end - 1]
                if terminator.is_exit or terminator.is_unconditional_jump:
                    break
                if end - block.start >= _TRACE_INSN_CAP:
                    break
                if next_index + 1 >= len(blocks):
                    break
                next_index += 1
                end = blocks[next_index].end
            trace_key = (
                block.start, info.key,
                tuple((insn.opcode, insn.dst, insn.src, insn.off,
                       insn.imm, insn.imm64)
                      for insn in instructions[block.start:end]))
            fn = self._blocks.get(trace_key)
            if fn is None:
                fn = compile_trace(instructions, block.start, end,
                                   self.strict_uninitialized, costs, info,
                                   micro_op_for)
                if len(self._blocks) < _MAX_BLOCK_MEMO:
                    self._blocks[trace_key] = fn
                self.blocks_compiled += 1
            else:
                self.blocks_reused += 1
            handlers[block.start] = fn
        return FusedProgram(handlers=tuple(handlers),
                            num_insns=len(instructions))

    def _micro_op_for(self, instructions) -> Callable[[int], MicroOp]:
        strict = self.strict_uninitialized
        memo = self._micro_memo

        def lookup(pc: int) -> MicroOp:
            insn = instructions[pc]
            insn_key = (insn.opcode, insn.dst, insn.src, insn.off,
                        insn.imm, insn.imm64)
            op = memo.get(insn_key)
            if op is None:
                op = compile_instruction(insn, strict)
                memo[insn_key] = op
            return op
        return lookup

    def _info_for(self, hook: Hook) -> _HookInfo:
        entry = self._hook_infos.get(id(hook))
        if entry is None or entry[0] is not hook:
            entry = (hook, _hook_info(hook))
            self._hook_infos[id(hook)] = entry
        return entry[1]

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, float]:
        probes = self.program_hits + self.program_misses
        return {
            "program_hits": self.program_hits,
            "program_misses": self.program_misses,
            "program_hit_rate": self.program_hits / probes if probes else 0.0,
            "programs_cached": len(self._programs),
            "blocks_compiled": self.blocks_compiled,
            "blocks_reused": self.blocks_reused,
            "fallbacks": self.fallbacks,
            "promotions": self.promotions,
            "pending_promotion": len(self._pending),
        }


# Referenced for documentation completeness; MAP_VALUE addresses take the
# out-of-line `_resolve` path above.
_ = MAP_VALUE_BASE
