"""Lockstep (SIMT-style) vectorized batch execution.

The fused engine (:mod:`repro.engine.fuse`) already collapses dispatch to
one Python call per basic block — but still *per test*: replaying a pooled
suite of N tests costs N full passes over the same instruction stream, so
dispatch overhead scales with suite size even though every lane executes
the same blocks.  This module removes that axis too.  The
:class:`BatchedEngine` exec-compiles each basic block into a single
function that operates over a *structure-of-arrays machine image*
(:class:`BatchSuite`): registers are ``(11, L)`` uint64 rows, the stack and
packet are ``(L, size)`` byte matrices, and array-like map state is a
``(L, slots × value_size)`` value matrix plus an ``(L, slots)`` dirty-slot
matrix per map — so one handler invocation advances **all** L tests
through the block at once as numpy array ops.  Map lookups, redirects and
packet-extent adjustments vectorize too: array-like maps assign value
addresses by a fixed ``base + slot * value_size`` formula, so a batched
lookup is a stack gather plus an arithmetic select.

Control flow is handled warp-style:

* every handler receives an *active-lane mask* (a boolean array) and
  returns ``(next_pc, mask)`` edges; a conditional jump partitions the mask
  into taken/fall-through halves;
* the runner keeps a ``pending`` worklist keyed by pc and merges masks
  arriving at the same pc — reconvergence at CFG join points — always
  executing the smallest pending pc first so lanes re-merge as early as
  possible (and loop back-edges simply re-enter the worklist);
* lanes that would fault, exceed the step budget inside the next block, or
  reach semantics the vector tier does not model (hash-map traffic, odd
  byteswap widths, unknown helpers) *retire*: they leave the mask and are
  re-executed individually through the inherited fused scalar path, which
  makes their fault text, step count and cost accumulation trivially
  bit-identical to sequential execution.

Uninitialized-register checks are statically elided where a must-
initialized forward dataflow over the CFG proves them (entry state
``{r1, r10}``, helper calls clobber r1–r5); the remaining checks run
vectorized and retire only the offending lanes.  Programs whose jump
structure ``build_cfg`` rejects fall back to the fused tier wholesale, and
when numpy is unavailable the engine *is* the fused engine (the lockstep
tier simply never engages), so no hard dependency is added.

``tests/test_engine_batch.py`` pins lockstep == sequential differentially;
``tests/test_batch_replay.py`` pins the early-exit truncation contracts.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..bpf.cfg import CfgError, build_cfg
from ..bpf.helpers import HelperId, XDP_REDIRECT, helper_spec
from ..bpf.hooks import CtxFieldKind
from ..bpf.instruction import Instruction
from ..bpf.maps import MapState
from ..bpf.opcodes import AluOp, JmpOp, SrcOperand, STACK_SIZE
from ..bpf.program import BpfProgram
from ..bpf.regions import CTX_BASE, MAP_VALUE_BASE, PACKET_BASE, STACK_BASE
from ..interpreter.errors import BpfFault
from ..interpreter.interpreter import DEFAULT_STEP_LIMIT
from ..interpreter.state import (
    MAP_PTR_BASE, MachineState, PACKET_HEADROOM, ProgramInput, ProgramOutput,
)
from ..semantics import to_signed
from .decode import _HELPER_BODIES
from .engine import FusedEngine

try:  # numpy is an accelerator, never a requirement: without it the
    import numpy as _np  # lockstep tier stays dormant and the engine behaves
except ImportError:      # exactly like the fused tier it inherits from.
    _np = None

__all__ = ["BatchedEngine", "BatchSuite", "NUMPY_AVAILABLE"]

NUMPY_AVAILABLE = _np is not None

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1
_REGION_SPAN = 0x1000_0000_0000
#: Address window reserved per map fd (mirrors MapState's base formula).
_FD_WINDOW = 0x100_0000
#: Cap on the bytes one map's SoA value matrix may occupy across all lanes;
#: beyond it the map stays scalar (its lanes retire on access).
_MAX_VEC_MAP_BYTES = 32 << 20

#: Batches smaller than this run through the inherited fused sequential
#: path: per-call numpy overhead is amortized across lanes, so lockstep
#: only wins once enough tests execute the same instruction together.
# Below ~48 lanes the per-block numpy dispatch overhead outweighs the
# per-lane amortization and the fused tier is faster; run_batch falls back.
DEFAULT_MIN_LANES = 48

#: Upper bound on the per-block handler memo (churn backstop, mirroring the
#: fused tier's block memo).
_MAX_BLOCK_MEMO = 1 << 14

#: Cached suites (stable test batches) per machine.  The synthesis loop
#: alternates between at most a couple of suites (the chain's test suite
#: and the pipeline's counterexample pool).
_MAX_SUITES = 4

_TOP = frozenset(range(11))
_ENTRY_INIT = frozenset((1, 10))
_HELPER_CLOBBER = frozenset((1, 2, 3, 4, 5))

#: Helpers whose result is a per-lane constant (no argument reads, no
#: state): vectorized as one masked copy from a suite attribute / literal.
_VEC_RESULT_ATTR = {
    HelperId.KTIME_GET_NS: "times",
    HelperId.KTIME_GET_BOOT_NS: "times_boot",
    HelperId.GET_SMP_PROCESSOR_ID: "cpus",
}
_VEC_RESULT_CONST = {
    HelperId.XDP_ADJUST_META: 0,
    HelperId.PERF_EVENT_OUTPUT: 0,
    HelperId.TAIL_CALL: 0,
    HelperId.REDIRECT: XDP_REDIRECT,
}


class _NeedsScalar(Exception):
    """A scalar helper body touched state the SoA image does not model
    (hash-like map contents); the lane retires to the fused path."""


# --------------------------------------------------------------------------- #
# Must-initialized dataflow: which uninitialized-read checks can be elided
# --------------------------------------------------------------------------- #
def _block_transfer(instructions, start: int, end: int,
                    inset: frozenset) -> frozenset:
    """Forward transfer of the must-initialized register set over a block.

    Sound for every lane and every input: a register is in the result only
    if every non-faulting execution of the block writes (or inherits) it.
    Instructions that *always* fault make the rest of the block unreachable,
    so the out-state is irrelevant — return TOP so joins stay unconstrained.
    """
    live = set(inset)
    for pc in range(start, end):
        insn = instructions[pc]
        if insn.is_nop or insn.is_exit or insn.is_unconditional_jump \
                or insn.is_conditional_jump:
            continue
        if insn.is_call:
            live.add(0)
            live -= _HELPER_CLOBBER
        elif insn.is_lddw or insn.is_alu or insn.is_load:
            if insn.dst == 10:
                return _TOP  # always faults (ReadOnlyRegisterWrite)
            live.add(insn.dst)
        # Stores and unknown encodings write no register.
    return frozenset(live)


def _must_init_sets(cfg) -> Dict[int, frozenset]:
    """Per-block must-initialized-at-entry register sets (fixpoint)."""
    blocks = cfg.blocks
    instructions = cfg.instructions
    preds = {block.index: tuple(block.predecessors) for block in blocks}
    in_sets = {block.index: _TOP for block in blocks}
    in_sets[blocks[0].index] = _ENTRY_INIT
    out_sets = {block.index: _TOP for block in blocks}
    changed = True
    while changed:
        changed = False
        for block in blocks:
            inset = _ENTRY_INIT if block.index == blocks[0].index else _TOP
            for pred in preds[block.index]:
                inset = inset & out_sets[pred]
            out = _block_transfer(instructions, block.start, block.end, inset)
            if inset != in_sets[block.index] or out != out_sets[block.index]:
                in_sets[block.index] = inset
                out_sets[block.index] = out
                changed = True
    return {block.start: in_sets[block.index] for block in blocks}


# --------------------------------------------------------------------------- #
# Per-lane scalar proxy for the few helper bodies that stay scalar
# --------------------------------------------------------------------------- #
class _LaneView:
    """One lane of a :class:`BatchSuite`, shaped like a ``MachineState``.

    Byte buffers are memoryviews of the lane's numpy rows (writes land in
    the matrices directly); scalar fields are synced in/out around each
    out-of-line call by the suite.  Only helper bodies that the vector
    tier does not model run against this proxy (fib_lookup, map update /
    delete); touching map contents raises :class:`_NeedsScalar`, retiring
    the lane.
    """

    __slots__ = ("hook", "test", "stack", "stack_initialized",
                 "packet_buffer", "ctx", "regs", "reg_initialized",
                 "packet_start", "packet_end", "_random_cursor",
                 "packet_dirty")

    # Borrowed verbatim: they only touch fields this proxy provides.
    packet_length = MachineState.packet_length
    next_random = MachineState.next_random
    refresh_ctx_packet_pointers = MachineState.refresh_ctx_packet_pointers

    @property
    def maps(self):
        raise _NeedsScalar()


# --------------------------------------------------------------------------- #
# SoA state of one array-like map across all lanes
# --------------------------------------------------------------------------- #
class _VecMap:
    """Per-lane value/dirty matrices plus the static addressing facts of
    one array-like map (fixed base, slot-indexed cells, pre-populated
    keys).  ``val``/``dirty`` are None for maps that vectorize lookups but
    whose memory stays scalar (over the matrix budget)."""

    __slots__ = ("fd", "ptr", "base", "key_size", "value_size",
                 "max_entries", "span", "span_v", "slot_count", "slot_keys",
                 "zero_snapshot", "val", "dirty", "base_val", "base_dirty",
                 "_updates")

    def __init__(self, definition):
        self.fd = definition.fd
        self.base = MAP_VALUE_BASE + definition.fd * _FD_WINDOW
        self.ptr = MAP_PTR_BASE + definition.fd
        self.key_size = definition.key_size
        self.value_size = definition.value_size
        self.max_entries = definition.max_entries
        self.slot_count = definition.max_entries
        self.span = definition.max_entries * definition.value_size
        self.span_v = _np.uint64(self.span) if _np is not None else None
        self.slot_keys = [index.to_bytes(definition.key_size, "little")
                          for index in range(definition.max_entries)]
        self.zero_snapshot = dict.fromkeys(self.slot_keys,
                                           bytes(definition.value_size))
        self.val = self.dirty = self.base_val = self.base_dirty = None
        self._updates = None

    def seal(self) -> None:
        """Pre-assemble (slot, value_bytes) updates for every dirty lane in
        one bulk ``nonzero`` + ``tobytes`` pass; per-lane numpy scalar work
        dominates output assembly otherwise."""
        updates: Dict[int, list] = {}
        if self.dirty.any():
            lanes_idx, slots_idx = _np.nonzero(self.dirty)
            blob = self.val.tobytes()
            row_span = self.val.shape[1]
            value_size = self.value_size
            for lane, slot in zip(lanes_idx.tolist(), slots_idx.tolist()):
                start = lane * row_span + slot * value_size
                updates.setdefault(lane, []).append(
                    (slot, blob[start:start + value_size]))
        self._updates = updates

    def lane_snapshot(self, lane: int) -> dict:
        pairs = self._updates.get(lane)
        if pairs is None:
            return self.zero_snapshot
        snap = dict(self.zero_snapshot)
        slot_keys = self.slot_keys
        for slot, value in pairs:
            snap[slot_keys[slot]] = value
        return snap


# --------------------------------------------------------------------------- #
# SoA state of one hash-like map across all lanes
# --------------------------------------------------------------------------- #
class _HashMap:
    """Vectorized view of a hash-like map's *initial* contents.

    Non-retired lanes can never mutate a hash map's key set (update and
    delete retire the lane before touching state), so each lane's
    key→address table and slot layout are fixed at suite build: lookups
    become per-lane dict probes on the gathered key, and value memory is a
    matrix addressed by ``address - base`` exactly like MapState's
    sequential allocator laid it out.  Value *stores* stay vectorized too —
    they change bytes, not layout — with dirty rows triggering a full
    snapshot rebuild at output time (hash snapshots are full dicts)."""

    __slots__ = ("fd", "ptr", "base", "key_size", "value_size", "val",
                 "dirty", "base_val", "base_dirty", "span_v", "slot_count",
                 "lane_probes", "lane_slot_keys", "statics", "n_slots",
                 "dense", "_dirty_l", "_blob")

    def __init__(self, definition, map_images, lanes: int):
        self.fd = definition.fd
        self.base = MAP_VALUE_BASE + definition.fd * _FD_WINDOW
        self.ptr = MAP_PTR_BASE + definition.fd
        self.key_size = definition.key_size
        self.value_size = definition.value_size
        value_size = definition.value_size
        base = self.base
        n_slots = max(map_image[2] for map_image in map_images)
        self.n_slots = n_slots
        self.slot_count = max(n_slots, 1)
        self.span_v = _np.array(
            [map_image[2] * value_size for map_image in map_images],
            dtype=_np.uint64)
        self.lane_probes = []
        self.lane_slot_keys = []
        self.statics = [map_image[0] for map_image in map_images]
        self.base_val = _np.zeros((lanes, n_slots * value_size),
                                  dtype=_np.uint8)
        # Memory claims treat [base, base + next_slot * value_size) as one
        # dense run of live cells, which only matches value_access when no
        # allocated slot was freed: require every address below the
        # high-water mark to be live.
        dense = True
        for lane, map_image in enumerate(map_images):
            entries, addresses, next_slot, _ = map_image
            if len(entries) != next_slot:
                dense = False
            probe = {}
            slot_keys = []
            for key, value in entries.items():
                address = addresses[key]
                probe[int.from_bytes(key, "little")] = address
                slot = (address - base) // value_size
                slot_keys.append((slot, key))
                self.base_val[lane,
                              slot * value_size:(slot + 1) * value_size] = \
                    _np.frombuffer(value, dtype=_np.uint8)
            self.lane_probes.append(probe)
            self.lane_slot_keys.append(slot_keys)
        self.dense = dense
        self.val = self.base_val.copy()
        self.dirty = _np.zeros((lanes, self.slot_count), dtype=bool)
        self.base_dirty = _np.zeros((lanes, self.slot_count), dtype=bool)
        self._dirty_l = None
        self._blob = None

    def seal(self) -> None:
        if self.dirty.any():
            self._dirty_l = self.dirty.any(axis=1).tolist()
            self._blob = self.val.tobytes()
        else:
            self._dirty_l = None

    def lane_snapshot(self, lane: int) -> dict:
        dirty_l = self._dirty_l
        if dirty_l is None or not dirty_l[lane]:
            return self.statics[lane]
        blob = self._blob
        value_size = self.value_size
        base = lane * self.val.shape[1]
        return {key: blob[base + slot * value_size:
                          base + (slot + 1) * value_size]
                for slot, key in self.lane_slot_keys[lane]}


# --------------------------------------------------------------------------- #
# The SoA machine image
# --------------------------------------------------------------------------- #
class BatchSuite:
    """Structure-of-arrays machine image for one stable test batch.

    Built once per (engine machine, test batch) from the per-test reset
    images the fused tier already caches; :meth:`rewind` restores the whole
    matrix for the next candidate with a handful of bulk copies.  Generated
    block handlers receive this object as ``B`` and manipulate the arrays
    through masked numpy ops plus the memory/helper methods below.
    """

    def __init__(self, hook, maps_env, images: Sequence[tuple], strict: bool,
                 step_limit: int):
        self.hook = hook
        self.strict = strict
        lanes = len(images)
        self.lanes = lanes
        tests = [image[0] for image in images]
        self.tests = tests

        caps = [len(image[1]) for image in images]
        width = max(caps)
        ctx_size = max(len(images[0][2]), 1)

        base_pkt = _np.zeros((lanes, width), dtype=_np.uint8)
        for index, image in enumerate(images):
            base_pkt[index, :caps[index]] = _np.frombuffer(
                image[1], dtype=_np.uint8)
        self.base_pkt = base_pkt
        self.base_ctx = _np.frombuffer(
            b"".join(image[2] for image in images),
            dtype=_np.uint8).reshape(lanes, ctx_size).copy()
        self.base_end = _np.array([image[4] for image in images],
                                  dtype=_np.uint64)
        self.base_end_l = [int(end) for end in self.base_end]
        self.packet_out = [image[5] for image in images]
        self.caps = caps
        self.capsv = _np.array(caps, dtype=_np.int64)

        # Working state (SoA): one row / column per lane.
        self.R2 = _np.zeros((11, lanes), dtype=_np.uint64)
        self.R = [self.R2[reg] for reg in range(11)]
        self.I2 = _np.zeros((11, lanes), dtype=bool)
        self.I = [self.I2[reg] for reg in range(11)]
        self._base_regs = _np.zeros((11, 1), dtype=_np.uint64)
        self._base_regs[1, 0] = CTX_BASE
        self._base_regs[10, 0] = STACK_BASE + STACK_SIZE
        self._base_init = _np.zeros((11, 1), dtype=bool)
        self._base_init[1, 0] = True
        self._base_init[10, 0] = True
        self.stk = _np.zeros((lanes, STACK_SIZE), dtype=_np.uint8)
        self.SI = _np.zeros((lanes, STACK_SIZE), dtype=_np.uint8)
        self.pkt = base_pkt.copy()
        self.ctxm = self.base_ctx.copy()
        self.starts = _np.full(lanes, PACKET_HEADROOM, dtype=_np.uint64)
        self.ends = self.base_end.copy()
        self.S = _np.zeros(lanes, dtype=_np.int64)
        self.E = _np.zeros(lanes, dtype=_np.float64)
        self.PD = _np.zeros(lanes, dtype=bool)
        self.done = _np.zeros(lanes, dtype=bool)
        self.ret = _np.zeros(lanes, dtype=_np.uint64)
        self.retired = _np.zeros(lanes, dtype=bool)
        self.cursors = [0] * lanes

        # Per-lane helper constants (ktime / smp / prandom sources).
        self.times = _np.array([test.time_ns & _U64 for test in tests],
                               dtype=_np.uint64)
        self.times_boot = (self.times + _np.uint64(1))
        self.cpus = _np.array([test.cpu_id & _U32 for test in tests],
                              dtype=_np.uint64)
        self.rand_vals = [tuple(value & _U32 for value in
                                (test.random_values or [0]))
                          for test in tests]

        # Ctx packet-pointer fields, re-derived after adjust_head/tail.
        self.ctx_ptr_fields = [
            (field.offset, field.size,
             field.kind == CtxFieldKind.PACKET_END_PTR)
            for field in hook.fields
            if field.kind in (CtxFieldKind.PACKET_PTR,
                              CtxFieldKind.PACKET_END_PTR)]

        self._build_maps(maps_env, images, step_limit)

    # ------------------------------------------------------------------ #
    def _build_maps(self, maps_env, images, step_limit: int) -> None:
        """SoA map state: value matrices for array-like *and* hash-like
        maps, static snapshots for everything a non-retired lane can never
        touch.

        Memory claims (load/store routing by address range) are only sound
        when no map's live values can escape its fd window.  Maps cannot
        grow under the vector tier — array slots are all pre-allocated and
        hash update/delete retire the lane before touching state — so the
        check is simply that every map's *initial* extent fits its window.
        Any violation turns off the map-memory fast path wholesale (those
        lanes retire); the lookup fast path reproduces MapState's allocator
        addresses exactly, so it stays on regardless.
        """
        lanes = self.lanes
        per_fd: Dict[int, list] = {}
        for image in images:
            for fd, map_image in image[3]:
                per_fd.setdefault(fd, []).append(map_image)

        # A non-retired lane can never grow a map (hash update / delete
        # retire the lane before touching state; array slots are all
        # pre-allocated), so a map's live values stay inside its fd window
        # exactly when its *initial* extent fits.
        mem_ok = True
        for fd in maps_env.fds():
            definition = maps_env.definition(fd)
            if definition.map_type in MapState._ARRAY_LIKE:
                extent = definition.max_entries * definition.value_size
            else:
                extent = max((map_image[2] for map_image
                              in per_fd.get(fd, [])), default=0) \
                    * definition.value_size
            if extent > _FD_WINDOW:
                mem_ok = False

        self.lookup_maps: List[_VecMap] = []
        self.hash_lookups: List[_HashMap] = []
        self.mem_maps: List = []
        self.redirect_specs = []
        #: Output plan, in fd order: (fd, vec_map_or_None, static_snaps).
        self.out_plan: List[tuple] = []
        for fd in maps_env.fds():
            definition = maps_env.definition(fd)
            self.redirect_specs.append(
                (_np.uint64(MAP_PTR_BASE + fd),
                 _np.uint64(definition.max_entries)))
            if definition.map_type not in MapState._ARRAY_LIKE:
                hm = _HashMap(definition, per_fd[fd], lanes)
                if hm.key_size in (1, 2, 4, 8):
                    self.hash_lookups.append(hm)
                if mem_ok and hm.dense and hm.n_slots \
                        and hm.n_slots * hm.value_size * lanes \
                        <= _MAX_VEC_MAP_BYTES:
                    self.mem_maps.append(hm)
                    self.out_plan.append((fd, hm, None))
                else:
                    # Memory traffic retires; a non-retired lane's
                    # snapshot is its initial (per-test) contents.
                    self.out_plan.append((fd, None, hm.statics))
                continue
            vm = _VecMap(definition)
            if vm.key_size in (1, 2, 4, 8):
                self.lookup_maps.append(vm)
            if mem_ok and vm.span <= _FD_WINDOW \
                    and vm.span * lanes <= _MAX_VEC_MAP_BYTES:
                vm.base_val = _np.zeros((lanes, vm.span), dtype=_np.uint8)
                vm.base_dirty = _np.zeros((lanes, vm.max_entries),
                                          dtype=bool)
                value_size = vm.value_size
                for lane, map_image in enumerate(per_fd[fd]):
                    for key, value in map_image[0].items():
                        slot = int.from_bytes(key, "little")
                        vm.base_val[lane,
                                    slot * value_size:(slot + 1) * value_size] \
                            = _np.frombuffer(value, dtype=_np.uint8)
                        vm.base_dirty[lane, slot] = True
                vm.val = vm.base_val.copy()
                vm.dirty = vm.base_dirty.copy()
                self.mem_maps.append(vm)
                self.out_plan.append((fd, vm, None))
            else:
                # Lookups may still vectorize; memory traffic retires, so
                # a non-retired lane's contents equal its initial image.
                statics = [vm.zero_snapshot if not map_image[0]
                           else {**vm.zero_snapshot, **map_image[0]}
                           for map_image in per_fd[fd]]
                self.out_plan.append((fd, None, statics))

        # Per-lane scalar proxies (fib_lookup and map update/delete only).
        self.lane_views = []
        for index in range(lanes):
            view = _LaneView()
            view.hook = self.hook
            view.test = self.tests[index]
            view.stack = memoryview(self.stk[index])
            view.stack_initialized = memoryview(self.SI[index])
            view.packet_buffer = memoryview(self.pkt[index,
                                                     :self.caps[index]])
            view.ctx = memoryview(self.ctxm[index])
            view.regs = [0] * 11
            view.reg_initialized = [False] * 11
            view.packet_start = PACKET_HEADROOM
            view.packet_end = self.base_end_l[index]
            view._random_cursor = 0
            view.packet_dirty = False
            self.lane_views.append(view)

    # ------------------------------------------------------------------ #
    def rewind(self) -> None:
        """Reset every lane for the next candidate (bulk matrix copies)."""
        self.R2[:] = self._base_regs
        self.I2[:] = self._base_init
        self.stk[:] = 0
        self.SI[:] = 0
        self.pkt[:] = self.base_pkt
        self.ctxm[:] = self.base_ctx
        self.starts[:] = PACKET_HEADROOM
        self.ends[:] = self.base_end
        self.S[:] = 0
        self.E[:] = 0
        self.PD[:] = False
        self.done[:] = False
        self.ret[:] = 0
        self.retired[:] = False
        self.cursors = [0] * self.lanes
        for vm in self.mem_maps:
            vm.val[:] = vm.base_val
            vm.dirty[:] = vm.base_dirty

    def mask_all(self):
        return _np.ones(self.lanes, dtype=bool)

    # ------------------------------------------------------------------ #
    # Lane retirement and bookkeeping used by generated handlers
    # ------------------------------------------------------------------ #
    def drop(self, mask, bad):
        """Retire ``bad`` lanes (re-run later via the scalar path)."""
        self.retired |= bad
        return mask & ~bad

    def force_retire(self, bad) -> None:
        self.retired |= bad

    def add_steps(self, mask, count: int) -> None:
        _np.add(self.S, count, out=self.S, where=mask)

    def exit_lanes(self, mask, values) -> None:
        _np.copyto(self.ret, values, where=mask)
        self.done |= mask

    # ------------------------------------------------------------------ #
    # Vectorized memory: stack column fast path (r10 + constant offset)
    # ------------------------------------------------------------------ #
    def stack_load_k(self, mask, k: int, width: int, dst: int):
        if self.strict:
            ok = self.SI[:, k:k + width].all(axis=1)
            bad = mask & ~ok
            if bad.any():
                mask = self.drop(mask, bad)
                if not mask.any():
                    return mask
        column = self.stk[:, k:k + width]
        if width == 1:
            values = column[:, 0].astype(_np.uint64)
        else:
            values = column.view(f"<u{width}")[:, 0].astype(_np.uint64)
        _np.copyto(self.R[dst], values, where=mask)
        if self.strict:
            self.I[dst][mask] = True
        return mask

    def stack_store_k(self, mask, k: int, width: int, kind: str,
                      src: int, imm: int):
        lanes = _np.flatnonzero(mask)
        if not lanes.size:
            return mask
        value_mask = (1 << (8 * width)) - 1
        if kind == "imm":
            values = _np.full(lanes.size, imm & value_mask, dtype=_np.uint64)
        else:
            values = self.R[src][lanes]
            if kind == "xadd":
                column = self.stk[:, k:k + width]
                if width == 1:
                    current = column[:, 0].astype(_np.uint64)[lanes]
                else:
                    current = column.view(f"<u{width}")[:, 0] \
                        .astype(_np.uint64)[lanes]
                values = values + current
            values = values & _np.uint64(value_mask)
        self._scatter_bytes(self.stk, lanes, _np.full(
            lanes.size, k, dtype=_np.int64), width, values)
        self.SI[lanes, k:k + width] = 1
        return mask

    # ------------------------------------------------------------------ #
    # Vectorized memory: general loads/stores with region partitioning
    # ------------------------------------------------------------------ #
    def _gather_bytes(self, matrix, lanes, offsets, width: int):
        """(n,) uint64 little-endian reads at per-lane offsets."""
        flat = matrix.reshape(-1)
        base = lanes * matrix.shape[1] + offsets
        if width == 1:
            return flat[base].astype(_np.uint64)
        index = base[:, None] + _np.arange(width, dtype=_np.int64)
        return flat[index].view(f"<u{width}")[:, 0].astype(_np.uint64)

    def _scatter_bytes(self, matrix, lanes, offsets, width: int,
                       values) -> None:
        """Little-endian writes of ``values`` at per-lane offsets."""
        flat = matrix.reshape(-1)
        base = lanes * matrix.shape[1] + offsets
        if width == 1:
            flat[base] = (values & _np.uint64(0xFF)).astype(_np.uint8)
            return
        shifts = _np.arange(width, dtype=_np.uint64) * _np.uint64(8)
        data = ((values[:, None] >> shifts) & _np.uint64(0xFF)) \
            .astype(_np.uint8)
        index = base[:, None] + _np.arange(width, dtype=_np.int64)
        flat[index] = data

    def load(self, mask, addr, width: int, dst: int, rebase: tuple):
        """Vectorized MEM load: region-partitioned gathers; lanes whose
        address the SoA image does not model (over-budget map values,
        garbage, NULL) retire to the scalar path."""
        values = _np.zeros(self.lanes, dtype=_np.uint64)
        span = _np.uint64(_REGION_SPAN)
        w64 = _np.uint64(width)

        off_p = addr - _np.uint64(PACKET_BASE)
        in_p = mask & (off_p < span)
        rest = mask ^ in_p
        if in_p.any():
            bad = in_p & ~((off_p >= self.starts) & (off_p <= self.ends - w64))
            if bad.any():
                mask = self.drop(mask, bad)
                in_p &= ~bad
            if in_p.any():
                lanes = _np.flatnonzero(in_p)
                offs = off_p[lanes].astype(_np.int64)
                values[lanes] = self._gather_bytes(self.pkt, lanes, offs,
                                                   width)
        if rest.any():
            off_c = addr - _np.uint64(CTX_BASE)
            in_c = rest & (off_c < span)
            rest = rest ^ in_c
            if in_c.any():
                ctx_size = self.ctxm.shape[1]
                bad = in_c & ~(off_c <= _np.uint64(ctx_size - width))
                if bad.any():
                    mask = self.drop(mask, bad)
                    in_c &= ~bad
                if in_c.any():
                    lanes = _np.flatnonzero(in_c)
                    offs = off_c[lanes].astype(_np.int64)
                    values[lanes] = self._gather_bytes(self.ctxm, lanes,
                                                       offs, width)
                    if rebase:
                        hit = _np.zeros(self.lanes, dtype=bool)
                        for offset in rebase:
                            hit |= in_c & (off_c == _np.uint64(offset))
                        if hit.any():
                            _np.copyto(values,
                                       values + _np.uint64(PACKET_BASE),
                                       where=hit)
        if rest.any():
            off_s = addr - _np.uint64(STACK_BASE)
            in_s = rest & (off_s < span)
            rest = rest ^ in_s
            if in_s.any():
                bad = in_s & ~(off_s <= _np.uint64(STACK_SIZE - width))
                if bad.any():
                    mask = self.drop(mask, bad)
                    in_s &= ~bad
                if in_s.any():
                    lanes = _np.flatnonzero(in_s)
                    offs = off_s[lanes].astype(_np.int64)
                    if self.strict:
                        flat = self.SI.reshape(-1)
                        base = lanes * STACK_SIZE + offs
                        if width == 1:
                            ok = flat[base] != 0
                        else:
                            index = base[:, None] + _np.arange(
                                width, dtype=_np.int64)
                            ok = flat[index].all(axis=1)
                        if not ok.all():
                            bad = _np.zeros(self.lanes, dtype=bool)
                            bad[lanes[~ok]] = True
                            mask = self.drop(mask, bad)
                            lanes = lanes[ok]
                            offs = offs[ok]
                    if lanes.size:
                        values[lanes] = self._gather_bytes(self.stk, lanes,
                                                           offs, width)
        if rest.any():
            for vm in self.mem_maps:
                off_m = addr - _np.uint64(vm.base)
                in_m = rest & (off_m < vm.span_v)
                if not in_m.any():
                    continue
                rest = rest ^ in_m
                vs = _np.uint64(vm.value_size)
                cell = off_m - (off_m // vs) * vs
                bad = in_m & (cell + w64 > vs)
                if bad.any():
                    mask = self.drop(mask, bad)
                    in_m &= ~bad
                if in_m.any():
                    lanes = _np.flatnonzero(in_m)
                    offs = off_m[lanes].astype(_np.int64)
                    values[lanes] = self._gather_bytes(vm.val, lanes, offs,
                                                       width)
                if not rest.any():
                    break
        if rest.any():
            mask = self.drop(mask, rest)

        _np.copyto(self.R[dst], values, where=mask)
        if self.strict:
            self.I[dst][mask] = True
        return mask

    def store(self, mask, addr, width: int, kind: str, src: int, imm: int):
        """Vectorized MEM store (packet/stack/map-value fast paths).

        Mirrors the decoded fault order observably: every fault path
        retires the lane, and no lane's state is written before all of its
        own checks pass.  ``xadd`` vectorizes as gather + add + scatter.
        """
        span = _np.uint64(_REGION_SPAN)
        w64 = _np.uint64(width)
        value_mask = (1 << (8 * width)) - 1

        off_p = addr - _np.uint64(PACKET_BASE)
        in_p = mask & (off_p < span)
        rest = mask ^ in_p
        if in_p.any():
            bad = in_p & ~((off_p >= self.starts) & (off_p <= self.ends - w64))
            if bad.any():
                mask = self.drop(mask, bad)
                in_p &= ~bad
        in_s = _np.zeros(self.lanes, dtype=bool)
        map_claims: List[tuple] = []
        if rest.any():
            off_c = addr - _np.uint64(CTX_BASE)
            in_c = rest & (off_c < span)
            rest = rest ^ in_c
            if in_c.any():
                # Every ctx store faults (bad bounds or "stores to ctx
                # memory are not permitted"); scalar replay recovers the
                # exact message.
                mask = self.drop(mask, in_c)
        if rest.any():
            off_s = addr - _np.uint64(STACK_BASE)
            in_s = rest & (off_s < span)
            rest = rest ^ in_s
            if in_s.any():
                bad = in_s & ~(off_s <= _np.uint64(STACK_SIZE - width))
                if bad.any():
                    mask = self.drop(mask, bad)
                    in_s &= ~bad
        if rest.any():
            for vm in self.mem_maps:
                off_m = addr - _np.uint64(vm.base)
                in_m = rest & (off_m < vm.span_v)
                if not in_m.any():
                    continue
                rest = rest ^ in_m
                vs = _np.uint64(vm.value_size)
                slots = off_m // vs
                cell = off_m - slots * vs
                bad = in_m & (cell + w64 > vs)
                if bad.any():
                    mask = self.drop(mask, bad)
                    in_m &= ~bad
                if in_m.any():
                    map_claims.append((vm, in_m, off_m, slots))
                if not rest.any():
                    break
        if rest.any():
            mask = self.drop(mask, rest)

        if kind != "imm" and self.strict:
            # Source read happens after address resolution in the decoded
            # order, so check it only on lanes that passed bounds.
            bad = mask & ~self.I[src]
            if bad.any():
                mask = self.drop(mask, bad)
                in_p &= mask
                in_s &= mask
                map_claims = [(vm, in_m & mask, off_m, slots)
                              for vm, in_m, off_m, slots in map_claims]

        if in_p.any():
            lanes = _np.flatnonzero(in_p)
            offs = off_p[lanes].astype(_np.int64)
            values = self._store_values(kind, src, imm, lanes, value_mask,
                                        self.pkt, offs)
            self._scatter_bytes(self.pkt, lanes, offs, width, values)
            self.PD[lanes] = True
        if in_s.any():
            lanes = _np.flatnonzero(in_s)
            offs = (addr - _np.uint64(STACK_BASE))[lanes].astype(_np.int64)
            values = self._store_values(kind, src, imm, lanes, value_mask,
                                        self.stk, offs)
            self._scatter_bytes(self.stk, lanes, offs, width, values)
            flat = self.SI.reshape(-1)
            base = lanes * STACK_SIZE + offs
            if width == 1:
                flat[base] = 1
            else:
                index = base[:, None] + _np.arange(width, dtype=_np.int64)
                flat[index] = 1
        for vm, in_m, off_m, slots in map_claims:
            if not in_m.any():
                continue
            lanes = _np.flatnonzero(in_m)
            offs = off_m[lanes].astype(_np.int64)
            values = self._store_values(kind, src, imm, lanes, value_mask,
                                        vm.val, offs)
            self._scatter_bytes(vm.val, lanes, offs, width, values)
            vm.dirty.reshape(-1)[lanes * vm.slot_count
                                 + slots[lanes].astype(_np.int64)] = True
        return mask

    def _store_values(self, kind: str, src: int, imm: int, lanes,
                      value_mask: int, matrix, offs):
        if kind == "imm":
            return _np.full(lanes.size, imm & value_mask, dtype=_np.uint64)
        values = self.R[src][lanes]
        if kind == "xadd":
            width = value_mask.bit_length() // 8
            values = values + self._gather_bytes(matrix, lanes, offs, width)
        return values & _np.uint64(value_mask)

    # ------------------------------------------------------------------ #
    # Vectorized helpers
    # ------------------------------------------------------------------ #
    def _post_call(self, mask) -> None:
        """Register effects shared by every helper: r0 written, r1–r5
        clobbered (values keep, init flags drop)."""
        if self.strict:
            self.I[0] |= mask
            self.I2[1:6] &= ~mask

    def vec_helper_result(self, mask, values):
        """A helper whose result is a constant / per-lane precomputed
        value and which reads no registers and mutates no state."""
        _np.copyto(self.R[0], values, where=mask)
        self._post_call(mask)
        return mask

    def vec_map_lookup(self, mask):
        """bpf_map_lookup_elem: a stack gather of the key, then either the
        allocator's slot-address formula (array-like maps) or a per-lane
        probe of the frozen key→address table (hash-like maps — frozen
        because update/delete retire the lane before mutating).  Lanes with
        an unvectorized map reference or a non-stack key pointer retire."""
        if self.strict:
            bad = mask & ~(self.I[1] & self.I[2])
            if bad.any():
                mask = self.drop(mask, bad)
                if not mask.any():
                    return mask
        r1 = self.R[1]
        out = _np.zeros(self.lanes, dtype=_np.uint64)
        claimed = _np.zeros(self.lanes, dtype=bool)
        for vm in self.lookup_maps:
            m_fd = mask & (r1 == _np.uint64(vm.ptr))
            if not m_fd.any():
                continue
            koff = self.R[2] - _np.uint64(STACK_BASE)
            ok = m_fd & (koff <= _np.uint64(STACK_SIZE - vm.key_size))
            bad = m_fd ^ ok
            if bad.any():
                mask = self.drop(mask, bad)
            if ok.any():
                lanes = _np.flatnonzero(ok)
                index = self._gather_bytes(
                    self.stk, lanes, koff[lanes].astype(_np.int64),
                    vm.key_size)
                out[lanes] = _np.where(
                    index < _np.uint64(vm.max_entries),
                    _np.uint64(vm.base)
                    + index * _np.uint64(vm.value_size),
                    _np.uint64(0))
                claimed |= ok
        for hm in self.hash_lookups:
            m_fd = mask & (r1 == _np.uint64(hm.ptr))
            if not m_fd.any():
                continue
            koff = self.R[2] - _np.uint64(STACK_BASE)
            ok = m_fd & (koff <= _np.uint64(STACK_SIZE - hm.key_size))
            bad = m_fd ^ ok
            if bad.any():
                mask = self.drop(mask, bad)
            if ok.any():
                lanes = _np.flatnonzero(ok)
                keys = self._gather_bytes(
                    self.stk, lanes, koff[lanes].astype(_np.int64),
                    hm.key_size)
                probes = hm.lane_probes
                out[lanes] = _np.fromiter(
                    (probes[lane].get(key, 0) for lane, key
                     in zip(lanes.tolist(), keys.tolist())),
                    dtype=_np.uint64, count=lanes.size)
                claimed |= ok
        bad = mask & ~claimed
        if bad.any():
            mask = self.drop(mask, bad)
            if not mask.any():
                return mask
        _np.copyto(self.R[0], out, where=mask)
        self._post_call(mask)
        return mask

    def vec_redirect_map(self, mask):
        """bpf_redirect_map needs only the map *definition* (max_entries),
        so it vectorizes for every map type."""
        if self.strict:
            bad = mask & ~(self.I[1] & self.I[2] & self.I[3])
            if bad.any():
                mask = self.drop(mask, bad)
                if not mask.any():
                    return mask
        r1 = self.R[1]
        out = _np.zeros(self.lanes, dtype=_np.uint64)
        claimed = _np.zeros(self.lanes, dtype=bool)
        for ptr, max_entries in self.redirect_specs:
            m_fd = mask & (r1 == ptr)
            if not m_fd.any():
                continue
            result = _np.where(self.R[2] < max_entries,
                               _np.uint64(XDP_REDIRECT),
                               self.R[3] & _np.uint64(_U32))
            _np.copyto(out, result, where=m_fd)
            claimed |= m_fd
        bad = mask & ~claimed
        if bad.any():
            mask = self.drop(mask, bad)
            if not mask.any():
                return mask
        _np.copyto(self.R[0], out, where=mask)
        self._post_call(mask)
        return mask

    def vec_adjust(self, mask, head: bool):
        """xdp_adjust_head / xdp_adjust_tail: packet extents are suite
        vectors, and the ctx packet-pointer fields re-derive as masked
        scatters of the new extents."""
        if self.strict:
            bad = mask & ~self.I[2]
            if bad.any():
                mask = self.drop(mask, bad)
                if not mask.any():
                    return mask
        delta = self.R[2].astype(_np.int64)
        if head:
            moved = self.starts.astype(_np.int64) + delta
            ok = (moved >= 0) & (moved <= self.ends.astype(_np.int64))
            target = self.starts
        else:
            moved = self.ends.astype(_np.int64) + delta
            ok = (moved >= self.starts.astype(_np.int64)) \
                & (moved <= self.capsv)
            target = self.ends
        okm = mask & ok
        if okm.any():
            _np.copyto(target, moved.astype(_np.uint64), where=okm)
            lanes = _np.flatnonzero(okm)
            for offset, size, is_end in self.ctx_ptr_fields:
                extents = self.ends if is_end else self.starts
                self._scatter_bytes(
                    self.ctxm, lanes,
                    _np.full(lanes.size, offset, dtype=_np.int64), size,
                    extents[lanes])
        result = _np.where(ok, _np.uint64(0), _np.uint64(_U64))
        _np.copyto(self.R[0], result, where=mask)
        self._post_call(mask)
        return mask

    def vec_prandom(self, mask):
        """bpf_get_prandom_u32: per-lane cursor walk over the test's
        random_values tuple (cheap scalar loop, vector write-back)."""
        lanes = _np.flatnonzero(mask).tolist()
        if not lanes:
            return mask
        cursors = self.cursors
        rand_vals = self.rand_vals
        out = []
        for lane in lanes:
            values = rand_vals[lane]
            cursor = cursors[lane]
            out.append(values[cursor % len(values)])
            cursors[lane] = cursor + 1
        self.R[0][lanes] = _np.array(out, dtype=_np.uint64)
        self._post_call(mask)
        return mask

    # ------------------------------------------------------------------ #
    # Scalar helper fallback (fib_lookup, map update/delete)
    # ------------------------------------------------------------------ #
    def call_helper(self, mask, pc: int, body):
        lanes = _np.flatnonzero(mask)
        if not lanes.size:
            return mask
        strict = self.strict
        lane_list = lanes.tolist()
        regs_cols = self.R2[:, lanes].T.tolist()
        init_cols = self.I2[:, lanes].T.tolist()
        starts = self.starts[lanes].tolist()
        ends = self.ends[lanes].tolist()
        keep: List[int] = []
        results: List[int] = []
        for position, lane in enumerate(lane_list):
            view = self.lane_views[lane]
            view.regs = regs_cols[position]
            view.reg_initialized = init_cols[position]
            view.packet_start = starts[position]
            view.packet_end = ends[position]
            view._random_cursor = self.cursors[lane]
            view.packet_dirty = False
            try:
                result = body(view, pc, strict)
            except (BpfFault, _NeedsScalar):
                self.retired[lane] = True
                mask[lane] = False
                continue
            self.cursors[lane] = view._random_cursor
            self.starts[lane] = view.packet_start
            self.ends[lane] = view.packet_end
            if view.packet_dirty:
                self.PD[lane] = True
            keep.append(lane)
            results.append(result & _U64)
        if keep:
            index = _np.array(keep, dtype=_np.int64)
            self.R2[0, index] = _np.array(results, dtype=_np.uint64)
            if strict:
                self.I2[0, index] = True
                self.I2[1:6, index] = False
        return mask

    # ------------------------------------------------------------------ #
    # Output assembly (only for lanes that ran fully in lockstep)
    # ------------------------------------------------------------------ #
    def finish(self) -> None:
        """Convert hot vectors to Python lists once before per-lane output
        construction (numpy scalar reads are ~10x a list index)."""
        self.ret_l = self.ret.tolist()
        self.S_l = self.S.tolist()
        self.E_l = self.E.tolist()
        self.starts_l = self.starts.tolist()
        self.ends_l = self.ends.tolist()
        self.PD_l = self.PD.tolist()
        for vm in self.mem_maps:
            vm.seal()

    def lane_output(self, lane: int, with_costs: bool) -> ProgramOutput:
        start = self.starts_l[lane]
        end = self.ends_l[lane]
        if (not self.PD_l[lane] and start == PACKET_HEADROOM
                and end == self.base_end_l[lane]):
            packet = self.packet_out[lane]
        else:
            packet = self.pkt[lane, start:end].tobytes()
        maps: Dict[int, dict] = {}
        for fd, vm, statics in self.out_plan:
            maps[fd] = statics[lane] if vm is None else vm.lane_snapshot(lane)
        return ProgramOutput(
            self.ret_l[lane], packet, maps, None, self.S_l[lane],
            self.E_l[lane] if with_costs else 0.0)


# --------------------------------------------------------------------------- #
# Vectorized byteswap (END) for the widths the kernel defines
# --------------------------------------------------------------------------- #
def _vbswap(values, width: int):
    if width == 8:
        return values & _np.uint64(0xFF)
    if width == 16:
        low = (values & _np.uint64(0xFFFF)).astype(_np.uint16)
        return low.byteswap().astype(_np.uint64)
    if width == 32:
        low = (values & _np.uint64(0xFFFFFFFF)).astype(_np.uint32)
        return low.byteswap().astype(_np.uint64)
    return values.byteswap()  # width == 64


_BATCH_GLOBALS: dict = {"_vbswap": _vbswap}


# --------------------------------------------------------------------------- #
# Block code generation
# --------------------------------------------------------------------------- #
class _VecEmitter:
    """Accumulates the source of one lockstep block handler."""

    def __init__(self, strict: bool, live_in: frozenset):
        self.strict = strict
        self.live = set(live_in)
        self.lines: List[str] = []
        self.deps: List[tuple] = []
        self.regs_used: set = set()
        self.ini_used: set = set()
        self.truncated = False

    def add(self, line: str, depth: int = 0) -> None:
        self.lines.append("    " + "    " * depth + line)

    def bind(self, name: str, value) -> str:
        self.deps.append((name, value))
        return name

    def reg(self, index: int) -> str:
        self.regs_used.add(index)
        return f"_r{index}"

    def ini(self, index: int) -> str:
        self.ini_used.add(index)
        return f"_i{index}"

    def retire_all(self) -> None:
        """The instruction faults (or is unvectorizable) for every lane."""
        self.add("B.force_retire(_m)")
        self.add("return ()")
        self.truncated = True

    def check_init(self, reg: int) -> None:
        if not self.strict or reg in self.live:
            return
        self.add(f"_bad = _m & ~{self.ini(reg)}")
        self.add("if _bad.any():")
        self.add("_m = B.drop(_m, _bad)", 1)
        self.add("if not _m.any(): return ()", 1)

    def mark_written(self, reg: int) -> None:
        self.live.add(reg)
        if self.strict:
            self.add(f"{self.ini(reg)}[_m] = True")

    def guard_live(self) -> None:
        self.add("if not _m.any(): return ()")

    # ------------------------------------------------------------------ #
    def emit_cost(self, cost) -> None:
        if cost is not None:
            self.add(f"_np.add(_E, {cost!r}, out=_E, where=_m)")

    # ------------------------------------------------------------------ #
    # ALU
    # ------------------------------------------------------------------ #
    def _read64(self, reg: int) -> str:
        return self.reg(reg)

    def _read32(self, reg: int) -> str:
        return f"({self.reg(reg)} & {_U32})"

    def emit_alu(self, insn: Instruction, pc: int) -> bool:
        """Emit one ALU op; returns False when the block must truncate."""
        kind = insn.alu_op
        is64 = insn.is_alu64
        dst = insn.dst
        mask32 = "" if is64 else f" & {_U32}"
        width = 64 if is64 else 32

        if kind == AluOp.END:
            swap = insn.src_operand == SrcOperand.X
            if swap and insn.imm not in (8, 16, 32, 64):
                # Data-dependent OverflowError in byteswap: scalar replay
                # reproduces the exact (possibly propagating) behaviour.
                self.check_init(dst)
                self.retire_all()
                return False
            self.check_init(dst)
            if dst == 10:
                self.retire_all()
                return False
            if swap:
                self.add(f"_t = _vbswap({self.reg(dst)}, {insn.imm})")
            else:
                keep = (1 << insn.imm) - 1
                self.add(f"_t = {self.reg(dst)} & {keep & _U64}")
            self.add(f"_np.copyto({self.reg(dst)}, _t, where=_m)")
            self.mark_written(dst)
            return True

        if kind == AluOp.NEG:
            if dst == 10:
                self.retire_all()
                return False
            self.check_init(dst)
            read = self._read64(dst) if is64 else self._read32(dst)
            self.add(f"_t = (0 - {read}){mask32}")
            self.add(f"_np.copyto({self.reg(dst)}, _t, where=_m)")
            self.mark_written(dst)
            return True

        uses_reg = insn.uses_reg_source
        src = insn.src

        if kind == AluOp.MOV:
            if uses_reg:
                self.check_init(src)
            if dst == 10:
                self.retire_all()
                return False
            if uses_reg:
                self.add(f"_np.copyto({self.reg(dst)}, "
                         f"{self.reg(src)}{mask32}, where=_m)")
            else:
                value = (insn.imm & _U64) & (_U64 if is64 else _U32)
                self.add(f"_np.copyto({self.reg(dst)}, _np.uint64({value}), "
                         f"where=_m)")
            self.mark_written(dst)
            return True

        if dst == 10:
            if uses_reg:
                self.check_init(src)
            self.check_init(dst)
            self.retire_all()
            return False

        # Binary op; the decoded engine checks/reads src before dst.
        if uses_reg:
            self.check_init(src)
            self.add(f"_b = {self._read64(src) if is64 else self._read32(src)}")
            b = "_b"
            b_const = None
        else:
            b_const = (insn.imm & _U64) & (_U64 if is64 else _U32)
            b = f"_np.uint64({b_const})"
        self.check_init(dst)
        self.add(f"_a = {self._read64(dst) if is64 else self._read32(dst)}")

        shift_mask = width - 1
        if kind == AluOp.ADD:
            self.add(f"_t = (_a + {b}){mask32}")
        elif kind == AluOp.SUB:
            self.add(f"_t = (_a - {b}){mask32}")
        elif kind == AluOp.MUL:
            self.add(f"_t = (_a * {b}){mask32}")
        elif kind == AluOp.DIV:
            if b_const is not None:
                if b_const == 0:
                    self.add("_t = _np.zeros_like(_a)")
                else:
                    self.add(f"_t = (_a // _np.uint64({b_const})){mask32}")
            else:
                self.add("_z = _b == 0")
                self.add("_d = _np.where(_z, _np.uint64(1), _b)")
                self.add(f"_t = _np.where(_z, _np.uint64(0), "
                         f"_a // _d){mask32}")
        elif kind == AluOp.MOD:
            if b_const is not None:
                if b_const == 0:
                    self.add("_t = _a")
                else:
                    self.add(f"_t = (_a % _np.uint64({b_const})){mask32}")
            else:
                self.add("_z = _b == 0")
                self.add("_d = _np.where(_z, _np.uint64(1), _b)")
                self.add(f"_t = _np.where(_z, _a, _a % _d){mask32}")
        elif kind == AluOp.OR:
            self.add(f"_t = _a | {b}")
        elif kind == AluOp.AND:
            self.add(f"_t = _a & {b}")
        elif kind == AluOp.XOR:
            self.add(f"_t = _a ^ {b}")
        elif kind in (AluOp.LSH, AluOp.RSH, AluOp.ARSH):
            if b_const is not None:
                amount = f"_np.uint64({b_const & shift_mask})"
            else:
                self.add(f"_s = _b & _np.uint64({shift_mask})")
                amount = "_s"
            if kind == AluOp.LSH:
                self.add(f"_t = (_a << {amount}){mask32}")
            elif kind == AluOp.RSH:
                self.add(f"_t = (_a >> {amount})")
            else:  # ARSH: arithmetic shift on the sign-extended value
                if is64:
                    self.add("_sa = _a.astype(_np.int64)")
                else:
                    self.add(f"_sa = ((_a.astype(_np.int64) ^ {1 << 31}) "
                             f"- {1 << 31})")
                self.add(f"_t = (_sa >> {amount}.astype(_np.int64))"
                         f".astype(_np.uint64)"
                         f"{' & ' + str(_U32) if not is64 else ''}")
        else:  # pragma: no cover - exhaustive over AluOp
            raise ValueError(f"unsupported ALU op {kind!r}")
        self.add(f"_np.copyto({self.reg(dst)}, _t, where=_m)")
        self.mark_written(dst)
        return True

    # ------------------------------------------------------------------ #
    # Conditional jumps
    # ------------------------------------------------------------------ #
    def emit_condition(self, insn: Instruction) -> None:
        """Emit operand loads; leaves the taken mask in ``_c``."""
        jop = insn.jmp_op
        is64 = not insn.is_jump32
        width = 64 if is64 else 32
        dst = insn.dst

        self.check_init(dst)
        self.add(f"_a = {self._read64(dst) if is64 else self._read32(dst)}")
        if insn.uses_reg_source:
            src = insn.src
            self.check_init(src)
            self.add(f"_b = {self._read64(src) if is64 else self._read32(src)}")
            b = "_b"
            b_const = None
        else:
            b_const = (insn.imm & _U64) & (_U64 if is64 else _U32)
            b = f"_np.uint64({b_const})"

        unsigned = {JmpOp.JEQ: "==", JmpOp.JNE: "!=", JmpOp.JGT: ">",
                    JmpOp.JGE: ">=", JmpOp.JLT: "<", JmpOp.JLE: "<="}
        signed = {JmpOp.JSGT: ">", JmpOp.JSGE: ">=",
                  JmpOp.JSLT: "<", JmpOp.JSLE: "<="}
        if jop in unsigned:
            self.add(f"_c = _a {unsigned[jop]} {b}")
        elif jop == JmpOp.JSET:
            self.add(f"_c = (_a & {b}) != 0")
        elif jop in signed:
            if is64:
                self.add("_sa = _a.astype(_np.int64)")
            else:
                self.add(f"_sa = ((_a.astype(_np.int64) ^ {1 << 31}) "
                         f"- {1 << 31})")
            if b_const is not None:
                self.add(f"_c = _sa {signed[jop]} "
                         f"{to_signed(b_const, width)}")
            else:
                if is64:
                    self.add("_sb = _b.astype(_np.int64)")
                else:
                    self.add(f"_sb = ((_b.astype(_np.int64) ^ {1 << 31}) "
                             f"- {1 << 31})")
                self.add(f"_c = _sa {signed[jop]} _sb")
        else:  # pragma: no cover - exhaustive over JmpOp
            raise ValueError(f"unsupported jump op {jop!r}")

    # ------------------------------------------------------------------ #
    # Memory
    # ------------------------------------------------------------------ #
    def emit_load(self, insn: Instruction, pc: int, rebase: tuple) -> bool:
        src, dst, off, width = insn.src, insn.dst, insn.off, insn.access_bytes
        if src == 10:
            k = STACK_SIZE + off
            if not 0 <= k <= STACK_SIZE - width:
                self.retire_all()  # constant-offset fault for every lane
                return False
            if dst == 10:
                self.retire_all()
                return False
            self.add(f"_m = B.stack_load_k(_m, {k}, {width}, {dst})")
            self.guard_live()
            self.live.add(dst)
            return True
        self.check_init(src)
        if dst == 10:
            self.retire_all()  # ReadOnlyRegisterWrite (or an access fault)
            return False
        self.add(f"_ad = {self.reg(src)} + _np.uint64({off & _U64})")
        name = self.bind(f"_rb_{pc}", tuple(sorted(rebase)))
        self.add(f"_m = B.load(_m, _ad, {width}, {dst}, {name})")
        self.guard_live()
        self.live.add(dst)
        return True

    def emit_store(self, insn: Instruction, pc: int) -> bool:
        dst, src, off, width = insn.dst, insn.src, insn.off, insn.access_bytes
        if insn.is_xadd or insn.is_store_reg:
            kind = "xadd" if insn.is_xadd else "reg"
        else:
            kind = "imm"
        if dst == 10:
            k = STACK_SIZE + off
            if not 0 <= k <= STACK_SIZE - width:
                self.retire_all()
                return False
            if kind != "imm":
                self.check_init(src)
                self.regs_used.add(src)
            self.add(f"_m = B.stack_store_k(_m, {k}, {width}, {kind!r}, "
                     f"{src}, {insn.imm})")
            self.guard_live()
            return True
        self.check_init(dst)
        self.add(f"_ad = {self.reg(dst)} + _np.uint64({off & _U64})")
        self.add(f"_m = B.store(_m, _ad, {width}, {kind!r}, {src}, "
                 f"{insn.imm})")
        self.guard_live()
        return True

    # ------------------------------------------------------------------ #
    # Helper calls: vectorized where the semantics allow, scalar rest
    # ------------------------------------------------------------------ #
    def emit_call(self, insn: Instruction, pc: int) -> bool:
        spec = None
        try:
            spec = helper_spec(insn.imm)
        except KeyError:
            pass
        body = _HELPER_BODIES.get(spec.helper_id) if spec is not None \
            else None
        if body is None:
            self.retire_all()  # UnsupportedInstruction for every lane
            return False
        helper_id = spec.helper_id
        if helper_id == HelperId.MAP_LOOKUP_ELEM:
            self.add("_m = B.vec_map_lookup(_m)")
        elif helper_id == HelperId.REDIRECT_MAP:
            self.add("_m = B.vec_redirect_map(_m)")
        elif helper_id == HelperId.XDP_ADJUST_HEAD:
            self.add("_m = B.vec_adjust(_m, True)")
        elif helper_id == HelperId.XDP_ADJUST_TAIL:
            self.add("_m = B.vec_adjust(_m, False)")
        elif helper_id == HelperId.GET_PRANDOM_U32:
            self.add("_m = B.vec_prandom(_m)")
        elif helper_id in _VEC_RESULT_ATTR:
            self.add(f"_m = B.vec_helper_result(_m, "
                     f"B.{_VEC_RESULT_ATTR[helper_id]})")
        elif helper_id in _VEC_RESULT_CONST:
            self.add(f"_m = B.vec_helper_result(_m, "
                     f"_np.uint64({_VEC_RESULT_CONST[helper_id]}))")
        else:  # fib_lookup, map update/delete: per-lane scalar bodies
            name = self.bind(f"_hb_{pc}", body)
            self.add(f"_m = B.call_helper(_m, {pc}, {name})")
        self.guard_live()
        self.live.add(0)
        self.live -= _HELPER_CLOBBER
        return True


def compile_block(instructions, start: int, end: int, strict: bool,
                  costs, rebase_for_width: Callable[[int], tuple],
                  live_in: frozenset) -> Tuple[Callable, int]:
    """Compile one basic block into a lockstep handler.

    Returns ``(handler, block_length)``; the handler signature is
    ``handler(B, mask) -> ((next_pc, mask), ...)`` where an empty tuple
    means every lane exited or retired inside the block.
    """
    emitter = _VecEmitter(strict, live_in)
    # Fall-through default: lanes continue at the next leader.  When the
    # block ends at the last instruction without an exit, the runner finds
    # no handler at ``end`` and retires the lanes — sequential execution
    # faults there, and the scalar replay recovers the exact fault.
    edges = f"(({end}, _m),)"
    for pc in range(start, end):
        insn = instructions[pc]
        if costs is not None:
            emitter.emit_cost(costs[pc])
        # Mirror compile_instruction's classification order exactly.
        if insn.is_nop:
            continue
        if insn.is_exit:
            emitter.check_init(0)
            emitter.add(f"B.add_steps(_m, {end - start})")
            emitter.add(f"B.exit_lanes(_m, {emitter.reg(0)})")
            emitter.add("return ()")
            emitter.truncated = True
            break
        if insn.is_unconditional_jump:
            edges = f"(({pc + 1 + insn.off}, _m),)"
            break
        if insn.is_conditional_jump:
            emitter.emit_condition(insn)
            emitter.add(f"B.add_steps(_m, {end - start})")
            emitter.add("_t = _m & _c")
            emitter.add("_f = _m ^ _t")
            emitter.add(f"return (({pc + 1 + insn.off}, _t), ({pc + 1}, _f))")
            emitter.truncated = True
            break
        if insn.is_call:
            if not emitter.emit_call(insn, pc):
                break
            continue
        if insn.is_lddw:
            if insn.dst == 10:
                emitter.retire_all()
                break
            value = (MAP_PTR_BASE + insn.imm if insn.src == 1
                     else (insn.imm64 or insn.imm)) & _U64
            emitter.add(f"_np.copyto({emitter.reg(insn.dst)}, "
                        f"_np.uint64({value}), where=_m)")
            emitter.mark_written(insn.dst)
            continue
        if insn.is_alu:
            if not emitter.emit_alu(insn, pc):
                break
            continue
        if insn.is_load:
            if not emitter.emit_load(insn, pc,
                                     rebase_for_width(insn.access_bytes)):
                break
            continue
        if insn.is_store or insn.is_xadd:
            if not emitter.emit_store(insn, pc):
                break
            continue
        emitter.retire_all()  # unknown encoding: raises for every lane
        break
    if not emitter.truncated:
        emitter.add(f"B.add_steps(_m, {end - start})")
        emitter.add(f"return {edges}")

    defaults = "".join(f", {name}=_deps[{index}]"
                       for index, (name, _) in enumerate(emitter.deps))
    hoists = ["    _np = B.np", "    _E = B.E"]
    hoists += [f"    _r{index} = B.R[{index}]"
               for index in sorted(emitter.regs_used)]
    hoists += [f"    _i{index} = B.I[{index}]"
               for index in sorted(emitter.ini_used)]
    source = "\n".join([f"def _block(B, _m{defaults}):"] + hoists
                       + emitter.lines)
    namespace = {"_deps": [value for _, value in emitter.deps]}
    scope = dict(_BATCH_GLOBALS)
    exec(compile(source, f"<lockstep block {start}:{end}>", "exec"),
         scope, namespace)
    return namespace["_block"], end - start


# --------------------------------------------------------------------------- #
# Lockstep programs
# --------------------------------------------------------------------------- #
@dataclasses.dataclass
class BatchProgram:
    """A program compiled to lockstep block handlers, keyed by leader pc."""

    handlers: Dict[int, Tuple[Callable, int]]
    num_insns: int


# --------------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------------- #
class BatchedEngine(FusedEngine):
    """The lockstep tier: SoA batch replay on top of the fused engine.

    ``run`` is the inherited fused scalar path; :meth:`run_batch` switches
    to lockstep execution for batches of at least ``batch_min_lanes`` tests
    (and silently stays on the fused path for small batches, programs the
    CFG builder rejects, or hosts without numpy).  Outputs — including the
    truncated prefixes produced by the ``stop_on_first_fault`` /
    ``expected`` / ``expected_observables`` early exits — are bit-identical
    to sequential execution: lanes the vector tier cannot finish exactly
    are re-run through the scalar path one by one.
    """

    kind = "batch"

    def __init__(self, step_limit: int = DEFAULT_STEP_LIMIT,
                 opcode_cost_fn=None,
                 strict_uninitialized: bool = True,
                 decode_cache_size: int = 512,
                 promote_after: Optional[int] = None,
                 batch_min_lanes: int = DEFAULT_MIN_LANES):
        super().__init__(step_limit=step_limit,
                         opcode_cost_fn=opcode_cost_fn,
                         strict_uninitialized=strict_uninitialized,
                         decode_cache_size=decode_cache_size,
                         promote_after=promote_after)
        self.batch_min_lanes = batch_min_lanes
        self._batch_programs: "OrderedDict[tuple, Optional[BatchProgram]]" = \
            OrderedDict()
        self._batch_blocks: Dict[tuple, Tuple[Callable, int]] = {}
        self._suites: "OrderedDict[tuple, BatchSuite]" = OrderedDict()
        self.lockstep_batches = 0
        self.lockstep_lanes = 0
        self.lanes_retired = 0
        self.vector_bailouts = 0

    def __getstate__(self):
        state = super().__getstate__()
        state["batch_min_lanes"] = self.batch_min_lanes
        return state

    # ------------------------------------------------------------------ #
    def run_batch(self, program: BpfProgram, tests: Sequence[ProgramInput],
                  stop_on_first_fault: bool = False,
                  expected: Optional[Sequence[ProgramOutput]] = None,
                  expected_observables: Optional[Sequence[tuple]] = None,
                  ) -> List[ProgramOutput]:
        if _np is None or len(tests) < self.batch_min_lanes:
            return super().run_batch(
                program, tests, stop_on_first_fault=stop_on_first_fault,
                expected=expected,
                expected_observables=expected_observables)
        compiled = self._lockstep_decode(program)
        if compiled is None:  # CfgError: the fused tier handles it whole
            return super().run_batch(
                program, tests, stop_on_first_fault=stop_on_first_fault,
                expected=expected,
                expected_observables=expected_observables)
        suite = self._suite_for(program, tests)
        suite.rewind()
        self.lockstep_batches += 1
        self.lockstep_lanes += suite.lanes
        with _np.errstate(all="ignore"):
            self._run_lockstep(compiled, suite)
        return self._assemble(program, tests, suite, stop_on_first_fault,
                              expected, expected_observables)

    # ------------------------------------------------------------------ #
    # Lockstep compilation (separate caches from the fused tier)
    # ------------------------------------------------------------------ #
    def _lockstep_decode(self, program: BpfProgram) -> Optional[BatchProgram]:
        key = program.content_key()
        cached = self._batch_programs.get(key)
        if cached is not None or key in self._batch_programs:
            self._batch_programs.move_to_end(key)
            return cached
        try:
            cfg = build_cfg(program.instructions)
        except CfgError:
            compiled: Optional[BatchProgram] = None
        else:
            compiled = self._compile_lockstep(program, cfg)
        self._batch_programs[key] = compiled
        if len(self._batch_programs) > self._decoder.cache_size:
            self._batch_programs.popitem(last=False)
        return compiled

    def _compile_lockstep(self, program: BpfProgram, cfg) -> BatchProgram:
        instructions = cfg.instructions
        cost_fn = self.opcode_cost_fn
        costs = ([cost_fn(insn) for insn in instructions]
                 if cost_fn is not None else None)
        info = self._decoder._info_for(program.hook)

        def rebase_for_width(width: int) -> tuple:
            return tuple(sorted(info.offsets_for_width(width)))

        live_sets = _must_init_sets(cfg)
        handlers: Dict[int, Tuple[Callable, int]] = {}
        memo = self._batch_blocks
        for block in cfg.blocks:
            live_in = live_sets[block.start]
            block_key = (
                block.start, info.key, self.strict_uninitialized, live_in,
                tuple(costs[block.start:block.end]) if costs is not None
                else None,
                tuple((insn.opcode, insn.dst, insn.src, insn.off,
                       insn.imm, insn.imm64)
                      for insn in instructions[block.start:block.end]))
            entry = memo.get(block_key)
            if entry is None:
                entry = compile_block(
                    instructions, block.start, block.end,
                    self.strict_uninitialized, costs, rebase_for_width,
                    live_in)
                if len(memo) < _MAX_BLOCK_MEMO:
                    memo[block_key] = entry
            handlers[block.start] = entry
        return BatchProgram(handlers=handlers, num_insns=len(instructions))

    # ------------------------------------------------------------------ #
    # Suites
    # ------------------------------------------------------------------ #
    def _suite_for(self, program: BpfProgram,
                   tests: Sequence[ProgramInput]) -> BatchSuite:
        machine = self._machine_for(program)
        images = machine.reset_images(tests)
        key = (id(machine), tuple(id(image) for image in images))
        suite = self._suites.get(key)
        if suite is not None:
            self._suites.move_to_end(key)
            return suite
        suite = BatchSuite(program.hook, program.maps, images,
                           self.strict_uninitialized, self.step_limit)
        suite.np = _np
        self._suites[key] = suite
        if len(self._suites) > _MAX_SUITES:
            self._suites.popitem(last=False)
        return suite

    # ------------------------------------------------------------------ #
    # The warp-style runner
    # ------------------------------------------------------------------ #
    def _run_lockstep(self, compiled: BatchProgram, suite: BatchSuite) -> None:
        limit = self.step_limit
        handlers = compiled.handlers
        steps = suite.S
        pending: Dict[int, object] = {0: suite.mask_all()}
        while pending:
            pc = min(pending)
            mask = pending.pop(pc)
            if not mask.any():
                continue
            entry = handlers.get(pc)
            if entry is None:
                # Fallthrough past the last instruction (or a pc the CFG
                # did not mark as a leader): sequential execution faults
                # here, so the scalar replay recovers the exact behaviour.
                suite.force_retire(mask)
                continue
            handler, length = entry
            near = mask & (steps > limit - length)
            if near.any():
                # Too close to the step budget for a whole-block step
                # account; these lanes replay scalar with the legacy
                # per-instruction limit check.
                suite.force_retire(near)
                mask = mask & ~near
                if not mask.any():
                    continue
            try:
                edges = handler(suite, mask)
            except Exception:
                # Defensive: a vectorization gap must never change
                # behaviour — the affected lanes fall back to scalar.
                self.vector_bailouts += 1
                suite.force_retire(mask)
                continue
            for next_pc, next_mask in edges:
                if not next_mask.any():
                    continue
                merged = pending.get(next_pc)
                pending[next_pc] = next_mask if merged is None \
                    else merged | next_mask

    # ------------------------------------------------------------------ #
    # Output assembly: sequential truncation contracts, scalar retirement
    # ------------------------------------------------------------------ #
    def _assemble(self, program, tests, suite, stop_on_first_fault,
                  expected, expected_observables) -> List[ProgramOutput]:
        outputs: List[ProgramOutput] = []
        with_costs = self.opcode_cost_fn is not None
        suite.finish()
        retired = suite.retired.tolist()
        for index in range(suite.lanes):
            if retired[index]:
                # Scalar re-execution through the inherited fused path:
                # per-lane fault text, steps and estimated_ns are exact by
                # construction (and non-BpfFault exceptions propagate at
                # the same test index as sequential execution).
                self.lanes_retired += 1
                output = self.run(program, tests[index])
            else:
                self.runs += 1
                output = suite.lane_output(index, with_costs)
            outputs.append(output)
            if stop_on_first_fault and output.fault is not None:
                break
            if expected is not None and \
                    output.observable() != expected[index].observable():
                break
            if expected_observables is not None and \
                    output.observable() != expected_observables[index]:
                break
        return outputs

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        summary = super().stats()
        summary.update({
            "lockstep_batches": self.lockstep_batches,
            "lockstep_lanes": self.lockstep_lanes,
            "lanes_retired": self.lanes_retired,
            "vector_bailouts": self.vector_bailouts,
        })
        return summary
