"""Decode-once compilation of BPF programs into micro-op closures.

The legacy :class:`repro.interpreter.Interpreter` re-probes an instruction's
opcode properties (``is_nop`` / ``is_exit`` / ``is_alu`` / ...) on every
executed step; each probe constructs enum objects, so interpretation cost is
dominated by dispatch rather than by the instruction's actual semantics.
This module resolves that dispatch exactly once, at *decode* time: every
instruction is compiled into a micro-op — a closure ``(machine, pc) ->
next_pc`` with its operands, masks, jump deltas and helper bodies already
bound — and a program becomes a flat tuple of micro-ops indexed by pc.

Two levels of caching keep decoding off the synthesis hot path:

* a per-instruction memo keyed on the instruction's field tuple, so when an
  MCMC proposal mutates a small window of a program, the unchanged
  instructions outside the window are never re-decoded (their micro-ops are
  position-independent: jump targets are relative deltas applied to the pc
  the runner passes in);
* an LRU cache of whole decoded programs keyed on
  :meth:`~repro.bpf.program.BpfProgram.content_key`, so the accept/reject
  ping-pong between a chain's current program and its proposals never decodes
  the same program twice.

Semantics are shared with the legacy interpreter through
:mod:`repro.semantics` (``alu_op_concrete`` / ``jump_taken_concrete`` /
``byteswap``) and the same fault types and messages, so the two engines are
bit-identical — ``tests/test_engine.py`` enforces this differentially.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

from ..bpf.helpers import HelperId, XDP_REDIRECT, helper_spec
from ..bpf.hooks import CtxFieldKind
from ..bpf.instruction import Instruction
from ..bpf.opcodes import AluOp, SrcOperand, STACK_SIZE
from ..bpf.program import BpfProgram
from ..bpf.regions import (
    CTX_BASE,
    PACKET_BASE,
    STACK_BASE,
    MemRegion,
    region_for_address,
)
from ..interpreter.errors import (
    InvalidHelperArgument,
    NullPointerDereference,
    OutOfBoundsAccess,
    ReadOnlyRegisterWrite,
    UninitializedRead,
    UnsupportedInstruction,
)
from ..interpreter.state import MAP_PTR_BASE
from ..semantics import alu_op_concrete, byteswap, jump_taken_concrete

__all__ = ["MicroOp", "DecodedProgram", "ProgramDecoder", "compile_instruction"]

_U64 = (1 << 64) - 1

#: A compiled instruction: executes one step against a machine state and
#: returns the next pc, or ``None`` when the program exits (the runner then
#: reads ``machine.exit_value``).
MicroOp = Callable[[object, int], Optional[int]]

#: Upper bound on the per-instruction memo: far above what any search run
#: produces (operand pools are small), present only as a leak backstop.
_MAX_INSN_MEMO = 1 << 16


# --------------------------------------------------------------------------- #
# Memory access (mirrors Interpreter._resolve and friends exactly)
# --------------------------------------------------------------------------- #
def resolve_address(machine, address: int, width: int, pc: int,
                    write: bool = True):
    """Route a flat address to ``(buffer, offset, region)`` with bounds checks.

    ``write`` is forwarded to :meth:`MapState.value_buffer` as the dirty
    marker; read paths pass ``False`` so read-only maps stay pristine for
    the dirty-aware snapshot/reset-image fast paths.
    """
    if address == 0:
        raise NullPointerDereference("NULL pointer dereference", pc)
    region = region_for_address(address)
    if region is MemRegion.STACK:
        offset = address - STACK_BASE
        if not 0 <= offset <= STACK_SIZE - width:
            raise OutOfBoundsAccess(
                f"stack access at offset {offset - STACK_SIZE} width {width}", pc)
        return machine.stack, offset, region
    if region is MemRegion.PACKET:
        offset = address - PACKET_BASE
        if not machine.packet_start <= offset <= machine.packet_end - width:
            raise OutOfBoundsAccess(
                f"packet access at {offset - machine.packet_start} width {width} "
                f"(packet length {machine.packet_length})", pc)
        return machine.packet_buffer, offset, region
    if region is MemRegion.CTX:
        offset = address - CTX_BASE
        if not 0 <= offset <= machine.hook.ctx_size - width:
            raise OutOfBoundsAccess(f"ctx access at {offset} width {width}", pc)
        return machine.ctx, offset, region
    if region is MemRegion.MAP_VALUE:
        for map_state in machine.maps.values():
            access = map_state.value_access(address, write)
            if access is not None:
                buffer, offset = access
                if offset + width > map_state.definition.value_size:
                    raise OutOfBoundsAccess(
                        f"map value access at {offset} width {width}", pc)
                return buffer, offset, region
        raise OutOfBoundsAccess(f"map value address {address:#x} not live", pc)
    raise NullPointerDereference(
        f"access through non-pointer value {address:#x}", pc)


def _read_reg(machine, reg: int, pc: int, strict: bool) -> int:
    if strict and not machine.reg_initialized[reg]:
        raise UninitializedRead(f"read of uninitialized r{reg}", pc)
    return machine.regs[reg] & _U64


def _read_mem_bytes(machine, address: int, width: int, pc: int) -> bytes:
    # Stack fast path: helper key/value arguments almost always live on the
    # stack, and an in-bounds stack read can neither fault nor need routing
    # (negative/foreign offsets fall through to the full resolver).
    offset = address - STACK_BASE
    if 0 <= offset <= STACK_SIZE - width:
        return bytes(machine.stack[offset:offset + width])
    buffer, offset, _ = resolve_address(machine, address, width, pc, False)
    return bytes(buffer[offset:offset + width])


def _write_mem_bytes(machine, address: int, data: bytes, pc: int) -> None:
    buffer, offset, region = resolve_address(machine, address, len(data), pc)
    buffer[offset:offset + len(data)] = data
    if region is MemRegion.STACK:
        machine.stack_initialized[offset:offset + len(data)] = b"\x01" * len(data)
    elif region is MemRegion.PACKET:
        # Invalidates the fused runner's image-cached packet output.
        machine.packet_dirty = True


def _map_from_reg(machine, reg: int, pc: int, strict: bool):
    value = _read_reg(machine, reg, pc, strict)
    state = machine.maps.get(value - MAP_PTR_BASE)
    if state is None:
        raise InvalidHelperArgument(
            f"r{reg} does not hold a valid map reference", pc)
    return state


# --------------------------------------------------------------------------- #
# Helper bodies (one function per helper id, mirroring Interpreter._call_helper)
# --------------------------------------------------------------------------- #
def _helper_map_lookup(machine, pc, strict):
    map_state = _map_from_reg(machine, 1, pc, strict)
    key = _read_mem_bytes(machine, _read_reg(machine, 2, pc, strict),
                          map_state.definition.key_size, pc)
    return map_state.lookup(key)


def _helper_map_update(machine, pc, strict):
    map_state = _map_from_reg(machine, 1, pc, strict)
    key = _read_mem_bytes(machine, _read_reg(machine, 2, pc, strict),
                          map_state.definition.key_size, pc)
    value = _read_mem_bytes(machine, _read_reg(machine, 3, pc, strict),
                            map_state.definition.value_size, pc)
    return map_state.update(key, value) & _U64


def _helper_map_delete(machine, pc, strict):
    map_state = _map_from_reg(machine, 1, pc, strict)
    key = _read_mem_bytes(machine, _read_reg(machine, 2, pc, strict),
                          map_state.definition.key_size, pc)
    return map_state.delete(key) & _U64


def _helper_adjust_head(machine, pc, strict):
    delta = _read_reg(machine, 2, pc, strict)
    if delta >= 1 << 63:
        delta -= 1 << 64
    new_start = machine.packet_start + delta
    if not 0 <= new_start <= machine.packet_end:
        return (-1) & _U64
    machine.packet_start = new_start
    machine.refresh_ctx_packet_pointers()
    return 0


def _helper_adjust_tail(machine, pc, strict):
    delta = _read_reg(machine, 2, pc, strict)
    if delta >= 1 << 63:
        delta -= 1 << 64
    new_end = machine.packet_end + delta
    if not machine.packet_start <= new_end <= len(machine.packet_buffer):
        return (-1) & _U64
    machine.packet_end = new_end
    machine.refresh_ctx_packet_pointers()
    return 0


def _helper_redirect_map(machine, pc, strict):
    map_state = _map_from_reg(machine, 1, pc, strict)
    index = _read_reg(machine, 2, pc, strict)
    flags = _read_reg(machine, 3, pc, strict)
    in_range = index < map_state.definition.max_entries
    return XDP_REDIRECT if in_range else (flags & 0xFFFFFFFF)


def _helper_fib_lookup(machine, pc, strict):
    # Deterministic FIB stand-in: next-hop MACs derived from the destination
    # address bytes, identical to the legacy interpreter's model.
    params_addr = _read_reg(machine, 2, pc, strict)
    params = bytearray(_read_mem_bytes(machine, params_addr, 64, pc))
    ipv4_dst = int.from_bytes(params[24:28], "little")
    smac = ((ipv4_dst * 2654435761) & 0xFFFFFFFFFFFF).to_bytes(6, "little")
    dmac = ((ipv4_dst * 40503) & 0xFFFFFFFFFFFF).to_bytes(6, "little")
    params[52:58] = smac
    params[58:64] = dmac
    _write_mem_bytes(machine, params_addr, bytes(params), pc)
    return 0


_HELPER_BODIES = {
    HelperId.MAP_LOOKUP_ELEM: _helper_map_lookup,
    HelperId.MAP_UPDATE_ELEM: _helper_map_update,
    HelperId.MAP_DELETE_ELEM: _helper_map_delete,
    HelperId.KTIME_GET_NS:
        lambda machine, pc, strict: machine.test.time_ns & _U64,
    HelperId.KTIME_GET_BOOT_NS:
        lambda machine, pc, strict: (machine.test.time_ns + 1) & _U64,
    HelperId.GET_PRANDOM_U32:
        lambda machine, pc, strict: machine.next_random(),
    HelperId.GET_SMP_PROCESSOR_ID:
        lambda machine, pc, strict: machine.test.cpu_id & 0xFFFFFFFF,
    HelperId.XDP_ADJUST_HEAD: _helper_adjust_head,
    HelperId.XDP_ADJUST_TAIL: _helper_adjust_tail,
    HelperId.XDP_ADJUST_META: lambda machine, pc, strict: 0,
    HelperId.REDIRECT_MAP: _helper_redirect_map,
    HelperId.REDIRECT: lambda machine, pc, strict: XDP_REDIRECT,
    HelperId.PERF_EVENT_OUTPUT: lambda machine, pc, strict: 0,
    HelperId.TAIL_CALL: lambda machine, pc, strict: 0,
    HelperId.FIB_LOOKUP: _helper_fib_lookup,
}


# --------------------------------------------------------------------------- #
# Per-instruction compilation
# --------------------------------------------------------------------------- #
def _op_nop(machine, pc):
    return pc + 1


def _compile_exit(strict: bool) -> MicroOp:
    def op(machine, pc):
        if strict and not machine.reg_initialized[0]:
            raise UninitializedRead("read of uninitialized r0", pc)
        machine.exit_value = machine.regs[0] & _U64
        return None
    return op


def _compile_ja(insn: Instruction) -> MicroOp:
    delta = 1 + insn.off

    def op(machine, pc):
        return pc + delta
    return op


def _compile_cond_jump(insn: Instruction, strict: bool) -> MicroOp:
    jop = insn.jmp_op
    dst = insn.dst
    delta = 1 + insn.off
    is64 = not insn.is_jump32
    if insn.uses_reg_source:
        src = insn.src

        def op(machine, pc):
            initialized = machine.reg_initialized
            if strict and not initialized[dst]:
                raise UninitializedRead(f"read of uninitialized r{dst}", pc)
            a = machine.regs[dst] & _U64
            if strict and not initialized[src]:
                raise UninitializedRead(f"read of uninitialized r{src}", pc)
            b = machine.regs[src] & _U64
            return pc + delta if jump_taken_concrete(jop, a, b, is64) else pc + 1
    else:
        imm = insn.imm & _U64

        def op(machine, pc):
            if strict and not machine.reg_initialized[dst]:
                raise UninitializedRead(f"read of uninitialized r{dst}", pc)
            a = machine.regs[dst] & _U64
            return pc + delta if jump_taken_concrete(jop, a, imm, is64) else pc + 1
    return op


def _compile_call(insn: Instruction, strict: bool) -> MicroOp:
    imm = insn.imm
    try:
        spec = helper_spec(imm)
    except KeyError:
        def op(machine, pc):
            raise UnsupportedInstruction(f"unknown helper {imm}", pc)
        return op
    body = _HELPER_BODIES.get(spec.helper_id)
    name = spec.name
    if body is None:  # pragma: no cover - registry and bodies kept in sync
        def op(machine, pc):
            raise UnsupportedInstruction(f"helper {name} not implemented", pc)
        return op

    def op(machine, pc):
        result = body(machine, pc, strict)
        machine.helper_trace.append((name, result))
        machine.regs[0] = result & _U64
        initialized = machine.reg_initialized
        initialized[0] = True
        # r1-r5 are clobbered and become unreadable after the call (§6).
        initialized[1] = initialized[2] = initialized[3] = False
        initialized[4] = initialized[5] = False
        return pc + 1
    return op


def _raise_r10_write(reads: Tuple[int, ...], strict: bool) -> MicroOp:
    """An instruction that writes r10: perform its register reads (their
    faults take precedence, matching the legacy ordering) then fault."""
    def op(machine, pc):
        if strict:
            initialized = machine.reg_initialized
            for reg in reads:
                if not initialized[reg]:
                    raise UninitializedRead(f"read of uninitialized r{reg}", pc)
        raise ReadOnlyRegisterWrite("write to frame pointer r10", pc)
    return op


def _compile_lddw(insn: Instruction) -> MicroOp:
    if insn.dst == 10:
        return _raise_r10_write((), strict=False)
    dst = insn.dst
    value = (MAP_PTR_BASE + insn.imm if insn.src == 1
             else (insn.imm64 or insn.imm)) & _U64

    def op(machine, pc):
        machine.regs[dst] = value
        machine.reg_initialized[dst] = True
        return pc + 1
    return op


def _compile_alu(insn: Instruction, strict: bool) -> MicroOp:
    kind = insn.alu_op
    is64 = insn.is_alu64
    dst = insn.dst

    if kind == AluOp.END:
        swap = insn.src_operand == SrcOperand.X
        width = insn.imm
        keep_mask = (1 << width) - 1
        to_r10 = dst == 10

        def op(machine, pc):
            if strict and not machine.reg_initialized[dst]:
                raise UninitializedRead(f"read of uninitialized r{dst}", pc)
            value = machine.regs[dst] & _U64
            # The byteswap runs before the r10 write check: its errors (odd
            # widths raise OverflowError) take precedence, as in the legacy
            # interpreter.
            result = byteswap(value, width) if swap else value & keep_mask
            if to_r10:
                raise ReadOnlyRegisterWrite("write to frame pointer r10", pc)
            machine.regs[dst] = result & _U64
            machine.reg_initialized[dst] = True
            return pc + 1
        return op

    if kind == AluOp.NEG:
        if dst == 10:
            return _raise_r10_write((), strict)

        def op(machine, pc):
            if strict and not machine.reg_initialized[dst]:
                raise UninitializedRead(f"read of uninitialized r{dst}", pc)
            value = machine.regs[dst] & _U64
            machine.regs[dst] = alu_op_concrete(AluOp.SUB, 0, value, is64)
            machine.reg_initialized[dst] = True
            return pc + 1
        return op

    uses_reg = insn.uses_reg_source
    src = insn.src

    if kind == AluOp.MOV:
        mov_mask = _U64 if is64 else 0xFFFFFFFF
        if dst == 10:
            return _raise_r10_write((src,) if uses_reg else (), strict)
        if uses_reg:
            def op(machine, pc):
                if strict and not machine.reg_initialized[src]:
                    raise UninitializedRead(f"read of uninitialized r{src}", pc)
                machine.regs[dst] = machine.regs[src] & mov_mask
                machine.reg_initialized[dst] = True
                return pc + 1
        else:
            value = (insn.imm & _U64) & mov_mask

            def op(machine, pc):
                machine.regs[dst] = value
                machine.reg_initialized[dst] = True
                return pc + 1
        return op

    if dst == 10:
        return _raise_r10_write((src, dst) if uses_reg else (dst,), strict)
    if uses_reg:
        def op(machine, pc):
            initialized = machine.reg_initialized
            if strict and not initialized[src]:
                raise UninitializedRead(f"read of uninitialized r{src}", pc)
            b = machine.regs[src] & _U64
            if strict and not initialized[dst]:
                raise UninitializedRead(f"read of uninitialized r{dst}", pc)
            machine.regs[dst] = alu_op_concrete(
                kind, machine.regs[dst] & _U64, b, is64)
            initialized[dst] = True
            return pc + 1
    else:
        imm = insn.imm & _U64

        def op(machine, pc):
            if strict and not machine.reg_initialized[dst]:
                raise UninitializedRead(f"read of uninitialized r{dst}", pc)
            machine.regs[dst] = alu_op_concrete(
                kind, machine.regs[dst] & _U64, imm, is64)
            machine.reg_initialized[dst] = True
            return pc + 1
    return op


def _compile_load(insn: Instruction, strict: bool) -> MicroOp:
    src = insn.src
    dst = insn.dst
    off = insn.off
    width = insn.access_bytes
    to_r10 = dst == 10

    def op(machine, pc):
        initialized = machine.reg_initialized
        if strict and not initialized[src]:
            raise UninitializedRead(f"read of uninitialized r{src}", pc)
        address = (machine.regs[src] + off) & _U64
        buffer, offset, region = resolve_address(machine, address, width, pc,
                                                  False)
        if (region is MemRegion.STACK and strict
                and 0 in machine.stack_initialized[offset:offset + width]):
            raise UninitializedRead(
                f"read of uninitialized stack bytes at {offset - STACK_SIZE}", pc)
        value = int.from_bytes(buffer[offset:offset + width], "little")
        # Loads through ctx packet-pointer fields yield flat packet addresses
        # (the kernel rewrites such 32-bit ctx accesses into pointer loads).
        if region is MemRegion.CTX:
            field = machine.hook.field_by_offset(address - CTX_BASE)
            if field is not None and field.size == width:
                field_kind = field.kind
                if (field_kind is CtxFieldKind.PACKET_PTR
                        or field_kind is CtxFieldKind.PACKET_END_PTR):
                    value = PACKET_BASE + value
        if to_r10:
            raise ReadOnlyRegisterWrite("write to frame pointer r10", pc)
        machine.regs[dst] = value & _U64
        initialized[dst] = True
        return pc + 1
    return op


def _compile_store(insn: Instruction, strict: bool) -> MicroOp:
    dst = insn.dst
    src = insn.src
    off = insn.off
    width = insn.access_bytes
    value_mask = (1 << (8 * width)) - 1
    stack_ones = b"\x01" * width

    if insn.is_xadd:
        def compute(machine, buffer, offset, pc):
            if strict and not machine.reg_initialized[src]:
                raise UninitializedRead(f"read of uninitialized r{src}", pc)
            addend = machine.regs[src] & _U64
            current = int.from_bytes(buffer[offset:offset + width], "little")
            return (current + addend) & value_mask
    elif insn.is_store_reg:
        def compute(machine, buffer, offset, pc):
            if strict and not machine.reg_initialized[src]:
                raise UninitializedRead(f"read of uninitialized r{src}", pc)
            return (machine.regs[src] & _U64) & value_mask
    else:
        imm_value = insn.imm & value_mask

        def compute(machine, buffer, offset, pc):
            return imm_value

    def op(machine, pc):
        if strict and not machine.reg_initialized[dst]:
            raise UninitializedRead(f"read of uninitialized r{dst}", pc)
        address = (machine.regs[dst] + off) & _U64
        buffer, offset, region = resolve_address(machine, address, width, pc)
        if region is MemRegion.CTX:
            raise OutOfBoundsAccess("stores to ctx memory are not permitted", pc)
        value = compute(machine, buffer, offset, pc)
        buffer[offset:offset + width] = value.to_bytes(width, "little")
        if region is MemRegion.STACK:
            machine.stack_initialized[offset:offset + width] = stack_ones
        return pc + 1
    return op


def compile_instruction(insn: Instruction, strict: bool = True) -> MicroOp:
    """Compile one instruction into a position-independent micro-op.

    The classification order mirrors the legacy interpreter's dispatch chain
    exactly, so ambiguous encodings (``ja +0`` is both a NOP and an
    unconditional jump) resolve the same way in both engines.
    """
    if insn.is_nop:
        return _op_nop
    if insn.is_exit:
        return _compile_exit(strict)
    if insn.is_unconditional_jump:
        return _compile_ja(insn)
    if insn.is_conditional_jump:
        return _compile_cond_jump(insn, strict)
    if insn.is_call:
        return _compile_call(insn, strict)
    if insn.is_lddw:
        return _compile_lddw(insn)
    if insn.is_alu:
        return _compile_alu(insn, strict)
    if insn.is_load:
        return _compile_load(insn, strict)
    if insn.is_store or insn.is_xadd:
        return _compile_store(insn, strict)
    opcode = insn.opcode

    def op(machine, pc):
        raise UnsupportedInstruction(f"opcode {opcode:#x}", pc)
    return op


# --------------------------------------------------------------------------- #
# Decoded programs and the decode cache
# --------------------------------------------------------------------------- #
@dataclasses.dataclass
class DecodedProgram:
    """A program compiled to micro-ops, plus its per-step cost table.

    Deliberately does *not* reference the source :class:`BpfProgram`: the
    LRU decode cache holds hundreds of these, and retaining the programs
    would pin every cached proposal's instruction list in memory.
    """

    ops: Tuple[MicroOp, ...]
    #: Pre-computed ``opcode_cost_fn`` value per instruction (None when the
    #: owning engine runs without a cost model).
    costs: Optional[Tuple[float, ...]]

    def __len__(self) -> int:
        return len(self.ops)


class ProgramDecoder:
    """Compiles programs to micro-ops behind two layers of caching.

    One decoder belongs to one engine: its configuration (strict mode, cost
    function) is baked into the compiled closures, so cached micro-ops are
    only ever reused under the settings they were compiled for.
    """

    def __init__(self, strict_uninitialized: bool = True,
                 opcode_cost_fn=None, cache_size: int = 512):
        if cache_size <= 0:
            raise ValueError("cache_size must be positive")
        self.strict_uninitialized = strict_uninitialized
        self.opcode_cost_fn = opcode_cost_fn
        self.cache_size = cache_size
        self._programs: "OrderedDict[tuple, DecodedProgram]" = OrderedDict()
        self._micro_ops: Dict[tuple, MicroOp] = {}
        self._insn_costs: Dict[tuple, float] = {}
        self.program_hits = 0
        self.program_misses = 0
        self.instructions_compiled = 0
        self.instructions_reused = 0

    # ------------------------------------------------------------------ #
    def decode(self, program: BpfProgram) -> DecodedProgram:
        key = program.content_key()
        cached = self._programs.get(key)
        if cached is not None:
            self.program_hits += 1
            self._programs.move_to_end(key)
            return cached
        self.program_misses += 1

        strict = self.strict_uninitialized
        cost_fn = self.opcode_cost_fn
        memo = self._micro_ops
        cost_memo = self._insn_costs
        ops = []
        costs = [] if cost_fn is not None else None
        for insn in program.instructions:
            insn_key = (insn.opcode, insn.dst, insn.src, insn.off,
                        insn.imm, insn.imm64)
            op = memo.get(insn_key)
            if op is None:
                op = compile_instruction(insn, strict)
                if len(memo) < _MAX_INSN_MEMO:
                    memo[insn_key] = op
                self.instructions_compiled += 1
            else:
                self.instructions_reused += 1
            ops.append(op)
            if costs is not None:
                cost = cost_memo.get(insn_key)
                if cost is None:
                    cost = cost_fn(insn)
                    if len(cost_memo) < _MAX_INSN_MEMO:
                        cost_memo[insn_key] = cost
                costs.append(cost)

        decoded = DecodedProgram(
            ops=tuple(ops),
            costs=tuple(costs) if costs is not None else None)
        self._programs[key] = decoded
        if len(self._programs) > self.cache_size:
            self._programs.popitem(last=False)
        return decoded

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, float]:
        probes = self.program_hits + self.program_misses
        return {
            "program_hits": self.program_hits,
            "program_misses": self.program_misses,
            "program_hit_rate": self.program_hits / probes if probes else 0.0,
            "programs_cached": len(self._programs),
            "instructions_compiled": self.instructions_compiled,
            "instructions_reused": self.instructions_reused,
        }
