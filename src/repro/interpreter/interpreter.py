"""The BPF bytecode interpreter.

A faithful executable model of the instruction subset used in this
reproduction, mirroring the role of K2's internal interpreter (paper §7): it
runs candidate programs on test cases so that incorrect or unsafe candidates
can be pruned cheaply before any solver query is made.

The interpreter shares its instruction semantics with the symbolic
formalization in :mod:`repro.equivalence.symbolic` through the
:mod:`repro.semantics` tables, mirroring how K2 auto-generates both the
interpreter and the verification-condition generator from one specification.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence

from ..bpf.helpers import HelperId, XDP_REDIRECT, helper_spec
from ..bpf.instruction import Instruction
from ..bpf.opcodes import AluOp, SrcOperand, STACK_SIZE
from ..bpf.program import BpfProgram
from ..bpf.regions import (
    CTX_BASE, PACKET_BASE, STACK_BASE, MemRegion, region_for_address,
)
from ..semantics import alu_op_concrete, byteswap, jump_taken_concrete
from .errors import (
    BpfFault,
    InstructionLimitExceeded,
    InvalidHelperArgument,
    InvalidJumpTarget,
    NullPointerDereference,
    OutOfBoundsAccess,
    ReadOnlyRegisterWrite,
    UninitializedRead,
    UnsupportedInstruction,
)
from .state import MAP_PTR_BASE, MachineState, ProgramInput, ProgramOutput

__all__ = ["Interpreter", "run_program", "DEFAULT_STEP_LIMIT"]

_U64 = (1 << 64) - 1
DEFAULT_STEP_LIMIT = 65536
_DEFAULT_STEP_LIMIT = DEFAULT_STEP_LIMIT


class Interpreter:
    """Executes BPF programs on concrete test inputs.

    This is the reference ("legacy") execution engine: it re-dispatches on the
    instruction's opcode properties at every step.  The decode-once engine in
    :mod:`repro.engine` is the hot-loop implementation; this class remains the
    behavioural oracle (differential tests compare the two bit-for-bit) and
    the ``--engine legacy`` ablation target, and it exposes the same
    ``run`` / ``run_batch`` surface so the two are interchangeable.

    Args:
        step_limit: dynamic instruction budget (protects against looping
            candidates produced by the synthesizer).
        opcode_cost_fn: optional callable mapping an instruction to its
            estimated execution cost in nanoseconds; when provided the
            interpreter accumulates the total in the output, which is how
            the performance rig derives per-packet service times.
        strict_uninitialized: when True, reading an uninitialized register or
            stack byte is a fault (matching the kernel checker's semantics);
            when False such reads return zero (useful for differential
            testing of the symbolic encoder).
    """

    kind = "legacy"

    def __init__(self, step_limit: int = _DEFAULT_STEP_LIMIT,
                 opcode_cost_fn: Optional[Callable[[Instruction], float]] = None,
                 strict_uninitialized: bool = True):
        self.step_limit = step_limit
        self.opcode_cost_fn = opcode_cost_fn
        self.strict_uninitialized = strict_uninitialized

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, program: BpfProgram, test: ProgramInput) -> ProgramOutput:
        """Execute ``program`` on ``test`` and return its observable output.

        Faults never propagate as Python exceptions: they are reported in
        ``ProgramOutput.fault`` so callers can treat them as "incorrect /
        unsafe behaviour observed on this input".
        """
        state = MachineState(program.hook, program.maps, test)
        output = ProgramOutput()
        try:
            output.return_value = self._execute(program, state, output)
        except BpfFault as fault:
            output.fault = f"{type(fault).__name__}: {fault}"
            output.return_value = None
        output.packet = state.packet_bytes()
        output.maps = state.snapshot_maps()
        return output

    def run_batch(self, program: BpfProgram, tests: Sequence[ProgramInput],
                  stop_on_first_fault: bool = False,
                  expected: Optional[Sequence[ProgramOutput]] = None,
                  expected_observables: Optional[Sequence[tuple]] = None,
                  ) -> List[ProgramOutput]:
        """Execute ``program`` on every test, in order.

        Mirrors :meth:`repro.engine.ExecutionEngine.run_batch` so the legacy
        interpreter can stand in for the decoded engine in ablations.  With
        ``stop_on_first_fault`` the batch ends after the first faulting
        output (which is included in the returned list); with ``expected``
        it ends after the first output whose ``observable()`` diverges from
        the aligned reference output (``expected_observables`` is the same
        exit against precomputed ``observable()`` tuples).
        """
        outputs: List[ProgramOutput] = []
        for index, test in enumerate(tests):
            output = self.run(program, test)
            outputs.append(output)
            if stop_on_first_fault and output.fault is not None:
                break
            if expected is not None and \
                    output.observable() != expected[index].observable():
                break
            if expected_observables is not None and \
                    output.observable() != expected_observables[index]:
                break
        return outputs

    # ------------------------------------------------------------------ #
    # Execution loop
    # ------------------------------------------------------------------ #
    def _execute(self, program: BpfProgram, state: MachineState,
                 output: ProgramOutput) -> int:
        instructions = program.instructions
        pc = 0
        steps = 0
        while True:
            if steps >= self.step_limit:
                raise InstructionLimitExceeded(
                    f"exceeded {self.step_limit} steps", pc)
            if not 0 <= pc < len(instructions):
                raise InvalidJumpTarget(f"pc {pc} outside program", pc)
            insn = instructions[pc]
            steps += 1
            output.steps = steps
            if self.opcode_cost_fn is not None:
                output.estimated_ns += self.opcode_cost_fn(insn)

            if insn.is_nop:
                pc += 1
                continue
            if insn.is_exit:
                return self._read_reg(state, 0, pc)
            if insn.is_unconditional_jump:
                pc = pc + 1 + insn.off
                continue
            if insn.is_conditional_jump:
                pc = self._jump(state, insn, pc)
                continue
            if insn.is_call:
                self._call_helper(state, insn, pc)
                pc += 1
                continue
            if insn.is_lddw:
                self._write_reg(state, insn.dst,
                                MAP_PTR_BASE + insn.imm if insn.src == 1
                                else (insn.imm64 or insn.imm), pc)
                pc += 1
                continue
            if insn.is_alu:
                self._alu(state, insn, pc)
                pc += 1
                continue
            if insn.is_load:
                self._load(state, insn, pc)
                pc += 1
                continue
            if insn.is_store or insn.is_xadd:
                self._store(state, insn, pc)
                pc += 1
                continue
            raise UnsupportedInstruction(f"opcode {insn.opcode:#x}", pc)

    # ------------------------------------------------------------------ #
    # Register access
    # ------------------------------------------------------------------ #
    def _read_reg(self, state: MachineState, reg: int, pc: int) -> int:
        if self.strict_uninitialized and not state.reg_initialized[reg]:
            raise UninitializedRead(f"read of uninitialized r{reg}", pc)
        return state.regs[reg] & _U64

    def _write_reg(self, state: MachineState, reg: int, value: int, pc: int) -> None:
        if reg == 10:
            raise ReadOnlyRegisterWrite("write to frame pointer r10", pc)
        state.regs[reg] = value & _U64
        state.reg_initialized[reg] = True

    # ------------------------------------------------------------------ #
    # ALU
    # ------------------------------------------------------------------ #
    def _alu(self, state: MachineState, insn: Instruction, pc: int) -> None:
        op = insn.alu_op
        is64 = insn.is_alu64
        if op == AluOp.END:
            value = self._read_reg(state, insn.dst, pc)
            swap = insn.src_operand == SrcOperand.X  # be = swap on LE hosts
            width = insn.imm
            result = _byteswap(value, width) if swap else value & ((1 << width) - 1)
            self._write_reg(state, insn.dst, result, pc)
            return
        if op == AluOp.NEG:
            value = self._read_reg(state, insn.dst, pc)
            result = alu_op_concrete(AluOp.SUB, 0, value, is64)
            self._write_reg(state, insn.dst, result, pc)
            return
        if insn.uses_reg_source:
            src = self._read_reg(state, insn.src, pc)
        else:
            src = insn.imm & _U64
        if op == AluOp.MOV:
            result = src & (_U64 if is64 else 0xFFFFFFFF)
            self._write_reg(state, insn.dst, result, pc)
            return
        dst = self._read_reg(state, insn.dst, pc)
        result = alu_op_concrete(op, dst, src, is64)
        self._write_reg(state, insn.dst, result, pc)

    # ------------------------------------------------------------------ #
    # Jumps
    # ------------------------------------------------------------------ #
    def _jump(self, state: MachineState, insn: Instruction, pc: int) -> int:
        dst = self._read_reg(state, insn.dst, pc)
        if insn.uses_reg_source:
            src = self._read_reg(state, insn.src, pc)
        else:
            src = insn.imm & _U64
        taken = jump_taken_concrete(insn.jmp_op, dst, src,
                                    is64=not insn.is_jump32)
        if taken:
            return pc + 1 + insn.off
        return pc + 1

    # ------------------------------------------------------------------ #
    # Memory access
    # ------------------------------------------------------------------ #
    def _resolve(self, state: MachineState, address: int, width: int,
                 pc: int, for_write: bool) -> tuple[bytearray, int, MemRegion]:
        """Route a flat address to (buffer, offset) with bounds checking."""
        if address == 0:
            raise NullPointerDereference("NULL pointer dereference", pc)
        region = region_for_address(address)
        if region == MemRegion.STACK:
            offset = address - STACK_BASE
            if not 0 <= offset <= STACK_SIZE - width:
                raise OutOfBoundsAccess(
                    f"stack access at offset {offset - STACK_SIZE} width {width}", pc)
            return state.stack, offset, region
        if region == MemRegion.PACKET:
            offset = address - PACKET_BASE
            if not state.packet_start <= offset <= state.packet_end - width:
                raise OutOfBoundsAccess(
                    f"packet access at {offset - state.packet_start} width {width} "
                    f"(packet length {state.packet_length})", pc)
            return state.packet_buffer, offset, region
        if region == MemRegion.CTX:
            offset = address - CTX_BASE
            if not 0 <= offset <= state.hook.ctx_size - width:
                raise OutOfBoundsAccess(
                    f"ctx access at {offset} width {width}", pc)
            return state.ctx, offset, region
        if region == MemRegion.MAP_VALUE:
            for map_state in state.maps.values():
                if map_state.owns_address(address):
                    buffer, offset = map_state.value_buffer(address)
                    if offset + width > map_state.definition.value_size:
                        raise OutOfBoundsAccess(
                            f"map value access at {offset} width {width}", pc)
                    return buffer, offset, region
            raise OutOfBoundsAccess(f"map value address {address:#x} not live", pc)
        raise NullPointerDereference(
            f"access through non-pointer value {address:#x}", pc)

    def _load(self, state: MachineState, insn: Instruction, pc: int) -> None:
        address = (self._read_reg(state, insn.src, pc) + insn.off) & _U64
        width = insn.access_bytes
        buffer, offset, region = self._resolve(state, address, width, pc, False)
        if (region == MemRegion.STACK and self.strict_uninitialized
                and any(not state.stack_initialized[offset + i] for i in range(width))):
            raise UninitializedRead(
                f"read of uninitialized stack bytes at {offset - STACK_SIZE}", pc)
        value = int.from_bytes(buffer[offset:offset + width], "little")
        # Loads through ctx packet-pointer fields yield flat packet addresses
        # (the kernel rewrites such 32-bit ctx accesses into pointer loads).
        if region == MemRegion.CTX:
            field = state.hook.field_by_offset(address - CTX_BASE)
            if field is not None and field.size == width:
                from ..bpf.hooks import CtxFieldKind

                if field.kind in (CtxFieldKind.PACKET_PTR, CtxFieldKind.PACKET_END_PTR):
                    value = PACKET_BASE + value
        self._write_reg(state, insn.dst, value, pc)

    def _store(self, state: MachineState, insn: Instruction, pc: int) -> None:
        address = (self._read_reg(state, insn.dst, pc) + insn.off) & _U64
        width = insn.access_bytes
        buffer, offset, region = self._resolve(state, address, width, pc, True)
        if region == MemRegion.CTX:
            raise OutOfBoundsAccess("stores to ctx memory are not permitted", pc)
        if insn.is_xadd:
            src = self._read_reg(state, insn.src, pc)
            current = int.from_bytes(buffer[offset:offset + width], "little")
            value = (current + src) & ((1 << (8 * width)) - 1)
        elif insn.is_store_reg:
            value = self._read_reg(state, insn.src, pc) & ((1 << (8 * width)) - 1)
        else:
            value = insn.imm & ((1 << (8 * width)) - 1)
        buffer[offset:offset + width] = value.to_bytes(width, "little")
        if region == MemRegion.STACK:
            for i in range(width):
                state.stack_initialized[offset + i] = 1

    # ------------------------------------------------------------------ #
    # Helper calls
    # ------------------------------------------------------------------ #
    def _read_mem_bytes(self, state: MachineState, address: int, width: int,
                        pc: int) -> bytes:
        buffer, offset, _ = self._resolve(state, address, width, pc, False)
        return bytes(buffer[offset:offset + width])

    def _write_mem_bytes(self, state: MachineState, address: int, data: bytes,
                         pc: int) -> None:
        buffer, offset, region = self._resolve(state, address, len(data), pc, True)
        buffer[offset:offset + len(data)] = data
        if region == MemRegion.STACK:
            for i in range(len(data)):
                state.stack_initialized[offset + i] = 1

    def _map_from_reg(self, state: MachineState, reg: int, pc: int):
        value = self._read_reg(state, reg, pc)
        fd = value - MAP_PTR_BASE
        if fd not in state.maps:
            raise InvalidHelperArgument(
                f"r{reg} does not hold a valid map reference", pc)
        return state.maps[fd]

    def _call_helper(self, state: MachineState, insn: Instruction, pc: int) -> None:
        try:
            spec = helper_spec(insn.imm)
        except KeyError as exc:
            raise UnsupportedInstruction(f"unknown helper {insn.imm}", pc) from exc
        helper_id = spec.helper_id
        result = 0

        if helper_id == HelperId.MAP_LOOKUP_ELEM:
            map_state = self._map_from_reg(state, 1, pc)
            key = self._read_mem_bytes(
                state, self._read_reg(state, 2, pc),
                map_state.definition.key_size, pc)
            result = map_state.lookup(key)
        elif helper_id == HelperId.MAP_UPDATE_ELEM:
            map_state = self._map_from_reg(state, 1, pc)
            key = self._read_mem_bytes(
                state, self._read_reg(state, 2, pc),
                map_state.definition.key_size, pc)
            value = self._read_mem_bytes(
                state, self._read_reg(state, 3, pc),
                map_state.definition.value_size, pc)
            result = map_state.update(key, value) & _U64
        elif helper_id == HelperId.MAP_DELETE_ELEM:
            map_state = self._map_from_reg(state, 1, pc)
            key = self._read_mem_bytes(
                state, self._read_reg(state, 2, pc),
                map_state.definition.key_size, pc)
            result = map_state.delete(key) & _U64
        elif helper_id == HelperId.KTIME_GET_NS:
            result = state.test.time_ns & _U64
        elif helper_id == HelperId.KTIME_GET_BOOT_NS:
            result = (state.test.time_ns + 1) & _U64
        elif helper_id == HelperId.GET_PRANDOM_U32:
            result = state.next_random()
        elif helper_id == HelperId.GET_SMP_PROCESSOR_ID:
            result = state.test.cpu_id & 0xFFFFFFFF
        elif helper_id == HelperId.XDP_ADJUST_HEAD:
            result = self._adjust_head(state, pc)
        elif helper_id == HelperId.XDP_ADJUST_TAIL:
            result = self._adjust_tail(state, pc)
        elif helper_id == HelperId.XDP_ADJUST_META:
            result = 0
        elif helper_id == HelperId.REDIRECT_MAP:
            map_state = self._map_from_reg(state, 1, pc)
            index = self._read_reg(state, 2, pc)
            flags = self._read_reg(state, 3, pc)
            in_range = index < map_state.definition.max_entries
            result = XDP_REDIRECT if in_range else (flags & 0xFFFFFFFF)
        elif helper_id == HelperId.REDIRECT:
            result = XDP_REDIRECT
        elif helper_id == HelperId.PERF_EVENT_OUTPUT:
            result = 0
        elif helper_id == HelperId.TAIL_CALL:
            result = 0
        elif helper_id == HelperId.FIB_LOOKUP:
            result = self._fib_lookup(state, pc)
        else:  # pragma: no cover - registry and dispatch kept in sync
            raise UnsupportedInstruction(f"helper {spec.name} not implemented", pc)

        state.helper_trace.append((spec.name, result))
        self._write_reg(state, 0, result, pc)
        # r1-r5 are clobbered and become unreadable after the call (§6).
        for reg in range(1, 6):
            state.reg_initialized[reg] = False

    def _adjust_head(self, state: MachineState, pc: int) -> int:
        delta = self._read_reg(state, 2, pc)
        if delta >= 1 << 63:
            delta -= 1 << 64
        new_start = state.packet_start + delta
        if not 0 <= new_start <= state.packet_end:
            return (-1) & _U64
        state.packet_start = new_start
        state.refresh_ctx_packet_pointers()
        return 0

    def _adjust_tail(self, state: MachineState, pc: int) -> int:
        delta = self._read_reg(state, 2, pc)
        if delta >= 1 << 63:
            delta -= 1 << 64
        new_end = state.packet_end + delta
        if not state.packet_start <= new_end <= len(state.packet_buffer):
            return (-1) & _U64
        state.packet_end = new_end
        state.refresh_ctx_packet_pointers()
        return 0

    def _fib_lookup(self, state: MachineState, pc: int) -> int:
        """Deterministic stand-in for the kernel FIB: derive the next-hop MAC
        addresses from the destination address bytes in the params struct."""
        params_addr = self._read_reg(state, 2, pc)
        params = bytearray(self._read_mem_bytes(state, params_addr, 64, pc))
        ipv4_dst = int.from_bytes(params[24:28], "little")
        smac = ((ipv4_dst * 2654435761) & 0xFFFFFFFFFFFF).to_bytes(6, "little")
        dmac = ((ipv4_dst * 40503) & 0xFFFFFFFFFFFF).to_bytes(6, "little")
        params[52:58] = smac
        params[58:64] = dmac
        self._write_mem_bytes(state, params_addr, bytes(params), pc)
        return 0


#: Shared with the symbolic layer through :mod:`repro.semantics`; kept under
#: the old private name for callers inside this package.
_byteswap = byteswap

#: Per-thread default engine reused by :func:`run_program`, so convenience
#: calls in loops do not rebuild an engine (and re-decode) per invocation.
#: Thread-local because an engine's machine state is scratch shared across
#: its runs — the pre-engine, fresh-interpreter-per-call behaviour was
#: thread-safe and this keeps the convenience API that way.
_thread_engines = threading.local()


def run_program(program: BpfProgram, test: ProgramInput,
                **kwargs) -> ProgramOutput:
    """Convenience wrapper: execute ``program`` on ``test`` once.

    Calls with default settings share one long-lived decode-once engine per
    thread (its decode cache makes repeated calls on the same program
    cheap); explicit keyword arguments fall back to a one-shot legacy
    interpreter with exactly those settings.
    """
    if kwargs:
        return Interpreter(**kwargs).run(program, test)
    engine = getattr(_thread_engines, "engine", None)
    if engine is None:
        from ..engine import ExecutionEngine

        engine = _thread_engines.engine = ExecutionEngine()
    return engine.run(program, test)
