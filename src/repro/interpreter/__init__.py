"""Executable model of BPF: machine state, test cases and the interpreter."""

from .errors import (
    BpfFault, OutOfBoundsAccess, UninitializedRead, NullPointerDereference,
    InvalidJumpTarget, InstructionLimitExceeded, InvalidHelperArgument,
    UnsupportedInstruction, ReadOnlyRegisterWrite,
)
from .state import (
    MachineState, ProgramInput, ProgramOutput, MAP_PTR_BASE, PACKET_HEADROOM,
)
from .interpreter import Interpreter, run_program

__all__ = [name for name in dir() if not name.startswith("_")]
