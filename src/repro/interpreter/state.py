"""Machine state, program inputs and program outputs for the interpreter.

A :class:`ProgramInput` is a *test case*: the packet bytes, the scalar context
fields, the initial map contents and the values returned by non-deterministic
helpers (timestamps, random numbers, CPU id).  Executing a program on a test
case yields a :class:`ProgramOutput` containing the return value, the final
packet bytes and the final map contents — the observable behaviour the
equivalence checker and the error cost function compare (paper §3.2, §4).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..bpf.hooks import CtxFieldKind, Hook
from ..bpf.maps import MapEnvironment, MapState
from ..bpf.opcodes import STACK_SIZE
from ..bpf.regions import CTX_BASE, STACK_BASE

__all__ = ["PACKET_HEADROOM", "MAP_PTR_BASE", "ProgramInput", "ProgramOutput",
           "MachineState"]

#: Headroom available in front of the packet for bpf_xdp_adjust_head.
PACKET_HEADROOM = 256

#: Flat-address base used to represent map object references at run time.
MAP_PTR_BASE = 0x5000_0000_0000


@dataclasses.dataclass
class ProgramInput:
    """One test case: everything the program execution depends on."""

    packet: bytes = b""
    ctx: Dict[str, int] = dataclasses.field(default_factory=dict)
    map_contents: Dict[int, Dict[bytes, bytes]] = dataclasses.field(default_factory=dict)
    random_values: List[int] = dataclasses.field(default_factory=lambda: [0x12345678])
    time_ns: int = 1_000_000_000
    cpu_id: int = 0

    def freeze_key(self) -> tuple:
        """Hashable representation (used to deduplicate counterexamples)."""
        return (
            self.packet,
            tuple(sorted(self.ctx.items())),
            tuple(sorted((fd, tuple(sorted(entries.items())))
                         for fd, entries in self.map_contents.items())),
            tuple(self.random_values),
            self.time_ns,
            self.cpu_id,
        )


@dataclasses.dataclass(slots=True)
class ProgramOutput:
    """Observable result of one execution."""

    return_value: Optional[int] = None
    packet: bytes = b""
    maps: Dict[int, Dict[bytes, bytes]] = dataclasses.field(default_factory=dict)
    fault: Optional[str] = None
    steps: int = 0
    #: Estimated execution latency in nanoseconds (per-opcode cost model).
    estimated_ns: float = 0.0

    @property
    def faulted(self) -> bool:
        return self.fault is not None

    def observable(self) -> tuple:
        """The tuple compared for input/output equivalence."""
        return (
            self.return_value,
            self.packet,
            tuple(sorted((fd, tuple(sorted(entries.items())))
                         for fd, entries in self.maps.items())),
            self.fault is not None,
        )


class MachineState:
    """Concrete machine state during one execution."""

    def __init__(self, hook: Hook, maps: MapEnvironment, test: ProgramInput):
        self.hook = hook
        self.test = test
        self.regs: List[int] = [0] * 11
        self.reg_initialized = [False] * 11
        self.stack = bytearray(STACK_SIZE)
        self.stack_initialized = bytearray(STACK_SIZE)

        # Packet buffer: headroom + data, so adjust_head can grow the packet.
        self.packet_buffer = bytearray(PACKET_HEADROOM) + bytearray(test.packet)
        self.packet_start = PACKET_HEADROOM
        self.packet_end = PACKET_HEADROOM + len(test.packet)

        # Context structure.
        self.ctx = bytearray(hook.ctx_size)
        self._populate_ctx()

        # Maps.
        self.maps: Dict[int, MapState] = maps.instantiate()
        for fd, entries in test.map_contents.items():
            if fd not in self.maps:
                continue
            for key, value in entries.items():
                self.maps[fd].update(key, value)

        # Non-determinism sources.
        self._random_cursor = 0
        self.helper_trace: List[tuple] = []

        # Register ABI: r1 = ctx pointer, r10 = frame pointer.
        self.regs[1] = CTX_BASE
        self.reg_initialized[1] = True
        self.regs[10] = STACK_BASE + STACK_SIZE
        self.reg_initialized[10] = True

    # ------------------------------------------------------------------ #
    # Context handling
    # ------------------------------------------------------------------ #
    def _populate_ctx(self) -> None:
        # Packet-pointer fields hold the *offset* into the packet buffer; the
        # interpreter rebases them onto PACKET_BASE when they are loaded,
        # mirroring the kernel's ctx-access rewriting of 32-bit fields into
        # full pointers.
        for field in self.hook.fields:
            if field.kind == CtxFieldKind.PACKET_PTR:
                value = self.packet_start
            elif field.kind == CtxFieldKind.PACKET_END_PTR:
                value = self.packet_end
            else:
                value = self.test.ctx.get(field.name, 0)
            self.ctx[field.offset:field.offset + field.size] = \
                (value & ((1 << (8 * field.size)) - 1)).to_bytes(field.size, "little")

    def refresh_ctx_packet_pointers(self) -> None:
        """Re-derive ctx packet pointers after adjust_head / adjust_tail."""
        for field in self.hook.fields:
            if field.kind == CtxFieldKind.PACKET_PTR:
                value = self.packet_start
            elif field.kind == CtxFieldKind.PACKET_END_PTR:
                value = self.packet_end
            else:
                continue
            self.ctx[field.offset:field.offset + field.size] = \
                (value & ((1 << (8 * field.size)) - 1)).to_bytes(field.size, "little")

    # ------------------------------------------------------------------ #
    # Non-determinism sources
    # ------------------------------------------------------------------ #
    def next_random(self) -> int:
        values = self.test.random_values or [0]
        value = values[self._random_cursor % len(values)]
        self._random_cursor += 1
        return value & 0xFFFFFFFF

    # ------------------------------------------------------------------ #
    # Packet helpers
    # ------------------------------------------------------------------ #
    @property
    def packet_length(self) -> int:
        return self.packet_end - self.packet_start

    def packet_bytes(self) -> bytes:
        return bytes(self.packet_buffer[self.packet_start:self.packet_end])

    # ------------------------------------------------------------------ #
    def snapshot_maps(self) -> Dict[int, Dict[bytes, bytes]]:
        return {fd: state.snapshot() for fd, state in self.maps.items()}
