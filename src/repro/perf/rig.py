"""Packet-processing benchmark rig (substitute for the paper's testbed, §8).

The paper measures throughput (maximum loss-free forwarding rate, MLFFR) and
round-trip latency on a CloudLab testbed: a T-Rex traffic generator drives a
device-under-test whose NIC runs the XDP program.  This module reproduces
that methodology in simulation:

* :class:`TrafficGenerator` produces a pool of representative packets
  (64-byte frames by default, per the paper's methodology),
* :class:`DeviceUnderTest` executes the BPF program on each packet through
  the interpreter and charges it the per-opcode latency model plus a fixed
  per-packet driver/NIC overhead,
* :class:`BenchmarkRig` runs an open-loop single-core queueing simulation
  with a finite RX descriptor ring, sweeping the offered load to find the
  MLFFR (RFC 2544 style) and recording average latency and drop rate at any
  offered load (Tables 2 and 3, Appendix H figures).

Absolute numbers are not comparable to the paper's hardware measurements,
but the *relative* ordering of program variants is preserved because the
service time of a packet is derived from exactly the instruction costs K2
optimizes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..bpf.program import BpfProgram
from ..engine import create_engine
from ..interpreter import ProgramInput
from ..synthesis.testcases import TestCaseGenerator
from .latency_model import DEFAULT_LATENCY_MODEL, OpcodeLatencyModel

__all__ = ["TrafficGenerator", "DeviceUnderTest", "LoadPoint",
           "BenchmarkRig"]

#: Fixed per-packet cost outside the BPF program: driver RX/TX, DMA, XDP
#: dispatch.  Roughly calibrated so a trivial XDP_DROP program lands in the
#: tens-of-Mpps range on one core, as reported for XDP [83].
_PER_PACKET_OVERHEAD_NS = 45.0

#: RX descriptor ring size used by the DUT (packets waiting beyond this are
#: dropped by the NIC, which is what creates the loss knee of the MLFFR).
_RX_RING_SIZE = 512


class TrafficGenerator:
    """Generates the packet pool offered to the device under test."""

    def __init__(self, program: BpfProgram, packet_size: int = 64,
                 pool_size: int = 128, seed: int = 7):
        generator = TestCaseGenerator(program, seed=seed)
        self.pool: List[ProgramInput] = []
        for _ in range(pool_size):
            test = generator.generate_one()
            if program.hook.has_packet:
                packet = bytes(test.packet[:packet_size]).ljust(packet_size, b"\x00")
                test = dataclasses.replace(test, packet=packet)
            self.pool.append(test)

    def __iter__(self):
        return iter(self.pool)

    def __len__(self) -> int:
        return len(self.pool)


class DeviceUnderTest:
    """Executes one BPF program per packet and reports its service time."""

    def __init__(self, program: BpfProgram,
                 latency_model: OpcodeLatencyModel = DEFAULT_LATENCY_MODEL,
                 per_packet_overhead_ns: float = _PER_PACKET_OVERHEAD_NS,
                 engine: str = "decoded"):
        self.program = program
        self.latency_model = latency_model
        self.per_packet_overhead_ns = per_packet_overhead_ns
        # One long-lived engine per DUT: the program is decoded once and the
        # per-opcode cost table folded into the decoded form, then reused
        # for every packet of every load sweep.
        self._engine = create_engine(
            engine, opcode_cost_fn=latency_model.instruction_cost)

    def service_times_ns(self, traffic: Sequence[ProgramInput]) -> List[float]:
        """Per-packet service times (program execution + fixed overhead)."""
        outputs = self._engine.run_batch(self.program, list(traffic))
        return [output.estimated_ns + self.per_packet_overhead_ns
                for output in outputs]

    def mean_service_time_ns(self, traffic: Sequence[ProgramInput]) -> float:
        times = self.service_times_ns(traffic)
        return sum(times) / len(times) if times else self.per_packet_overhead_ns


@dataclasses.dataclass
class LoadPoint:
    """One point of the load sweep (one column of the Appendix H figures)."""

    offered_mpps: float
    throughput_mpps: float
    average_latency_us: float
    drop_rate: float


class BenchmarkRig:
    """MLFFR and latency-vs-load measurements for one program."""

    def __init__(self, program: BpfProgram,
                 latency_model: OpcodeLatencyModel = DEFAULT_LATENCY_MODEL,
                 packet_size: int = 64, pool_size: int = 96,
                 packets_per_trial: int = 20_000, seed: int = 7,
                 rx_ring_size: int = _RX_RING_SIZE,
                 engine: str = "decoded"):
        self.program = program
        self.traffic = TrafficGenerator(program, packet_size=packet_size,
                                        pool_size=pool_size, seed=seed)
        self.dut = DeviceUnderTest(program, latency_model, engine=engine)
        self.packets_per_trial = packets_per_trial
        self.rx_ring_size = rx_ring_size
        self._service_pool = self.dut.service_times_ns(self.traffic.pool)

    # ------------------------------------------------------------------ #
    # Queueing simulation
    # ------------------------------------------------------------------ #
    def run_at_load(self, offered_mpps: float) -> LoadPoint:
        """Open-loop, single-server, finite-queue simulation at one load."""
        if offered_mpps <= 0:
            raise ValueError("offered load must be positive")
        interarrival_ns = 1e3 / offered_mpps     # Mpps -> ns between packets
        pool = self._service_pool
        pool_size = len(pool)

        served = 0
        dropped = 0
        total_latency_ns = 0.0
        server_free_at = 0.0
        # Completion times of packets currently in the system (ring + server).
        in_flight: List[float] = []

        arrival = 0.0
        for index in range(self.packets_per_trial):
            arrival += interarrival_ns
            # Retire completed packets from the ring.
            in_flight = [finish for finish in in_flight if finish > arrival]
            if len(in_flight) >= self.rx_ring_size:
                dropped += 1
                continue
            service = pool[index % pool_size]
            start = max(arrival, server_free_at)
            finish = start + service
            server_free_at = finish
            in_flight.append(finish)
            total_latency_ns += finish - arrival
            served += 1

        throughput = served / (arrival / 1e3) if arrival else 0.0
        average_latency_us = (total_latency_ns / served / 1e3) if served else 0.0
        drop_rate = dropped / self.packets_per_trial
        return LoadPoint(offered_mpps=offered_mpps,
                         throughput_mpps=throughput,
                         average_latency_us=average_latency_us,
                         drop_rate=drop_rate)

    # ------------------------------------------------------------------ #
    def mlffr_mpps(self, loss_threshold: float = 0.001,
                   precision: float = 0.01) -> float:
        """Maximum loss-free forwarding rate (RFC 2544 binary search)."""
        mean_service = sum(self._service_pool) / len(self._service_pool)
        upper = 1e3 / mean_service * 1.5         # beyond saturation
        lower = 0.0
        while upper - lower > precision:
            mid = (upper + lower) / 2
            point = self.run_at_load(mid)
            if point.drop_rate <= loss_threshold:
                lower = mid
            else:
                upper = mid
        return round(lower, 3)

    def load_profile(self, loads: Sequence[float]) -> List[LoadPoint]:
        """Throughput / latency / drop-rate curves (Appendix H figures)."""
        return [self.run_at_load(load) for load in loads]

    # ------------------------------------------------------------------ #
    def standard_latency_loads(self, other: Optional["BenchmarkRig"] = None
                               ) -> Dict[str, float]:
        """The four offered loads of Table 3: low / medium / high / saturating.

        ``other`` is the rig of the competing variant (clang vs. K2); the
        medium and high loads are defined relative to the slower and faster
        of the two, following the paper's methodology.
        """
        own = self.mlffr_mpps()
        peer = other.mlffr_mpps() if other is not None else own
        slow, fast = min(own, peer), max(own, peer)
        return {
            "low": max(slow * 0.6, 0.05),
            "medium": slow,
            "high": fast,
            "saturating": fast * 1.15,
        }
