"""Per-opcode microbenchmark profiling.

The paper builds its latency cost function by "profiling every instruction of
the BPF instruction set by executing each opcode millions of times on a
lightly loaded system" (§3.2).  This module reproduces that methodology
against this repository's execution substrate — the BPF interpreter: for each
opcode category it constructs a straight-line program containing many copies
of the opcode, measures its execution time, subtracts the harness baseline
and divides down to a per-instruction figure.

The absolute numbers describe the Python interpreter, not silicon; what the
cost model needs (and what the optimization relies on) is the *relative*
ordering — ALU ops are cheap, loads and stores cost more, helper calls
dominate — which the profile preserves.  :meth:`ProfileReport.calibrated_model`
turns a profile into an :class:`~repro.perf.latency_model.OpcodeLatencyModel`
whose scale is anchored to a chosen ALU latency, mirroring how the paper
anchors its opcode table to measured hardware timings.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence

from ..bpf import builders
from ..bpf.helpers import HelperId
from ..bpf.hooks import HookType
from ..bpf.instruction import Instruction
from ..bpf.maps import MapDef, MapEnvironment, MapType
from ..bpf.opcodes import MemSize
from ..bpf.program import BpfProgram
from ..engine import create_engine
from ..interpreter import Interpreter, ProgramInput
from .latency_model import OpcodeLatencyModel

__all__ = ["OpcodeProfile", "ProfileReport", "OpcodeProfiler"]

#: The opcode categories the profiler measures, in display order.
PROFILE_CATEGORIES = [
    "alu_simple", "alu_mul", "alu_div", "load", "store", "xadd",
    "branch_not_taken", "helper_get_prandom", "helper_map_lookup",
]


@dataclasses.dataclass(frozen=True)
class OpcodeProfile:
    """Measured per-instruction execution time of one opcode category."""

    category: str
    nanoseconds: float
    samples: int

    def relative_to(self, baseline: "OpcodeProfile") -> float:
        """Cost ratio against another category (normally ``alu_simple``)."""
        if baseline.nanoseconds <= 0:
            return float("inf")
        return self.nanoseconds / baseline.nanoseconds


@dataclasses.dataclass
class ProfileReport:
    """The full profile: one entry per category."""

    profiles: Dict[str, OpcodeProfile]

    def profile(self, category: str) -> OpcodeProfile:
        return self.profiles[category]

    def ratios(self) -> Dict[str, float]:
        """Per-category cost relative to the simple-ALU baseline."""
        baseline = self.profiles["alu_simple"]
        return {category: profile.relative_to(baseline)
                for category, profile in self.profiles.items()}

    def calibrated_model(self, alu_ns: float = 1.0) -> OpcodeLatencyModel:
        """An :class:`OpcodeLatencyModel` anchored at ``alu_ns`` per ALU op.

        The model's built-in relative costs already encode the ALU ≪ memory ≪
        helper ordering; calibration scales the whole table so that a simple
        ALU instruction costs ``alu_ns`` nanoseconds, the same way the
        paper's table is anchored to its hardware measurements.
        """
        return OpcodeLatencyModel(scale=alu_ns / 1.0)

    def format_table(self) -> str:
        """Human-readable profile table (used by the CLI and examples)."""
        lines = [f"{'category':<22}{'ns/insn':>12}{'vs ALU':>10}"]
        ratios = self.ratios()
        for category in PROFILE_CATEGORIES:
            profile = self.profiles.get(category)
            if profile is None:
                continue
            lines.append(f"{category:<22}{profile.nanoseconds:>12.1f}"
                         f"{ratios[category]:>9.1f}x")
        return "\n".join(lines)


class OpcodeProfiler:
    """Measures per-opcode interpreter cost (the paper's §3.2 methodology)."""

    def __init__(self, copies: int = 64, repeats: int = 20,
                 interpreter: Optional[Interpreter] = None,
                 engine=None):
        if copies <= 0 or repeats <= 0:
            raise ValueError("copies and repeats must be positive")
        self.copies = copies
        self.repeats = repeats
        # One long-lived engine for the whole profile run: each category's
        # program is decoded once and timed many times, so the numbers
        # reflect steady-state execution, not decode overhead.
        self.engine = engine if engine is not None \
            else (interpreter or create_engine(step_limit=1_000_000))
        self.interpreter = self.engine

    # ------------------------------------------------------------------ #
    def run(self, categories: Optional[Sequence[str]] = None) -> ProfileReport:
        """Profile the requested categories (default: all of them)."""
        categories = list(categories) if categories else list(PROFILE_CATEGORIES)
        baseline_seconds = self._time_program(*self._program([]))
        profiles = {}
        for category in categories:
            body = self._body_for(category)
            seconds = self._time_program(*self._program(body))
            per_insn_ns = max(
                0.0, (seconds - baseline_seconds) * 1e9 / len(body))
            profiles[category] = OpcodeProfile(
                category=category, nanoseconds=per_insn_ns,
                samples=self.repeats * len(body))
        return ProfileReport(profiles=profiles)

    # ------------------------------------------------------------------ #
    # Workload construction
    # ------------------------------------------------------------------ #
    def _body_for(self, category: str) -> List[Instruction]:
        copies = self.copies
        if category == "alu_simple":
            body = [builders.ADD64_IMM(2, 1) for _ in range(copies)]
        elif category == "alu_mul":
            body = [builders.MUL64_IMM(2, 3) for _ in range(copies)]
        elif category == "alu_div":
            body = [builders.DIV64_IMM(2, 3) for _ in range(copies)]
        elif category == "load":
            body = [builders.LDX_MEM(MemSize.W, 3, 10, -8)
                    for _ in range(copies)]
        elif category == "store":
            body = [builders.STX_MEM(MemSize.W, 10, 2, -8)
                    for _ in range(copies)]
        elif category == "xadd":
            body = [builders.STX_XADD(MemSize.DW, 10, 2, -16)
                    for _ in range(copies)]
        elif category == "branch_not_taken":
            # A never-taken forward branch followed by its fall-through NOP
            # target keeps every proposal loop-free and in-range.
            body = []
            for _ in range(max(1, copies // 2)):
                body.append(builders.JEQ_IMM(2, -1, 0))
        elif category == "helper_get_prandom":
            body = [builders.CALL_HELPER(HelperId.GET_PRANDOM_U32)
                    for _ in range(copies)]
        elif category == "helper_map_lookup":
            body = []
            for _ in range(max(1, copies // 4)):
                body.extend([
                    builders.MOV64_REG(2, 10),
                    builders.ADD64_IMM(2, -4),
                    builders.LD_MAP_FD(1, 1),
                    builders.CALL_HELPER(HelperId.MAP_LOOKUP_ELEM),
                ])
        else:
            raise KeyError(f"unknown profile category {category!r}")
        return body

    def _program(self, body: List[Instruction]):
        maps = MapEnvironment([MapDef(fd=1, name="profile_map",
                                      map_type=MapType.ARRAY, key_size=4,
                                      value_size=8, max_entries=4)])
        prologue = [
            builders.MOV64_IMM(2, 7),
            builders.STX_MEM(MemSize.DW, 10, 2, -8),
            builders.STX_MEM(MemSize.DW, 10, 2, -16),
            builders.MOV64_IMM(1, 0),
            builders.STX_MEM(MemSize.W, 10, 1, -4),
        ]
        epilogue = [builders.MOV64_IMM(0, 0), builders.EXIT_INSN()]
        program = BpfProgram.create(prologue + list(body) + epilogue,
                                    HookType.XDP, maps=maps, name="profile")
        return program, ProgramInput(packet=bytes(64))

    # ------------------------------------------------------------------ #
    def _time_program(self, program: BpfProgram, test: ProgramInput) -> float:
        """Median-of-repeats wall-clock execution time of one program."""
        timings = []
        for _ in range(self.repeats):
            started = time.perf_counter()
            self.engine.run(program, test)
            timings.append(time.perf_counter() - started)
        timings.sort()
        return timings[len(timings) // 2]
