"""Performance models and the packet-processing benchmark rig."""

from .latency_model import (
    OpcodeLatencyModel, DEFAULT_LATENCY_MODEL, estimate_program_latency,
    instruction_cost,
)
from .profiles import OpcodeProfile, OpcodeProfiler, ProfileReport
from .rig import BenchmarkRig, DeviceUnderTest, LoadPoint, TrafficGenerator

__all__ = [name for name in dir() if not name.startswith("_")]
