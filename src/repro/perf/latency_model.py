"""Per-opcode latency model (the paper's ``exec(i)`` profile, §3.2).

K2 cannot run candidate programs in the kernel to measure their latency, so
it profiles every BPF opcode offline and estimates a candidate's latency as
the sum of its opcodes' average execution times.  The reproduction ships a
latency table calibrated to the relative costs of interpreting each opcode
class (ALU ≪ memory ≪ helper calls), which is the property the optimization
actually relies on: the search only ever compares *differences* between the
source and candidate programs.

The same table drives the packet-processing simulator in
:mod:`repro.perf.rig`, so the throughput/latency benchmarks (Tables 2 and 3)
are consistent with the compiler's internal cost function (Table 7).
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..bpf.helpers import HelperId
from ..bpf.instruction import Instruction
from ..bpf.opcodes import AluOp
from ..bpf.program import BpfProgram

__all__ = ["OpcodeLatencyModel", "DEFAULT_LATENCY_MODEL",
           "estimate_program_latency", "instruction_cost"]

#: Baseline per-instruction latencies in nanoseconds.
_ALU_SIMPLE_NS = 1.0        # add/sub/and/or/xor/mov/shift
_ALU_MUL_NS = 3.0
_ALU_DIV_NS = 12.0
_ALU_END_NS = 1.5
_LOAD_NS = 2.0
_STORE_NS = 2.0
_XADD_NS = 6.0
_BRANCH_NS = 1.2
_EXIT_NS = 1.0
_LDDW_NS = 1.0
_NOP_NS = 0.0

#: Helper call costs (kernel function call overhead plus the helper body).
_HELPER_NS: Dict[int, float] = {
    HelperId.MAP_LOOKUP_ELEM: 18.0,
    HelperId.MAP_UPDATE_ELEM: 28.0,
    HelperId.MAP_DELETE_ELEM: 24.0,
    HelperId.KTIME_GET_NS: 12.0,
    HelperId.KTIME_GET_BOOT_NS: 12.0,
    HelperId.GET_PRANDOM_U32: 8.0,
    HelperId.GET_SMP_PROCESSOR_ID: 4.0,
    HelperId.TAIL_CALL: 20.0,
    HelperId.REDIRECT: 15.0,
    HelperId.REDIRECT_MAP: 22.0,
    HelperId.PERF_EVENT_OUTPUT: 60.0,
    HelperId.XDP_ADJUST_HEAD: 14.0,
    HelperId.XDP_ADJUST_TAIL: 14.0,
    HelperId.XDP_ADJUST_META: 12.0,
    HelperId.FIB_LOOKUP: 90.0,
}
_HELPER_DEFAULT_NS = 25.0


class OpcodeLatencyModel:
    """Maps instructions to estimated execution latency in nanoseconds."""

    def __init__(self, scale: float = 1.0,
                 helper_overrides: Dict[int, float] | None = None):
        self.scale = scale
        self.helper_costs = dict(_HELPER_NS)
        if helper_overrides:
            self.helper_costs.update(helper_overrides)

    # ------------------------------------------------------------------ #
    def instruction_cost(self, insn: Instruction) -> float:
        """Estimated latency of a single instruction, in nanoseconds."""
        if insn.is_nop:
            return _NOP_NS
        cost = _ALU_SIMPLE_NS
        if insn.is_lddw:
            cost = _LDDW_NS
        elif insn.is_alu:
            op = insn.alu_op
            if op == AluOp.MUL:
                cost = _ALU_MUL_NS
            elif op in (AluOp.DIV, AluOp.MOD):
                cost = _ALU_DIV_NS
            elif op == AluOp.END:
                cost = _ALU_END_NS
            else:
                cost = _ALU_SIMPLE_NS
        elif insn.is_load:
            cost = _LOAD_NS
        elif insn.is_xadd:
            cost = _XADD_NS
        elif insn.is_store:
            cost = _STORE_NS
        elif insn.is_call:
            cost = self.helper_costs.get(insn.imm, _HELPER_DEFAULT_NS)
        elif insn.is_exit:
            cost = _EXIT_NS
        elif insn.is_jump:
            cost = _BRANCH_NS
        return cost * self.scale

    # ------------------------------------------------------------------ #
    def program_cost(self, program: BpfProgram) -> float:
        """Static latency estimate: the sum over all instructions (§3.2).

        This deliberately ignores control flow (every opcode counted once),
        exactly like the paper's ``perf_lat`` cost, which is "a weak predictor
        of actual latency" but cheap to compute inside the search loop.
        """
        return sum(self.instruction_cost(insn) for insn in program.instructions)

    def path_cost(self, instructions: Iterable[Instruction]) -> float:
        """Latency of one dynamic execution path (used by the simulator)."""
        return sum(self.instruction_cost(insn) for insn in instructions)


DEFAULT_LATENCY_MODEL = OpcodeLatencyModel()


def instruction_cost(insn: Instruction) -> float:
    """Module-level convenience wrapper around the default model."""
    return DEFAULT_LATENCY_MODEL.instruction_cost(insn)


def estimate_program_latency(program: BpfProgram) -> float:
    """Static latency estimate of ``program`` under the default model."""
    return DEFAULT_LATENCY_MODEL.program_cost(program)
