"""Peephole rewrite rules and the rule-based optimizer built from them.

This is the "traditional optimizing compiler" the paper contrasts K2 with.
Each rule matches a short instruction pattern and rewrites it in place (the
replacement has the same length; freed positions become NOPs, exactly like the
synthesizer's candidates, so jump offsets never need adjusting).  The rules
cover the classic BPF peepholes, including the two §2.2 examples whose naive
application produces checker-rejected code:

========================  ===================================================
rule                      checker restriction it can trip over (§2.2)
========================  ===================================================
store-zero strength        storing an immediate through a context
reduction                  (``PTR_TO_CTX``) pointer is rejected
byte-store coalescing      stack stores must be aligned to the access size
multiply-to-shift          —
identity elimination       —
constant folding           —
redundant move removal     —
========================  ===================================================

Every rule runs in one of two modes:

* **naive** (``checker_aware=False``): apply whenever the syntactic pattern
  matches — what a generic rule-based optimizer does, and what produces
  kernel-checker rejections (the phase-ordering problem);
* **checker-aware** (``checker_aware=True``): consult the pointer-provenance
  analysis (:func:`repro.bpf.memtypes.analyze_types`) and skip the rewrite
  when the kernel checker would reject the result.  The skipped application
  is recorded so callers can report the missed optimization.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import List, Optional, Sequence

from ..bpf import builders
from ..bpf.instruction import Instruction, NOP
from ..bpf.liveness import LivenessInfo, compute_liveness, dead_code_eliminate
from ..bpf.memtypes import TypeAnalysis, analyze_types
from ..bpf.opcodes import AluOp, InsnClass, MemSize, SrcOperand
from ..bpf.program import BpfProgram
from ..bpf.regions import MemRegion
from ..bpf.transforms import remove_nops

__all__ = ["RewriteDecision", "RuleApplication", "PeepholeRule",
           "PeepholeResult", "PeepholeOptimizer", "all_rules", "rule_by_name"]

_I32_MIN = -(1 << 31)
_I32_MAX = (1 << 31) - 1
_U64 = (1 << 64) - 1


@dataclasses.dataclass
class RuleContext:
    """Everything a rule may consult when deciding whether to fire."""

    program: BpfProgram
    instructions: List[Instruction]
    types: TypeAnalysis
    liveness: LivenessInfo
    checker_aware: bool


@dataclasses.dataclass(frozen=True)
class RewriteDecision:
    """Outcome of matching one rule at one position."""

    applied: bool
    replacement: Optional[List[Instruction]] = None
    span: int = 1
    blocked_reason: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class RuleApplication:
    """A record of one fired (or checker-blocked) rewrite."""

    rule: str
    index: int
    applied: bool
    note: str = ""


class PeepholeRule(abc.ABC):
    """Base class for peephole rules."""

    name: str = "rule"
    description: str = ""

    @abc.abstractmethod
    def match(self, ctx: RuleContext, index: int) -> Optional[RewriteDecision]:
        """Return a decision if the pattern matches at ``index``, else None."""

    # Convenience helpers shared by several rules ----------------------- #
    @staticmethod
    def _is_mov64_imm(insn: Instruction) -> bool:
        return (insn.is_alu and insn.insn_class == InsnClass.ALU64
                and insn.alu_op == AluOp.MOV and not insn.uses_reg_source)

    @staticmethod
    def _to_signed32(value: int) -> int:
        value &= 0xFFFFFFFF
        return value - (1 << 32) if value >= (1 << 31) else value


# --------------------------------------------------------------------------- #
# Rule implementations
# --------------------------------------------------------------------------- #
class StoreZeroStrengthReduction(PeepholeRule):
    """``mov rY, imm; *(rX+off) = rY``  →  ``*(rX+off) = imm`` (§2.2, ex. 1).

    Valid only when ``rY`` is dead after the store.  The kernel checker
    rejects the rewritten form when ``rX`` points into context memory, which
    is exactly the restriction the checker-aware mode enforces.
    """

    name = "store-zero-strength-reduction"
    description = "fold a register zeroing + register store into an immediate store"

    def match(self, ctx: RuleContext, index: int) -> Optional[RewriteDecision]:
        insns = ctx.instructions
        if index + 1 >= len(insns):
            return None
        mov, store = insns[index], insns[index + 1]
        if not self._is_mov64_imm(mov) or not store.is_store_reg:
            return None
        if store.src != mov.dst:
            return None
        if mov.dst in ctx.liveness.live_out_at(index + 1):
            return None
        if not _I32_MIN <= mov.imm <= _I32_MAX:
            return None

        region, _ = ctx.types.pointer_info(index + 1)
        if region == MemRegion.CTX:
            if ctx.checker_aware:
                return RewriteDecision(
                    applied=False, blocked_reason=(
                        "immediate stores through a PTR_TO_CTX pointer are "
                        "rejected by the kernel checker"))
            # Naive mode applies anyway — the §2.2 phase-ordering failure.
        replacement = [
            NOP,
            builders.ST_MEM(store.mem_size, store.dst, store.off, mov.imm),
        ]
        return RewriteDecision(applied=True, replacement=replacement, span=2)


class CoalesceByteStores(PeepholeRule):
    """Two adjacent 1-byte immediate stores of 0 → one 2-byte store (§2.2, ex. 2).

    The kernel checker requires stack stores to be aligned to the access
    size; coalescing at an odd stack offset is therefore rejected.
    """

    name = "coalesce-byte-stores"
    description = "merge two adjacent byte stores of zero into a halfword store"

    def match(self, ctx: RuleContext, index: int) -> Optional[RewriteDecision]:
        insns = ctx.instructions
        if index + 1 >= len(insns):
            return None
        first, second = insns[index], insns[index + 1]
        for insn in (first, second):
            if not insn.is_store_imm or insn.mem_size != MemSize.B:
                return None
            if insn.imm != 0:
                return None
        if first.dst != second.dst:
            return None
        if second.off != first.off + 1:
            return None

        region, offset = ctx.types.pointer_info(index)
        if region == MemRegion.STACK and offset is not None and offset % 2 != 0:
            if ctx.checker_aware:
                return RewriteDecision(
                    applied=False, blocked_reason=(
                        "the coalesced halfword store would not be 2-byte "
                        "aligned on the stack"))
        replacement = [
            builders.ST_MEM(MemSize.H, first.dst, first.off, 0),
            NOP,
        ]
        return RewriteDecision(applied=True, replacement=replacement, span=2)


class MultiplyToShift(PeepholeRule):
    """``rX *= 2**k``  →  ``rX <<= k`` (classic strength reduction)."""

    name = "multiply-to-shift"
    description = "replace multiplication by a power of two with a left shift"

    def match(self, ctx: RuleContext, index: int) -> Optional[RewriteDecision]:
        insn = ctx.instructions[index]
        if not insn.is_alu or insn.uses_reg_source:
            return None
        if insn.alu_op != AluOp.MUL:
            return None
        if insn.imm <= 0 or insn.imm & (insn.imm - 1) != 0:
            return None
        shift = insn.imm.bit_length() - 1
        new_opcode = (insn.insn_class | AluOp.LSH | SrcOperand.K)
        replacement = [insn.with_fields(opcode=new_opcode, imm=shift)]
        return RewriteDecision(applied=True, replacement=replacement, span=1)


class IdentityElimination(PeepholeRule):
    """Remove 64-bit ALU identities (``add 0``, ``mul 1``, ``mov rX, rX``...).

    Restricted to the 64-bit ALU class: 32-bit ops also zero the upper half
    of the destination, so e.g. ``add32 rX, 0`` is *not* a no-op.
    """

    name = "identity-elimination"
    description = "drop 64-bit ALU operations that cannot change their operand"

    _ZERO_IDENTITY = {AluOp.ADD, AluOp.SUB, AluOp.OR, AluOp.XOR, AluOp.LSH,
                      AluOp.RSH, AluOp.ARSH}
    _ONE_IDENTITY = {AluOp.MUL, AluOp.DIV}

    def match(self, ctx: RuleContext, index: int) -> Optional[RewriteDecision]:
        insn = ctx.instructions[index]
        if not insn.is_alu or insn.insn_class != InsnClass.ALU64:
            return None
        op = insn.alu_op
        if insn.uses_reg_source:
            if op == AluOp.MOV and insn.dst == insn.src:
                return RewriteDecision(applied=True, replacement=[NOP], span=1)
            return None
        if op in self._ZERO_IDENTITY and insn.imm == 0:
            return RewriteDecision(applied=True, replacement=[NOP], span=1)
        if op in self._ONE_IDENTITY and insn.imm == 1:
            return RewriteDecision(applied=True, replacement=[NOP], span=1)
        return None


class RedundantMoveElimination(PeepholeRule):
    """``mov rX, rY; mov rY, rX`` — the second move is redundant."""

    name = "redundant-move-elimination"
    description = "drop a move that copies a value back where it came from"

    def match(self, ctx: RuleContext, index: int) -> Optional[RewriteDecision]:
        insns = ctx.instructions
        if index + 1 >= len(insns):
            return None
        first, second = insns[index], insns[index + 1]
        for insn in (first, second):
            if not (insn.is_alu and insn.insn_class == InsnClass.ALU64
                    and insn.alu_op == AluOp.MOV and insn.uses_reg_source):
                return None
        if first.dst != second.src or first.src != second.dst:
            return None
        return RewriteDecision(applied=True, replacement=[first, NOP], span=2)


class ConstantFolding(PeepholeRule):
    """``mov rX, imm1; <op> rX, imm2``  →  ``mov rX, imm1 <op> imm2``."""

    name = "constant-folding"
    description = "fold an immediate move followed by an immediate ALU op"

    _FOLDABLE = {AluOp.ADD, AluOp.SUB, AluOp.MUL, AluOp.OR, AluOp.AND,
                 AluOp.XOR, AluOp.LSH, AluOp.RSH}

    def match(self, ctx: RuleContext, index: int) -> Optional[RewriteDecision]:
        insns = ctx.instructions
        if index + 1 >= len(insns):
            return None
        mov, op_insn = insns[index], insns[index + 1]
        if not self._is_mov64_imm(mov):
            return None
        if not op_insn.is_alu or op_insn.insn_class != InsnClass.ALU64 \
                or op_insn.uses_reg_source:
            return None
        if op_insn.dst != mov.dst or op_insn.alu_op not in self._FOLDABLE:
            return None
        folded = self._fold(mov.imm, op_insn.alu_op, op_insn.imm)
        if folded is None or not _I32_MIN <= folded <= _I32_MAX:
            return None
        replacement = [NOP, builders.MOV64_IMM(mov.dst, folded)]
        return RewriteDecision(applied=True, replacement=replacement, span=2)

    def _fold(self, a: int, op: AluOp, b: int) -> Optional[int]:
        a &= _U64
        b &= _U64
        if op == AluOp.ADD:
            result = a + b
        elif op == AluOp.SUB:
            result = a - b
        elif op == AluOp.MUL:
            result = a * b
        elif op == AluOp.OR:
            result = a | b
        elif op == AluOp.AND:
            result = a & b
        elif op == AluOp.XOR:
            result = a ^ b
        elif op == AluOp.LSH:
            result = a << (b & 63)
        elif op == AluOp.RSH:
            result = a >> (b & 63)
        else:
            return None
        result &= _U64
        # Only representable if the 64-bit result equals the sign extension
        # of its low 32 bits (a MOV64 immediate is sign-extended).
        signed = self._to_signed32(result)
        if (signed & _U64) != result:
            return None
        return signed


def all_rules() -> List[PeepholeRule]:
    """Every rule, in the order the optimizer tries them."""
    return [
        ConstantFolding(),
        RedundantMoveElimination(),
        IdentityElimination(),
        MultiplyToShift(),
        StoreZeroStrengthReduction(),
        CoalesceByteStores(),
    ]


def rule_by_name(name: str) -> PeepholeRule:
    """Look up a rule by its ``name`` attribute."""
    for rule in all_rules():
        if rule.name == name:
            return rule
    raise KeyError(name)


# --------------------------------------------------------------------------- #
# The optimizer
# --------------------------------------------------------------------------- #
@dataclasses.dataclass
class PeepholeResult:
    """Outcome of one rule-based optimization run."""

    original: BpfProgram
    optimized: BpfProgram
    applications: List[RuleApplication]
    blocked: List[RuleApplication]

    @property
    def instruction_reduction(self) -> int:
        return (self.original.num_real_instructions
                - self.optimized.num_real_instructions)

    def summary(self) -> str:
        lines = [f"{self.original.name}: "
                 f"{self.original.num_real_instructions} -> "
                 f"{self.optimized.num_real_instructions} instructions"]
        for application in self.applications:
            lines.append(f"  applied {application.rule} at {application.index}")
        for blocked in self.blocked:
            lines.append(f"  blocked {blocked.rule} at {blocked.index}: "
                         f"{blocked.note}")
        return "\n".join(lines)


class PeepholeOptimizer:
    """Applies peephole rules to a fixed point (the clang-style baseline)."""

    def __init__(self, rules: Optional[Sequence[PeepholeRule]] = None,
                 checker_aware: bool = True,
                 eliminate_dead_code: bool = True,
                 max_passes: int = 8):
        self.rules = list(rules) if rules is not None else all_rules()
        self.checker_aware = checker_aware
        self.eliminate_dead_code = eliminate_dead_code
        self.max_passes = max_passes

    # ------------------------------------------------------------------ #
    def optimize(self, program: BpfProgram) -> PeepholeResult:
        """Run every rule to a fixed point and compact the result."""
        program.validate()
        instructions = list(program.instructions)
        applications: List[RuleApplication] = []
        blocked: List[RuleApplication] = []

        for _ in range(self.max_passes):
            changed = self._one_pass(program, instructions, applications,
                                     blocked)
            if not changed:
                break

        if self.eliminate_dead_code:
            instructions = dead_code_eliminate(instructions)
        optimized = program.with_instructions(remove_nops(instructions))
        return PeepholeResult(original=program, optimized=optimized,
                              applications=applications, blocked=blocked)

    # ------------------------------------------------------------------ #
    def _one_pass(self, program: BpfProgram,
                  instructions: List[Instruction],
                  applications: List[RuleApplication],
                  blocked: List[RuleApplication]) -> bool:
        ctx = RuleContext(
            program=program,
            instructions=instructions,
            types=analyze_types(instructions, program.hook),
            liveness=compute_liveness(instructions),
            checker_aware=self.checker_aware)

        changed = False
        index = 0
        while index < len(instructions):
            decision = self._first_match(ctx, index)
            if decision is None:
                index += 1
                continue
            rule_name, decision = decision
            if decision.applied:
                assert decision.replacement is not None
                for position, replacement in enumerate(decision.replacement):
                    instructions[index + position] = replacement
                applications.append(RuleApplication(
                    rule=rule_name, index=index, applied=True))
                changed = True
                # The pass continues with a stale analysis, which is safe
                # because replacements only touch the matched span; the next
                # pass recomputes types and liveness from scratch.
                index += decision.span
            else:
                if not any(b.rule == rule_name and b.index == index
                           for b in blocked):
                    blocked.append(RuleApplication(
                        rule=rule_name, index=index, applied=False,
                        note=decision.blocked_reason or ""))
                index += 1
        return changed

    def _first_match(self, ctx: RuleContext, index: int):
        for rule in self.rules:
            decision = rule.match(ctx, index)
            if decision is not None:
                return rule.name, decision
        return None
