"""A rule-based (clang-style) peephole optimizer for BPF bytecode.

The paper evaluates K2 against "the best clang variant" (-O1/-O2/-O3/-Os) and
motivates synthesis with the *phase-ordering problem* (§2.2): classic rewrite
rules either have to be made aware of every kernel-checker restriction, or
they produce code the checker rejects.

This package builds that comparator from scratch:

* :mod:`repro.baseline.peephole` — a small peephole-rule framework plus the
  textbook rules (store strength reduction, store coalescing, multiply-to-
  shift, identity elimination, constant folding, dead-store elimination).
  Every rule can run in *naive* mode (apply whenever the pattern matches, as
  a generic optimizer would) or *checker-aware* mode (consult the pointer
  provenance analysis and skip rewrites the kernel checker forbids — the two
  §2.2 examples).
* :mod:`repro.baseline.clang_levels` — ``-O0/-O1/-O2/-O3/-Os`` style
  pipelines composed from those rules, used by benches and examples as the
  baseline K2 is compared against.
"""

from .peephole import (
    PeepholeOptimizer,
    PeepholeResult,
    RewriteDecision,
    RuleApplication,
    all_rules,
    rule_by_name,
)
from .clang_levels import OptimizationLevel, RuleBasedCompiler, compile_variants

__all__ = [
    "PeepholeOptimizer",
    "PeepholeResult",
    "RewriteDecision",
    "RuleApplication",
    "all_rules",
    "rule_by_name",
    "OptimizationLevel",
    "RuleBasedCompiler",
    "compile_variants",
]
