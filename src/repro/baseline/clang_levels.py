"""Clang-style optimization-level pipelines built from the peephole rules.

The paper always compares K2 against "the best clang variant" among
``-O1/-O2/-O3/-Os``, and observes that ``-O2`` and ``-O3`` produce identical
code for its benchmarks while ``-Os`` rarely improves on ``-O2``.  This module
reproduces that baseline: each level is a fixed pipeline of peephole rules,
with higher levels adding strength reduction and dead-code elimination and
``-Os`` additionally enabling the size-oriented store rewrites.

The pipelines run in checker-aware mode by default, mirroring the effort the
clang BPF backend spends on emitting verifier-acceptable code; the naive mode
is available for the phase-ordering demonstration (see
``examples/phase_ordering.py``).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from ..bpf.program import BpfProgram
from .peephole import (PeepholeOptimizer, PeepholeResult, PeepholeRule,
                       rule_by_name)

__all__ = ["OptimizationLevel", "RuleBasedCompiler", "compile_variants",
           "best_variant"]


class OptimizationLevel(enum.Enum):
    """The clang-style optimization levels used as baselines."""

    O0 = "-O0"
    O1 = "-O1"
    O2 = "-O2"
    O3 = "-O3"
    Os = "-Os"


#: Rule names enabled at each level.  ``-O3`` deliberately equals ``-O2``
#: (the paper found clang's -O2 and -O3 outputs identical on every benchmark).
_LEVEL_RULES: Dict[OptimizationLevel, List[str]] = {
    OptimizationLevel.O0: [],
    OptimizationLevel.O1: [
        "constant-folding",
        "redundant-move-elimination",
        "identity-elimination",
    ],
    OptimizationLevel.O2: [
        "constant-folding",
        "redundant-move-elimination",
        "identity-elimination",
        "multiply-to-shift",
    ],
    OptimizationLevel.O3: [
        "constant-folding",
        "redundant-move-elimination",
        "identity-elimination",
        "multiply-to-shift",
    ],
    OptimizationLevel.Os: [
        "constant-folding",
        "redundant-move-elimination",
        "identity-elimination",
        "multiply-to-shift",
        "store-zero-strength-reduction",
        "coalesce-byte-stores",
    ],
}

#: Dead-code elimination is part of the -O1 and higher pipelines.
_LEVEL_DCE: Dict[OptimizationLevel, bool] = {
    OptimizationLevel.O0: False,
    OptimizationLevel.O1: True,
    OptimizationLevel.O2: True,
    OptimizationLevel.O3: True,
    OptimizationLevel.Os: True,
}


class RuleBasedCompiler:
    """A fixed-pipeline rule-based optimizer, parameterized by level."""

    def __init__(self, level: OptimizationLevel = OptimizationLevel.O2,
                 checker_aware: bool = True):
        self.level = level
        self.checker_aware = checker_aware
        rules: List[PeepholeRule] = [rule_by_name(name)
                                     for name in _LEVEL_RULES[level]]
        self._optimizer = PeepholeOptimizer(
            rules=rules, checker_aware=checker_aware,
            eliminate_dead_code=_LEVEL_DCE[level])

    def compile(self, program: BpfProgram) -> PeepholeResult:
        """Optimize ``program`` with this level's pipeline."""
        if self.level == OptimizationLevel.O0:
            return PeepholeResult(original=program, optimized=program,
                                  applications=[], blocked=[])
        return self._optimizer.optimize(program)


def compile_variants(program: BpfProgram,
                     checker_aware: bool = True,
                     levels: Optional[List[OptimizationLevel]] = None
                     ) -> Dict[OptimizationLevel, PeepholeResult]:
    """Compile ``program`` at every level (the paper's clang baseline set)."""
    levels = levels or list(OptimizationLevel)
    return {level: RuleBasedCompiler(level, checker_aware).compile(program)
            for level in levels}


def best_variant(program: BpfProgram,
                 checker_aware: bool = True) -> PeepholeResult:
    """The smallest variant across levels — "the best clang-compiled program"."""
    variants = compile_variants(program, checker_aware=checker_aware)
    return min(variants.values(),
               key=lambda result: result.optimized.num_real_instructions)
