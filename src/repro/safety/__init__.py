"""Safety checking of candidate BPF programs (paper section 6)."""

from .safety_checker import (
    SafetyChecker, SafetyResult, SafetyViolation, SafetyViolationKind,
)

__all__ = [name for name in dir() if not name.startswith("_")]
