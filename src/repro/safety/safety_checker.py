"""Safety checking of candidate BPF programs (paper §6).

K2 evaluates the safety of every candidate program produced by the stochastic
search.  The properties enforced here mirror §6 of the paper:

**Control flow safety**
    no unreachable basic blocks, no loops (back edges), no out-of-bounds jump
    targets.

**Memory accesses within bounds**
    every load/store resolves to a known memory region and stays inside that
    region's bounds (stack: 512 bytes below r10; ctx: the context structure;
    packet: the bytes proven available by a ``data + N > data_end`` check;
    map values: the map's declared value size).

**Memory-specific considerations**
    stack slots and registers must be written before they are read; r10 is
    read-only; map-lookup results must be NULL-checked before dereference.

**Access alignment**
    stack loads/stores of width N must be N-byte aligned.

**Kernel-checker-specific constraints**
    no ALU (other than pointer ± scalar) on pointers, no immediate stores via
    context pointers, r1–r5 unreadable after a helper call, no pointer may
    escape through r0 at program exit.

The checks are implemented with the same static analyses that power the
equivalence checker's concretizations (CFG + pointer provenance abstract
interpretation); when a violation depends on the program input (e.g. a packet
access without a preceding bounds check), the checker also produces a small
*safety counterexample* input that makes the interpreter fault, which the
synthesizer adds to its test suite exactly as in Fig. 1 of the paper.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis import AbstractAnalyzer, resolve_analysis_kind
from ..analysis.verdicts import (
    SafetyResult, SafetyViolation, SafetyViolationKind,
)
from ..bpf.cfg import CfgError, build_cfg
from ..bpf.helpers import HELPERS
from ..bpf.hooks import HookType
from ..bpf.instruction import Instruction
from ..bpf.memtypes import AbsValue, analyze_types
from ..bpf.opcodes import AluOp, STACK_SIZE
from ..bpf.program import BpfProgram
from ..bpf.regions import MemRegion
from ..interpreter import ProgramInput

__all__ = ["SafetyViolationKind", "SafetyViolation", "SafetyResult",
           "SafetyChecker"]


class SafetyChecker:
    """Static safety analysis of BPF programs, as used inside the search loop.

    Two interchangeable implementations sit behind this API (the
    ``--analysis`` ablation):

    * ``fused`` (default) — the unified incremental abstract interpreter
      (:class:`repro.analysis.AbstractAnalyzer`): one product domain
      (provenance × tnum × interval), per-basic-block memoization across
      the proposals of a synthesis run, plus checks for the interpreter
      faults the legacy pass missed (helper arguments, atomic adds through
      ctx, stale packet pointers after ``bpf_xdp_adjust_*``).
    * ``legacy`` — the original two-pass analysis over
      :mod:`repro.bpf.memtypes`, kept as the ablation baseline.

    Pass a shared ``analyzer`` to let several consumers (the search loop's
    checker and the verification pipeline's pre-stage) hit one memo.
    """

    def __init__(self, strict_alignment: bool = True,
                 mode: Optional[str] = None,
                 analyzer: Optional[AbstractAnalyzer] = None):
        self.strict_alignment = strict_alignment
        self.mode = resolve_analysis_kind(mode)
        if analyzer is not None:
            self.analyzer = analyzer
        elif self.mode == "fused":
            self.analyzer = AbstractAnalyzer(strict_alignment=strict_alignment)
        else:
            self.analyzer = None
        self.num_checks = 0

    # ------------------------------------------------------------------ #
    def check(self, program: BpfProgram) -> SafetyResult:
        """Check every §6 property; returns all violations found."""
        self.num_checks += 1
        if self.mode == "fused":
            outcome = self.analyzer.analyze(program)
            return SafetyResult(list(outcome.violations),
                                self._counterexamples(program)
                                if outcome.violations else [])
        return self._check_legacy(program)

    # ------------------------------------------------------------------ #
    def _check_legacy(self, program: BpfProgram) -> SafetyResult:
        violations: List[SafetyViolation] = []

        structural = self._check_structure(program)
        violations.extend(structural)
        if any(v.kind in (SafetyViolationKind.MALFORMED, SafetyViolationKind.BAD_JUMP)
               for v in structural):
            return SafetyResult(violations, self._counterexamples(program))

        violations.extend(self._check_control_flow(program))
        if any(v.kind == SafetyViolationKind.LOOP for v in violations):
            return SafetyResult(violations, self._counterexamples(program))

        violations.extend(self._check_instructions(program))
        return SafetyResult(violations, self._counterexamples(program)
                            if violations else [])

    # ------------------------------------------------------------------ #
    # Structural and control-flow checks
    # ------------------------------------------------------------------ #
    def _check_structure(self, program: BpfProgram) -> List[SafetyViolation]:
        violations = []
        if not program.instructions:
            return [SafetyViolation(SafetyViolationKind.MALFORMED, None,
                                    "empty program")]
        if not any(insn.is_exit for insn in program.instructions):
            violations.append(SafetyViolation(
                SafetyViolationKind.MALFORMED, None, "no exit instruction"))
        for index, insn in enumerate(program.instructions):
            if insn.is_jump and not insn.is_call and not insn.is_exit:
                target = index + 1 + insn.off
                if not 0 <= target < len(program.instructions):
                    violations.append(SafetyViolation(
                        SafetyViolationKind.BAD_JUMP, index,
                        f"jump target {target} outside the program"))
            if insn.is_call and insn.imm not in HELPERS:
                violations.append(SafetyViolation(
                    SafetyViolationKind.HELPER_MISUSE, index,
                    f"unknown helper id {insn.imm}"))
            if insn.dst == 10 and insn.regs_written() and 10 in insn.regs_written():
                violations.append(SafetyViolation(
                    SafetyViolationKind.READ_ONLY_REGISTER, index,
                    "write to the read-only frame pointer r10"))
        return violations

    def _check_control_flow(self, program: BpfProgram) -> List[SafetyViolation]:
        violations = []
        try:
            cfg = build_cfg(program.instructions)
        except CfgError as exc:
            return [SafetyViolation(SafetyViolationKind.BAD_JUMP, None, str(exc))]
        if not cfg.is_loop_free():
            violations.append(SafetyViolation(
                SafetyViolationKind.LOOP, None,
                "control-flow graph contains a back edge (loop)"))
        for block_index in cfg.unreachable_blocks():
            block = cfg.blocks[block_index]
            # Blocks made entirely of NOP padding are tolerated: the search
            # introduces them deliberately and they never execute.
            if all(program.instructions[i].is_nop
                   for i in block.instruction_indices):
                continue
            violations.append(SafetyViolation(
                SafetyViolationKind.UNREACHABLE_CODE, block.start,
                f"basic block {block_index} is unreachable"))
        return violations

    # ------------------------------------------------------------------ #
    # Per-instruction checks driven by the pointer/provenance analysis
    # ------------------------------------------------------------------ #
    def _check_instructions(self, program: BpfProgram) -> List[SafetyViolation]:
        violations: List[SafetyViolation] = []
        analysis = analyze_types(program.instructions, program.hook)

        for index, insn in enumerate(program.instructions):
            state = analysis.state_before(index)
            if state is None:  # unreachable (already reported)
                continue
            if insn.is_nop:
                continue

            for reg in insn.regs_read():
                value = state.regs[reg]
                if not value.initialized:
                    violations.append(SafetyViolation(
                        SafetyViolationKind.UNINITIALIZED_READ, index,
                        f"r{reg} is read before being written"))

            if insn.is_alu:
                violations.extend(self._check_pointer_alu(insn, state, index))
            if insn.is_memory:
                violations.extend(self._check_memory_access(
                    program, insn, state, index))
            if insn.is_exit:
                value = state.regs[0]
                if value.is_pointer:
                    violations.append(SafetyViolation(
                        SafetyViolationKind.POINTER_LEAK, index,
                        "r0 holds a kernel pointer at program exit"))
                elif (program.hook.return_range is not None
                      and value.const is not None):
                    low, high = program.hook.return_range
                    if not low <= value.const <= high:
                        violations.append(SafetyViolation(
                            SafetyViolationKind.BAD_RETURN_VALUE, index,
                            f"return value {value.const} outside "
                            f"[{low}, {high}] for hook {program.hook.name}"))
        return violations

    def _check_pointer_alu(self, insn: Instruction, state, index: int
                           ) -> List[SafetyViolation]:
        """Kernel-checker constraint: most ALU ops are disallowed on pointers."""
        violations = []
        dst_val: AbsValue = state.regs[insn.dst]
        op = insn.alu_op
        if not dst_val.is_pointer:
            return violations
        if op in (AluOp.MOV, AluOp.END):
            return violations
        if insn.is_alu64 and op in (AluOp.ADD, AluOp.SUB):
            return violations
        violations.append(SafetyViolation(
            SafetyViolationKind.POINTER_ARITHMETIC, index,
            f"ALU operation {op.name} on a pointer into "
            f"{dst_val.region.value} memory"))
        return violations

    def _check_memory_access(self, program: BpfProgram, insn: Instruction,
                             state, index: int) -> List[SafetyViolation]:
        violations = []
        base_reg = insn.src if insn.is_load else insn.dst
        base: AbsValue = state.regs[base_reg]
        width = insn.access_bytes

        if base.region in (MemRegion.SCALAR, MemRegion.UNKNOWN):
            violations.append(SafetyViolation(
                SafetyViolationKind.UNKNOWN_POINTER, index,
                f"memory access through r{base_reg}, which does not hold a "
                f"pointer with known provenance"))
            return violations
        if base.maybe_null:
            violations.append(SafetyViolation(
                SafetyViolationKind.NULL_DEREFERENCE, index,
                f"r{base_reg} may be NULL (unchecked bpf_map_lookup_elem result)"))
        if base.region == MemRegion.MAP_PTR:
            violations.append(SafetyViolation(
                SafetyViolationKind.UNKNOWN_POINTER, index,
                "direct memory access through a map reference"))
            return violations
        if base.region == MemRegion.PACKET_END:
            violations.append(SafetyViolation(
                SafetyViolationKind.OUT_OF_BOUNDS, index,
                "memory access through the data_end sentinel pointer"))
            return violations

        if insn.is_store and base.region == MemRegion.CTX:
            violations.append(SafetyViolation(
                SafetyViolationKind.CTX_STORE, index,
                "store through a context (PTR_TO_CTX) pointer"))
            return violations

        if base.offset is None:
            violations.append(SafetyViolation(
                SafetyViolationKind.OUT_OF_BOUNDS, index,
                f"cannot bound the offset of the access through r{base_reg}"))
            return violations
        offset = base.offset + insn.off

        if base.region == MemRegion.STACK:
            if not 0 <= offset <= STACK_SIZE - width:
                violations.append(SafetyViolation(
                    SafetyViolationKind.OUT_OF_BOUNDS, index,
                    f"stack access at r10{offset - STACK_SIZE:+d} "
                    f"width {width} is out of bounds"))
            elif self.strict_alignment and offset % width != 0:
                violations.append(SafetyViolation(
                    SafetyViolationKind.MISALIGNED_ACCESS, index,
                    f"stack access at r10{offset - STACK_SIZE:+d} is not "
                    f"{width}-byte aligned"))
            elif insn.is_load:
                missing = [b for b in range(offset, offset + width)
                           if b not in state.stack_written]
                if missing:
                    violations.append(SafetyViolation(
                        SafetyViolationKind.UNINITIALIZED_READ, index,
                        f"stack bytes at r10{offset - STACK_SIZE:+d} are read "
                        f"before being written"))
        elif base.region == MemRegion.CTX:
            if not 0 <= offset <= program.hook.ctx_size - width:
                violations.append(SafetyViolation(
                    SafetyViolationKind.OUT_OF_BOUNDS, index,
                    f"ctx access at offset {offset} width {width} is out of "
                    f"bounds for {program.hook.name}"))
        elif base.region == MemRegion.PACKET:
            bound = state.packet_bound
            if offset < 0 or offset + width > bound:
                violations.append(SafetyViolation(
                    SafetyViolationKind.OUT_OF_BOUNDS, index,
                    f"packet access at offset {offset} width {width} exceeds "
                    f"the verified packet bound of {bound} bytes"))
        elif base.region == MemRegion.MAP_VALUE:
            value_size = None
            if base.map_fd is not None and base.map_fd in program.maps:
                value_size = program.maps.definition(base.map_fd).value_size
            if value_size is None:
                violations.append(SafetyViolation(
                    SafetyViolationKind.UNKNOWN_POINTER, index,
                    "cannot determine which map this value pointer refers to"))
            elif not 0 <= offset <= value_size - width:
                violations.append(SafetyViolation(
                    SafetyViolationKind.OUT_OF_BOUNDS, index,
                    f"map value access at offset {offset} width {width} exceeds "
                    f"the value size of {value_size} bytes"))
        return violations

    # ------------------------------------------------------------------ #
    # Safety counterexamples (used to prune unsafe candidates cheaply)
    # ------------------------------------------------------------------ #
    def _counterexamples(self, program: BpfProgram) -> List[ProgramInput]:
        """Adversarial inputs likely to expose the violation at run time."""
        inputs = [ProgramInput(packet=b"")]
        if program.hook.hook_type == HookType.XDP:
            inputs.append(ProgramInput(packet=bytes(14)))
            inputs.append(ProgramInput(packet=bytes(1)))
        inputs.append(ProgramInput(packet=bytes(64)))
        return inputs
