"""The tiered candidate-verification pipeline.

:class:`VerificationPipeline` owns the whole "is this candidate equivalent
to the source?" path of the synthesis loop.  A candidate escalates through
explicit, pluggable stages — interpreter replay, cache lookup, window
(modular) checking, full symbolic checking — each returning a typed
:class:`~repro.verification.stages.StageVerdict`; the first conclusive
verdict wins.  Per-stage attempt/accept/reject/escalate counters and wall
clock are kept in :class:`PipelineStats`, which is what the Table 4/6
benches and the CLI summary report.

The pipeline owns the single :class:`~repro.equivalence.EquivalenceOptions`
instance for the whole path (the §5 toggles used to be threaded separately
through the checker, the window checker and the search loop) and hands the
same object to every stage.  It also owns the
:class:`~repro.equivalence.EquivalenceCache` and the counterexample pool
that feeds the replay stage.

Underneath, the two solver-backed stages keep *incremental sessions*
(:mod:`repro.equivalence.checker` / :mod:`repro.equivalence.window`): the
source program's encoding is bit-blasted once at the solver's base level
and every candidate query runs in a push/pop scope guarded by an assumption
literal, reusing the blasted CNF and the learned clauses of earlier
queries.  :meth:`begin_generation` drops those sessions; the parallel
engine calls it at every generation boundary so serial, thread and process
executors traverse identical solver histories.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Tuple

from ..bpf.program import BpfProgram
from ..engine import create_engine
from ..equivalence import (
    EquivalenceCache, EquivalenceChecker, EquivalenceOptions,
    EquivalenceResult, Window, WindowEquivalenceChecker,
)
from ..interpreter import Interpreter, ProgramInput, ProgramOutput
from .portfolio import PortfolioEquivalenceChecker
from .stages import (
    CacheLookupStage, FullSymbolicStage, InterpreterReplayStage, StageOutcome,
    StageVerdict, StaticSafetyStage, VerificationStage, WindowCheckStage,
)

__all__ = ["StageStats", "PipelineStats", "PipelineOutcome",
           "VerificationPipeline", "summarize_verification_stats"]


def summarize_verification_stats(stats: Dict[str, Dict[str, float]]) -> str:
    """One-line "decided/attempted" digest of a per-stage stats dict."""
    parts = []
    for stage, counters in stats.items():
        if stage == "_pipeline":
            continue
        attempts = int(counters.get("attempts", 0))
        decided = int(counters.get("accepts", 0)) + int(counters.get("rejects", 0))
        parts.append(f"{stage} {decided}/{attempts}")
    pipeline = stats.get("_pipeline", {})
    inconclusive = int(pipeline.get("inconclusive", 0))
    suffix = " (decided/escalated-to)"
    if inconclusive:
        suffix += f", {inconclusive} inconclusive"
    return ", ".join(parts) + suffix if parts else "no verification queries"


@dataclasses.dataclass
class StageStats:
    """Counters for one pipeline stage (feeds Table 4/6-style reports)."""

    attempts: int = 0
    accepts: int = 0
    rejects: int = 0
    escalations: int = 0
    skips: int = 0
    seconds: float = 0.0

    def record(self, verdict: StageVerdict) -> None:
        if verdict.outcome == StageOutcome.SKIP:
            self.skips += 1
            return
        self.attempts += 1
        self.seconds += verdict.elapsed
        if verdict.outcome == StageOutcome.ACCEPT:
            self.accepts += 1
        elif verdict.outcome == StageOutcome.REJECT:
            self.rejects += 1
        else:
            self.escalations += 1

    def as_dict(self) -> Dict[str, float]:
        return {"attempts": self.attempts, "accepts": self.accepts,
                "rejects": self.rejects, "escalations": self.escalations,
                "skips": self.skips, "seconds": round(self.seconds, 6)}


class PipelineStats:
    """Per-stage statistics for every query one pipeline has seen."""

    def __init__(self, stage_names: Tuple[str, ...]):
        self.stages: Dict[str, StageStats] = {
            name: StageStats() for name in stage_names}
        self.queries = 0
        self.inconclusive = 0
        # Adaptive-replay counters: refutations caught by the small scalar
        # probe vs the full lockstep batch, and how often the pool order
        # actually differed from insertion order.
        self.replay_probe_refutes = 0
        self.replay_batch_refutes = 0
        self.replay_reorders = 0

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        summary = {name: stats.as_dict() for name, stats in self.stages.items()}
        summary["_pipeline"] = {
            "queries": self.queries,
            "inconclusive": self.inconclusive,
            "replay_probe_refutes": self.replay_probe_refutes,
            "replay_batch_refutes": self.replay_batch_refutes,
            "replay_reorders": self.replay_reorders,
        }
        return summary

    def load_dict(self, snapshot: Dict[str, Dict[str, float]]) -> None:
        """Restore counters from an :meth:`as_dict` snapshot (checkpoints).

        Stage names absent from this pipeline's configuration are ignored
        (a checkpoint taken under different stage toggles fails its options
        signature before restore is ever attempted).
        """
        for name, counters in snapshot.items():
            if name == "_pipeline":
                continue
            stats = self.stages.get(name)
            if stats is None:
                continue
            stats.attempts = int(counters.get("attempts", 0))
            stats.accepts = int(counters.get("accepts", 0))
            stats.rejects = int(counters.get("rejects", 0))
            stats.escalations = int(counters.get("escalations", 0))
            stats.skips = int(counters.get("skips", 0))
            stats.seconds = float(counters.get("seconds", 0.0))
        pipeline = snapshot.get("_pipeline", {})
        self.queries = int(pipeline.get("queries", 0))
        self.inconclusive = int(pipeline.get("inconclusive", 0))
        self.replay_probe_refutes = int(
            pipeline.get("replay_probe_refutes", 0))
        self.replay_batch_refutes = int(
            pipeline.get("replay_batch_refutes", 0))
        self.replay_reorders = int(pipeline.get("replay_reorders", 0))

    @staticmethod
    def merge_dicts(into: Dict[str, Dict[str, float]],
                    other: Dict[str, Dict[str, float]]) -> Dict[str, Dict[str, float]]:
        """Accumulate one ``as_dict()`` snapshot into another (for chains)."""
        for stage, counters in other.items():
            bucket = into.setdefault(stage, {})
            for key, value in counters.items():
                bucket[key] = bucket.get(key, 0) + value
        return into


@dataclasses.dataclass
class PipelineOutcome:
    """What :meth:`VerificationPipeline.verify` returns for one candidate."""

    result: EquivalenceResult
    verdicts: List[StageVerdict]
    concluded_by: str

    @property
    def cache_hit(self) -> bool:
        return self.concluded_by == "cache"

    def __bool__(self) -> bool:
        return self.result.equivalent


class VerificationPipeline:
    """Escalate candidates through replay → cache → window → full symbolic."""

    def __init__(self, options: Optional[EquivalenceOptions] = None,
                 cache: Optional[EquivalenceCache] = None,
                 stages: Optional[List[VerificationStage]] = None,
                 interpreter: Optional[Interpreter] = None,
                 max_pool_size: int = 64,
                 engine=None,
                 analyzer=None,
                 replay_probe_size: int = 4):
        self.options = options or EquivalenceOptions()
        self.cache = cache if cache is not None else EquivalenceCache()
        #: Fused abstract analyzer backing the static-safety pre-stage; when
        #: None (e.g. the ``--analysis legacy`` ablation) the stage is
        #: omitted entirely.  The search loop passes the analyzer instance
        #: shared with its :class:`~repro.safety.SafetyChecker`, so stage
        #: verdicts are program-memo hits.
        self.analyzer = analyzer
        # One long-lived execution engine feeds the replay stage (and is
        # shared with the owning chain's test suite when the caller passes
        # the same instance); ``interpreter`` is the pre-engine name for the
        # same slot, kept for compatibility.
        self.engine = engine if engine is not None \
            else (interpreter or create_engine())
        self.interpreter = self.engine
        # The solver-backed front ends: single incremental checkers, or —
        # with ``options.portfolio`` — deterministic two-solver portfolios
        # that bound the incremental sessions' worst case (Table 4).
        if self.options.portfolio:
            self.checker = PortfolioEquivalenceChecker(self.options)
            self.window_checker = PortfolioEquivalenceChecker(
                self.options, factory=WindowEquivalenceChecker)
        else:
            self.checker = EquivalenceChecker(self.options)
            self.window_checker = WindowEquivalenceChecker(self.options)
        if stages is not None:
            self.stages: List[VerificationStage] = stages
        else:
            self.stages = []
            if self.analyzer is not None:
                self.stages.append(StaticSafetyStage())
            self.stages.extend([InterpreterReplayStage(),
                                CacheLookupStage(),
                                WindowCheckStage(self.window_checker),
                                FullSymbolicStage(self.checker)])
        self.stats = PipelineStats(tuple(s.name for s in self.stages))
        #: Counterexample pool feeding the replay stage, newest last.
        self._pool: List[ProgramInput] = []
        self._pool_keys: set = set()
        self._pool_key_list: List = []
        self._max_pool_size = max_pool_size
        #: Source outputs for the pool, recomputed when the source changes.
        self._pool_outputs: List[ProgramOutput] = []
        #: ``observable()`` tuples aligned with ``_pool_outputs`` — derived
        #: once per pool refresh, not once per candidate.
        self._pool_observables: List[tuple] = []
        self._pool_source_key = None
        #: Adaptive replay: per-test refutation counts (keyed by the test's
        #: freeze key), reset whenever the source program changes.  Tests
        #: that refuted recent candidates replay first, so the
        #: first-divergence early exit fires in O(1) expected tests for
        #: doomed candidates.
        self._refute_counts: Dict = {}
        #: How many top-ranked tests the replay stage runs as a scalar
        #: probe before committing to the full lockstep batch.
        self.replay_probe_size = replay_probe_size

    # ------------------------------------------------------------------ #
    # Counterexample pool
    # ------------------------------------------------------------------ #
    def add_counterexample(self, test: ProgramInput) -> bool:
        """Add a concrete distinguishing input to the replay pool."""
        key = test.freeze_key()
        if key in self._pool_keys or len(self._pool) >= self._max_pool_size:
            return False
        self._pool_keys.add(key)
        self._pool_key_list.append(key)
        self._pool.append(test)
        # Keep cached source outputs aligned by appending lazily in
        # _refresh_pool (invalidate the shorter cache here).
        return True

    @property
    def pool_size(self) -> int:
        return len(self._pool)

    def record_refutation(self, test: ProgramInput) -> None:
        """Bump the refutation-frequency rank of a distinguishing input."""
        key = test.freeze_key()
        self._refute_counts[key] = self._refute_counts.get(key, 0) + 1

    def _refresh_pool(self, source: BpfProgram) -> None:
        key = source.structural_key()
        if self._pool_source_key != key:
            self._pool_outputs = []
            self._pool_observables = []
            self._refute_counts = {}
            self._pool_source_key = key
        missing = self._pool[len(self._pool_outputs):]
        if missing:
            fresh = self.engine.run_batch(source, missing)
            self._pool_outputs.extend(fresh)
            self._pool_observables.extend(
                output.observable() for output in fresh)

    def replay_entries(self, source: BpfProgram) -> List[Tuple[ProgramInput, ProgramOutput]]:
        """(input, source output) pairs for the replay stage, pool order."""
        self._refresh_pool(source)
        return list(zip(self._pool, self._pool_outputs))

    def replay_plan(self, source: BpfProgram) -> Tuple[List[ProgramInput], List[tuple]]:
        """Pooled tests and their precomputed source observables, ordered
        by descending refutation frequency (ties keep pool order)."""
        self._refresh_pool(source)
        pool = self._pool
        counts = self._refute_counts
        if not counts:
            return list(pool), list(self._pool_observables)
        keys = self._pool_key_list
        order = sorted(range(len(pool)),
                       key=lambda i: (-counts.get(keys[i], 0), i))
        if any(position != index for position, index in enumerate(order)):
            self.stats.replay_reorders += 1
        return ([pool[index] for index in order],
                [self._pool_observables[index] for index in order])

    # ------------------------------------------------------------------ #
    # Checkpointing (crash-recoverable chains; repro.synthesis.checkpoint)
    # ------------------------------------------------------------------ #
    def export_replay_state(self):
        """Pool tests (in insertion order) and refutation counts.

        Counts are keyed by test freeze key; a count can reference a test
        the bounded pool rejected, so the two collections are exported
        separately.
        """
        return list(self._pool), dict(self._refute_counts)

    def restore_replay_state(self, source, tests, refute_counts) -> None:
        """Rebuild the replay pool and the adaptive ordering state.

        ``source`` pins the pool's source key so the restored refutation
        counts survive the next :meth:`verify` (a ``None`` key would read
        as a source change and reset them).  The derived caches (source
        outputs, observables) are recomputed lazily on the next query,
        exactly as after a process-pool hop.
        """
        self._pool = []
        self._pool_keys = set()
        self._pool_key_list = []
        for test in tests:
            self.add_counterexample(test)
        self._pool_outputs = []
        self._pool_observables = []
        self._pool_source_key = source.structural_key()
        self._refute_counts = dict(refute_counts)

    # ------------------------------------------------------------------ #
    def begin_generation(self) -> None:
        """Reset the incremental solver sessions (not stats, cache or pool).

        Called at every chain-generation boundary so that all executor
        backends — including process pools, whose pickling drops sessions —
        see identical solver histories and produce identical results.
        """
        self.checker.reset_session()
        self.window_checker.reset_session()

    # ------------------------------------------------------------------ #
    def verify(self, source: BpfProgram, candidate: BpfProgram,
               window: Optional[Window] = None) -> PipelineOutcome:
        """Escalate ``candidate`` through the stages; first conclusion wins."""
        self.stats.queries += 1
        verdicts: List[StageVerdict] = []
        final: Optional[EquivalenceResult] = None
        concluded_by = "none"

        for stage in self.stages:
            if not stage.enabled(self):
                verdict = StageVerdict(stage.name, StageOutcome.SKIP,
                                       detail="stage disabled")
            else:
                started = time.perf_counter()
                verdict = stage.run(self, source, candidate, window)
                verdict.elapsed = time.perf_counter() - started
            stats = self.stats.stages.get(stage.name)
            if stats is not None:
                stats.record(verdict)
            verdicts.append(verdict)
            if verdict.outcome.conclusive:
                final = verdict.result
                concluded_by = stage.name
                break

        if final is None:
            self.stats.inconclusive += 1
            final = EquivalenceResult(
                equivalent=False, unknown=True,
                reason="verification pipeline exhausted without a conclusive "
                       "stage")
        # Safety-stage rejections stay out of the equivalence cache: the
        # static verdict is conservative ("may misbehave"), not a proof
        # that the two programs differ on some input.
        if self.options.enable_cache and concluded_by not in ("cache", "none",
                                                              "safety"):
            self.cache.store(candidate, final)
        if final.counterexample is not None:
            self.add_counterexample(final.counterexample)
            # Feed the adaptive replay ordering: this input just refuted a
            # candidate, whether the replay stage or a solver tier found it.
            self.record_refutation(final.counterexample)
        return PipelineOutcome(result=final, verdicts=verdicts,
                               concluded_by=concluded_by)
