"""The pluggable stages of the candidate-verification pipeline.

Each stage implements one tier of the escalation ladder described in the
paper's §5 (and mirrored by the Table 4/6 ablations):

========  =======================================  ==================
stage     what it does                              paper section
========  =======================================  ==================
replay    interpret the candidate on pooled         §3.2 (test-based
          counterexamples from earlier queries      pruning, Fig. 1)
cache     look up the candidate's canonical form    §5 optimization V
          in the :class:`EquivalenceCache`
window    modular verification of the changed       §5 optimization IV,
          window under live-in/live-out conditions  Appendix C.2
full      full-program symbolic equivalence over    §4
          shared inputs (the decision procedure
          of last resort)
========  =======================================  ==================

A stage returns a :class:`StageVerdict` whose outcome is one of:

* ``accept`` — the candidate is proven equivalent; the pipeline stops.
* ``reject`` — the candidate is proven non-equivalent (possibly with a
  counterexample); the pipeline stops.
* ``escalate`` — the stage could not decide; the next tier runs.
* ``skip`` — the stage is disabled or not applicable to this query.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from ..bpf.program import BpfProgram
from ..equivalence import (
    EquivalenceChecker, EquivalenceResult, Window, WindowEquivalenceChecker,
)

__all__ = ["StageOutcome", "StageVerdict", "VerificationStage",
           "StaticSafetyStage", "InterpreterReplayStage", "CacheLookupStage",
           "WindowCheckStage", "FullSymbolicStage", "changed_window"]

#: Windows larger than this fall back to full-program verification, matching
#: the pre-pipeline search behaviour.
MAX_WINDOW_SIZE = 6


class StageOutcome(enum.Enum):
    ACCEPT = "accept"
    REJECT = "reject"
    ESCALATE = "escalate"
    SKIP = "skip"

    @property
    def conclusive(self) -> bool:
        return self in (StageOutcome.ACCEPT, StageOutcome.REJECT)


@dataclasses.dataclass
class StageVerdict:
    """The typed outcome of running one pipeline stage on one candidate."""

    stage: str
    outcome: StageOutcome
    result: Optional[EquivalenceResult] = None
    elapsed: float = 0.0
    detail: str = ""


def changed_window(source: BpfProgram, candidate: BpfProgram,
                   max_size: int = MAX_WINDOW_SIZE) -> Optional[Window]:
    """The contiguous window containing every instruction that differs."""
    source_insns = source.instructions
    candidate_insns = candidate.instructions
    if len(source_insns) != len(candidate_insns):
        return None
    changed = [index for index in range(len(source_insns))
               if source_insns[index] != candidate_insns[index]]
    if not changed:
        return None
    window = Window(changed[0], changed[-1] + 1)
    if len(window) > max_size:
        return None
    return window


class VerificationStage:
    """Base class: stages are stateless beyond what the pipeline hands them."""

    name = "stage"

    def enabled(self, pipeline) -> bool:
        return True

    def run(self, pipeline, source: BpfProgram, candidate: BpfProgram,
            window: Optional[Window]) -> StageVerdict:
        raise NotImplementedError


class StaticSafetyStage(VerificationStage):
    """Tier 0: reject statically-unsafe candidates before any execution.

    Runs the fused abstract interpreter (:mod:`repro.analysis`) on the
    candidate — and, memoized, on the source — and rejects when the source
    is safe but the candidate provably misbehaves (§6).  Such a candidate
    is useless to the synthesizer regardless of its input/output behaviour,
    so refusing it here saves the replay batch and any solver work.

    Inside the search loop this stage is a cheap no-op safeguard: the chain
    checks safety *before* querying the pipeline with the same shared
    analyzer, so the verdict is a program-memo hit and the stage escalates.
    Its rejections matter when the pipeline is driven standalone (benches,
    library users).  The pipeline never caches a safety rejection in the
    equivalence cache: "unsafe" is a conservative static verdict, not a
    proof of non-equivalence.
    """

    name = "safety"

    def enabled(self, pipeline) -> bool:
        return pipeline.analyzer is not None

    def run(self, pipeline, source, candidate, window) -> StageVerdict:
        candidate_outcome = pipeline.analyzer.analyze(candidate)
        if candidate_outcome.safe:
            return StageVerdict(self.name, StageOutcome.ESCALATE,
                                detail="candidate statically safe")
        if not pipeline.analyzer.analyze(source).safe:
            return StageVerdict(self.name, StageOutcome.ESCALATE,
                                detail="source itself statically unsafe")
        kinds = ", ".join(sorted(k.value
                                 for k in candidate_outcome.violation_kinds()))
        result = EquivalenceResult(
            equivalent=False,
            reason=f"candidate rejected by static safety analysis ({kinds})")
        return StageVerdict(self.name, StageOutcome.REJECT, result)


class InterpreterReplayStage(VerificationStage):
    """Tier 1: replay the candidate on the pooled counterexamples.

    Counterexamples produced by the solver tiers of *earlier* queries are
    concrete inputs on which the source behaves differently from some past
    candidate; structurally similar candidates usually fail on the same
    inputs, so a handful of interpreter runs can refute them without any
    symbolic work (the Fig. 1 feedback edge, applied inside the pipeline).

    The stage is *adaptive*: the pipeline ranks pooled tests by how often
    each one refuted a recent candidate (``replay_plan``), a small probe of
    the top-ranked tests runs first, and only probe survivors pay for the
    full batch — which the lockstep tier executes vectorized, against
    observables precomputed once per pool refresh rather than re-derived
    per candidate.

    Inside the search loop this stage is a cheap no-op safeguard: the same
    counterexamples also join the chain's test suite, so candidates reaching
    the pipeline already pass them and the stage escalates after replaying
    the (small, ``max_pool_size``-capped) pool.  Its rejections matter when
    the pipeline is driven standalone — benches, library users, or stage
    lists without a test suite in front.
    """

    name = "replay"

    def enabled(self, pipeline) -> bool:
        return pipeline.options.interpreter_replay

    def run(self, pipeline, source, candidate, window) -> StageVerdict:
        tests, observables = pipeline.replay_plan(source)
        if not tests:
            return StageVerdict(self.name, StageOutcome.ESCALATE,
                                detail="empty counterexample pool")
        probe = pipeline.replay_probe_size
        if not 0 < probe < len(tests):
            probe = 0
        try:
            if probe:
                # Doomed candidates usually fail the most-refuting tests:
                # a short scalar probe catches them without touching the
                # rest of the pool.
                refuting = self._first_divergence(
                    pipeline, candidate, tests[:probe], observables[:probe])
                if refuting is not None:
                    pipeline.stats.replay_probe_refutes += 1
                    return self._reject(refuting)
            # One vectorized batch over the remaining pool: the candidate
            # is decoded once, reset images are shared, and the precomputed
            # ``observable()`` tuples give the engine a first-divergence
            # early exit — a short return pinpoints the refuting test.
            refuting = self._first_divergence(
                pipeline, candidate, tests[probe:], observables[probe:])
        except Exception as exc:  # broken candidate: let the solver tiers
            return StageVerdict(self.name, StageOutcome.ESCALATE,
                                detail=f"replay failed: {exc}")
        if refuting is not None:
            pipeline.stats.replay_batch_refutes += 1
            return self._reject(refuting)
        return StageVerdict(self.name, StageOutcome.ESCALATE,
                            detail=f"passed {len(tests)} pooled tests")

    @staticmethod
    def _first_divergence(pipeline, candidate, tests, observables):
        """The first pooled test ``candidate`` diverges on, or None."""
        got = pipeline.engine.run_batch(
            candidate, tests, expected_observables=observables)
        last = len(got) - 1
        if got and got[last].observable() != observables[last]:
            return tests[last]
        return None

    def _reject(self, refuting) -> StageVerdict:
        result = EquivalenceResult(
            equivalent=False, counterexample=refuting,
            reason="refuted by pooled counterexample")
        return StageVerdict(self.name, StageOutcome.REJECT, result)


class CacheLookupStage(VerificationStage):
    """Tier 2: look the canonical form up in the equivalence cache (§5 V)."""

    name = "cache"

    def enabled(self, pipeline) -> bool:
        return pipeline.options.enable_cache

    def run(self, pipeline, source, candidate, window) -> StageVerdict:
        cached = pipeline.cache.lookup(candidate)
        if cached is None:
            return StageVerdict(self.name, StageOutcome.ESCALATE,
                                detail="cache miss")
        outcome = StageOutcome.ACCEPT if cached.equivalent else StageOutcome.REJECT
        return StageVerdict(self.name, outcome, cached, detail="cache hit")


class WindowCheckStage(VerificationStage):
    """Tier 3: modular (window) verification of the changed region (§5 IV)."""

    name = "window"

    def __init__(self, checker: WindowEquivalenceChecker):
        self.checker = checker

    def enabled(self, pipeline) -> bool:
        return pipeline.options.modular_verification

    def run(self, pipeline, source, candidate, window) -> StageVerdict:
        if window is None:
            window = changed_window(source, candidate)
        if window is None:
            return StageVerdict(self.name, StageOutcome.ESCALATE,
                                detail="no single bounded window")
        result = self.checker.check(source, candidate, window)
        if result.unknown:
            return StageVerdict(self.name, StageOutcome.ESCALATE, result,
                                detail=result.reason)
        outcome = StageOutcome.ACCEPT if result.equivalent else StageOutcome.REJECT
        return StageVerdict(self.name, outcome, result)


class FullSymbolicStage(VerificationStage):
    """Tier 4: full-program symbolic equivalence (§4) — always concludes."""

    name = "full"

    def __init__(self, checker: EquivalenceChecker):
        self.checker = checker

    def enabled(self, pipeline) -> bool:
        return pipeline.options.full_symbolic

    def run(self, pipeline, source, candidate, window) -> StageVerdict:
        result = self.checker.check(source, candidate)
        outcome = StageOutcome.ACCEPT if result.equivalent else StageOutcome.REJECT
        return StageVerdict(self.name, outcome, result)
