"""Portfolio equivalence front end for the solver-backed pipeline stages.

The incremental-session checkers (:class:`~repro.equivalence.EquivalenceChecker`
and :class:`~repro.equivalence.WindowEquivalenceChecker`) win on the common
case — the source side is encoded and bit-blasted once, and every candidate
query reuses the blasted CNF plus the learned clauses of earlier queries —
but they have a worst case: a session polluted by learned clauses from
structurally unrelated candidates can make a later query *slower* than
solving it from scratch (the Table 4 ``sys_enter_open`` row, where the
incremental ablation barely broke even against fresh solving).

:class:`PortfolioEquivalenceChecker` removes that worst case without giving
up the common-case wins.  It keeps two front ends built from the same
checker factory:

* ``incremental`` — one long-lived session shared by every query against
  the same source (the classic setup), and
* ``fresh`` — a session reset at each *new* query, so each query starts
  from an unpolluted solver, but kept across budget slices of the *same*
  query so partial work accumulates.

and runs them on a **deterministic budget-doubling dovetail**: each front
end gets a small SAT-conflict budget; whoever concludes first wins; if both
exhaust the slice the budget is multiplied and the dovetail continues, up
to the configured ``max_conflicts``.  Per slice the front ends run in order
of an exponential moving average of *conflicts spent* — a deterministic
effort metric, so the schedule (and therefore the search trajectory) is
bit-identical across runs and across serial / thread / process executors.

This is a sequential simulation of running both solvers concurrently and
taking the first verdict: total work is bounded by a constant factor of the
better front end's work, and a pathological session can no longer consume
more than one capped slice before the clean solver gets its turn.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from ..equivalence import (
    EquivalenceChecker, EquivalenceOptions, EquivalenceResult,
)

__all__ = ["PortfolioEquivalenceChecker"]

#: The only unknown worth retrying with more budget; every other unknown
#: (imprecise encoding, unalignable effects, encoding failure) is a property
#: of the query itself and identical for both front ends.
_RETRYABLE_REASON = "solver budget exhausted"


class PortfolioEquivalenceChecker:
    """First-verdict-wins portfolio over two equivalence front ends.

    ``factory`` builds the underlying checkers (default
    :class:`~repro.equivalence.EquivalenceChecker`; the pipeline also wraps
    :class:`~repro.equivalence.WindowEquivalenceChecker` for the window
    stage).  Checkers must expose ``check(source, candidate, *rest)``,
    ``reset_session()``, ``conflict_budget`` and ``session_conflicts`` —
    duck-type compatible with what the pipeline stages already use.  Safe to
    pickle: the underlying checkers drop their solver sessions in
    ``__getstate__`` and the portfolio's own scheduling state is plain data.
    """

    FRONT_ENDS = ("incremental", "fresh")

    def __init__(self, options: Optional[EquivalenceOptions] = None,
                 factory: Callable = EquivalenceChecker):
        self.options = options or EquivalenceOptions()
        self._checkers = {name: factory(self.options)
                          for name in self.FRONT_ENDS}
        self.num_queries = 0
        self.total_time = 0.0
        #: Conclusive verdicts per front end (the bench's "who won" column).
        self.wins: Dict[str, int] = {name: 0 for name in self.FRONT_ENDS}
        #: Budget slices that ended exhausted and forced an escalation.
        self.escalations = 0
        self._reset_schedule()

    # ------------------------------------------------------------------ #
    def _reset_schedule(self) -> None:
        # EMA of conflicts spent per front end; the leader (lower EMA) runs
        # first in each slice.  Reset together with the sessions so every
        # executor backend starts each generation in an identical state.
        self._ema: Dict[str, float] = {name: 0.0 for name in self.FRONT_ENDS}
        self._fresh_query_key = None

    def reset_session(self) -> None:
        """Drop both front ends' solver state and the scheduling state."""
        for checker in self._checkers.values():
            checker.reset_session()
        self._reset_schedule()

    def _order(self):
        # Stable sort over the declaration order: ties (including the first
        # query, where both EMAs are zero) keep the incremental session in
        # the lead, and the whole schedule stays deterministic.
        return sorted(self.FRONT_ENDS, key=lambda name: self._ema[name])

    @staticmethod
    def _retryable(result: EquivalenceResult) -> bool:
        return result.unknown and result.reason.endswith(_RETRYABLE_REASON)

    # ------------------------------------------------------------------ #
    def check(self, source, candidate, *rest) -> EquivalenceResult:
        """Decide equivalence; first conclusive front-end verdict wins.

        Extra positional arguments (e.g. the :class:`Window` of a window
        query) are passed through to the underlying checkers and take part
        in the query identity used to reset the fresh front end.
        """
        started = time.perf_counter()
        self.num_queries += 1

        fresh = self._checkers["fresh"]
        query_key = (source.structural_key(), candidate.structural_key(),
                     rest)
        if query_key != self._fresh_query_key:
            # New query: the fresh front end starts from a clean solver but
            # keeps its session across the slices of this query.
            fresh.reset_session()
            self._fresh_query_key = query_key

        full = max(1, self.options.max_conflicts)
        budget = min(max(1, self.options.portfolio_initial_conflicts), full)
        growth = max(2, self.options.portfolio_growth)

        result: Optional[EquivalenceResult] = None
        try:
            while True:
                for name in self._order():
                    checker = self._checkers[name]
                    checker.conflict_budget = budget
                    before = checker.session_conflicts
                    result = checker.check(source, candidate, *rest)
                    spent = max(0, checker.session_conflicts - before)
                    self._ema[name] = 0.5 * self._ema[name] + 0.5 * spent
                    if not self._retryable(result):
                        self.wins[name] += 1
                        return result
                    self.escalations += 1
                if budget >= full:
                    # Both front ends exhausted the full budget: genuinely
                    # unknown, same as the single-checker behaviour.
                    return result
                budget = min(budget * growth, full)
        finally:
            self.total_time += time.perf_counter() - started

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, float]:
        """Scheduling counters (bench / diagnostic surface)."""
        summary: Dict[str, float] = {
            "queries": self.num_queries,
            "escalations": self.escalations,
            "seconds": round(self.total_time, 6),
        }
        for name in self.FRONT_ENDS:
            summary[f"wins_{name}"] = self.wins[name]
        return summary
