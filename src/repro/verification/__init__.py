"""Tiered candidate verification: safety → replay → cache → window → full.

The :class:`VerificationPipeline` is the single entry point the synthesis
loop uses to decide whether a candidate is formally equivalent to the
source program (paper §4–§5); see :mod:`repro.verification.pipeline`.  The
optional leading static-safety stage (fused analyzer pre-check) rejects
provably-unsafe candidates before any execution or solver work.
"""

from .portfolio import PortfolioEquivalenceChecker
from .stages import (
    CacheLookupStage, FullSymbolicStage, InterpreterReplayStage, StageOutcome,
    StageVerdict, StaticSafetyStage, VerificationStage, WindowCheckStage,
    changed_window,
)
from .pipeline import (
    PipelineOutcome, PipelineStats, StageStats, VerificationPipeline,
    summarize_verification_stats,
)

__all__ = [name for name in dir() if not name.startswith("_")]
