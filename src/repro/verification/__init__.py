"""Tiered candidate verification: replay → cache → window → full symbolic.

The :class:`VerificationPipeline` is the single entry point the synthesis
loop uses to decide whether a candidate is formally equivalent to the
source program (paper §4–§5); see :mod:`repro.verification.pipeline`.
"""

from .stages import (
    CacheLookupStage, FullSymbolicStage, InterpreterReplayStage, StageOutcome,
    StageVerdict, VerificationStage, WindowCheckStage, changed_window,
)
from .pipeline import (
    PipelineOutcome, PipelineStats, StageStats, VerificationPipeline,
    summarize_verification_stats,
)

__all__ = [name for name in dir() if not name.startswith("_")]
