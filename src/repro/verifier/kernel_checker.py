"""A model of the Linux kernel's in-kernel BPF static checker ("the verifier").

K2 keeps its own safety checks (:mod:`repro.safety`) and, as a fail-safe,
loads its best outputs into the kernel to weed out any program the *kernel
checker* rejects (paper §6, Table 5).  This module plays the role of that
kernel checker for the reproduction: it is an independent, stricter,
path-sensitive static analysis in the style of ``kernel/bpf/verifier.c``:

* it explores program paths one by one (no joins), tracking register types,
  constant values, stack initialization and verified packet bounds,
* it enforces the documented restrictions (read-only r10, no stores through
  context pointers, clobbered r1-r5 after calls, bounded and aligned memory
  accesses, scalar return values),
* it counts the number of instructions *examined* across all paths and
  rejects programs that exceed the complexity limit — the behaviour that
  makes even sub-4096-instruction programs unloadable in practice
  (paper §1, footnote 2),
* it rejects programs longer than the 4096-instruction limit for
  unprivileged program types.

Since the fused analyzer landed, both checkers walk the *same* abstract
semantics — the product domain of :mod:`repro.analysis` (provenance ×
tnums × intervals) with its transfer, branch refinement and per-point
checks — but remain distinct verdict procedures: the safety checker joins
states at merge points (dataflow), the kernel checker enumerates paths,
mirroring the paper's "distinct but overlapping checks" situation.  The
``legacy`` mode keeps the original :mod:`repro.bpf.memtypes`-based walk for
the ``--analysis`` ablation.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Set, Tuple

from ..analysis import AnalysisState, refine_branch, resolve_analysis_kind, transfer
from ..analysis.checks import (
    check_helper_args, check_memory_access, check_pointer_alu,
)
from ..bpf.cfg import CfgError, build_cfg
from ..bpf.memtypes import AbstractState, _refine_branch, _transfer
from ..bpf.opcodes import MAX_INSNS
from ..bpf.program import BpfProgram
from ..safety.safety_checker import SafetyChecker

__all__ = ["KernelCheckerVerdict", "KernelChecker"]


@dataclasses.dataclass
class KernelCheckerVerdict:
    """The kernel checker's accept/reject decision for one program."""

    accepted: bool
    reason: str = ""
    insns_processed: int = 0
    paths_explored: int = 0

    def __bool__(self) -> bool:
        return self.accepted


class KernelChecker:
    """Simplified ``verifier.c``: path-sensitive acceptance of BPF programs."""

    def __init__(self, insn_limit: int = MAX_INSNS,
                 complexity_limit: int = 1_000_000,
                 strict_alignment: bool = True,
                 mode: Optional[str] = None):
        self.insn_limit = insn_limit
        self.complexity_limit = complexity_limit
        self.strict_alignment = strict_alignment
        self.mode = resolve_analysis_kind(mode)
        self._safety = SafetyChecker(strict_alignment=strict_alignment,
                                     mode="legacy")

    # ------------------------------------------------------------------ #
    def load(self, program: BpfProgram) -> KernelCheckerVerdict:
        """Attempt to "load" the program, returning the checker's verdict."""
        instructions = program.instructions
        if not instructions:
            return KernelCheckerVerdict(False, "empty program")
        if len(instructions) > self.insn_limit:
            return KernelCheckerVerdict(
                False, f"program too large: {len(instructions)} > {self.insn_limit}")
        if not program.is_valid():
            return KernelCheckerVerdict(False, "malformed program")

        try:
            cfg = build_cfg(instructions)
        except CfgError as exc:
            return KernelCheckerVerdict(False, f"invalid control flow: {exc}")
        if not cfg.is_loop_free():
            return KernelCheckerVerdict(False, "back-edge (loop) detected")
        for block_index in cfg.unreachable_blocks():
            block = cfg.blocks[block_index]
            if not all(instructions[i].is_nop for i in block.instruction_indices):
                return KernelCheckerVerdict(False, "unreachable instructions")

        if self.mode == "fused":
            return self._do_check_fused(program)
        return self._do_check_legacy(program)

    # ------------------------------------------------------------------ #
    # Path-sensitive walk over the fused product domain (default).
    # ------------------------------------------------------------------ #
    def _do_check_fused(self, program: BpfProgram) -> KernelCheckerVerdict:
        instructions = program.instructions
        insns_processed = 0
        paths = 0
        visited: Set[Tuple] = set()
        stack: List[Tuple[int, AnalysisState]] = [
            (0, AnalysisState.entry(program.hook))]

        while stack:
            index, state = stack.pop()
            paths += 1
            while True:
                if insns_processed > self.complexity_limit:
                    return KernelCheckerVerdict(
                        False, "BPF program is too large; processed "
                               f"{insns_processed} insns",
                        insns_processed, paths)
                if not 0 <= index < len(instructions):
                    return KernelCheckerVerdict(
                        False, f"jump out of range to {index}",
                        insns_processed, paths)
                insn = instructions[index]
                insns_processed += 1

                reason = self._check_one_fused(program, insn, state, index)
                if reason is not None:
                    return KernelCheckerVerdict(False, reason,
                                                insns_processed, paths)

                if insn.is_exit:
                    break
                if insn.is_unconditional_jump:
                    index = index + 1 + insn.off
                    continue
                if insn.is_conditional_jump:
                    taken = refine_branch(state, insn, taken=True)
                    fallthrough = refine_branch(state, insn, taken=False)
                    taken_index = index + 1 + insn.off
                    signature = (taken_index,) + taken.signature()
                    if signature not in visited:
                        visited.add(signature)
                        stack.append((taken_index, taken))
                    state = fallthrough
                    index += 1
                    continue
                state = transfer(state, insn, program.hook)
                index += 1

        return KernelCheckerVerdict(True, "accepted", insns_processed, paths)

    def _check_one_fused(self, program: BpfProgram, insn,
                         state: AnalysisState, index: int) -> Optional[str]:
        """Per-instruction rules; returns a rejection reason or None."""
        if insn.is_nop:
            return None
        for reg in insn.regs_read():
            if not state.regs[reg].initialized:
                return f"R{reg} !read_ok at insn {index}"
        if 10 in insn.regs_written():
            return f"frame pointer is read only at insn {index}"
        if insn.is_alu:
            violations = check_pointer_alu(insn, state, index)
            if violations:
                return violations[0].message
        if insn.is_memory:
            violations = check_memory_access(program, insn, state, index,
                                             self.strict_alignment)
            if violations:
                return violations[0].message
        if insn.is_call:
            violations = check_helper_args(program, insn, state, index)
            if violations:
                return violations[0].message
        if insn.is_exit:
            if state.regs[0].is_pointer:
                return f"R0 leaks addr as return value at insn {index}"
        return None

    # ------------------------------------------------------------------ #
    # Original memtypes-based walk (the --analysis legacy ablation).
    # ------------------------------------------------------------------ #
    def _do_check_legacy(self, program: BpfProgram) -> KernelCheckerVerdict:
        instructions = program.instructions
        # Path-sensitive walk, mirroring the kernel's do_check() loop.
        insns_processed = 0
        paths = 0
        visited: Set[Tuple] = set()
        stack: List[Tuple[int, AbstractState]] = [
            (0, AbstractState.entry(program.hook))]

        while stack:
            index, state = stack.pop()
            paths += 1
            while True:
                if insns_processed > self.complexity_limit:
                    return KernelCheckerVerdict(
                        False, "BPF program is too large; processed "
                               f"{insns_processed} insns",
                        insns_processed, paths)
                if not 0 <= index < len(instructions):
                    return KernelCheckerVerdict(
                        False, f"jump out of range to {index}",
                        insns_processed, paths)
                insn = instructions[index]
                insns_processed += 1

                verdict = self._check_one(program, insn, state, index)
                if verdict is not None:
                    return KernelCheckerVerdict(False, verdict,
                                                insns_processed, paths)

                if insn.is_exit:
                    break
                if insn.is_unconditional_jump:
                    index = index + 1 + insn.off
                    continue
                if insn.is_conditional_jump:
                    taken = _refine_branch(state, insn, taken=True)
                    fallthrough = _refine_branch(state, insn, taken=False)
                    taken_index = index + 1 + insn.off
                    signature = self._signature(taken_index, taken)
                    if signature not in visited:
                        visited.add(signature)
                        stack.append((taken_index, taken))
                    state = fallthrough
                    index += 1
                    continue
                state = _transfer(state, insn, program.hook, index)
                index += 1

        return KernelCheckerVerdict(True, "accepted", insns_processed, paths)

    # ------------------------------------------------------------------ #
    def _check_one(self, program: BpfProgram, insn, state: AbstractState,
                   index: int) -> Optional[str]:
        """Per-instruction rules (legacy domain); returns a reason or None."""
        if insn.is_nop:
            return None
        for reg in insn.regs_read():
            if not state.regs[reg].initialized:
                return f"R{reg} !read_ok at insn {index}"
        if 10 in insn.regs_written():
            return f"frame pointer is read only at insn {index}"
        if insn.is_alu:
            violations = self._safety._check_pointer_alu(insn, state, index)
            if violations:
                return violations[0].message
        if insn.is_memory:
            violations = self._safety._check_memory_access(program, insn,
                                                           state, index)
            if violations:
                return violations[0].message
        if insn.is_exit:
            value = state.regs[0]
            if value.is_pointer:
                return f"R0 leaks addr as return value at insn {index}"
        return None

    @staticmethod
    def _signature(index: int, state: AbstractState) -> Tuple:
        regs = tuple((value.region.value, value.offset, value.const,
                      value.maybe_null, value.initialized)
                     for value in (state.regs[reg] for reg in range(11)))
        return (index, regs, state.packet_bound,
                frozenset(state.stack_written), tuple(sorted(state.stack)))
