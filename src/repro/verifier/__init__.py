"""A model of the Linux kernel's in-kernel BPF static checker."""

from .kernel_checker import KernelChecker, KernelCheckerVerdict

__all__ = [name for name in dir() if not name.startswith("_")]
