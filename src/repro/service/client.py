"""Client side of the serve protocol: what ``k2 submit`` etc. talk through."""

from __future__ import annotations

import time
from typing import List, Optional

from . import protocol
from .jobs import JobSpec

__all__ = ["DaemonClient", "DaemonUnavailable"]


class DaemonUnavailable(Exception):
    """No daemon is listening on the state directory's socket."""


class DaemonClient:
    """One-request-per-connection client for a :class:`K2Daemon`.

    Stateless: each call opens a fresh connection, so a client object can
    outlive daemon restarts.
    """

    def __init__(self, state_dir: str, timeout: float = 10.0):
        self.state_dir = str(state_dir)
        self.timeout = timeout

    def request(self, payload: dict) -> dict:
        try:
            sock = protocol.connect(self.state_dir, timeout=self.timeout)
        except OSError as exc:
            raise DaemonUnavailable(
                f"no k2 daemon at {self.state_dir!r} ({exc})") from exc
        try:
            with sock:
                protocol.send_message(sock, payload)
                response = protocol.recv_message(sock)
        except (OSError, ValueError) as exc:
            raise DaemonUnavailable(
                f"k2 daemon at {self.state_dir!r} dropped the "
                f"connection ({exc})") from exc
        if response is None:
            raise DaemonUnavailable(
                f"k2 daemon at {self.state_dir!r} closed without replying")
        return response

    # ------------------------------------------------------------------ #
    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def submit(self, spec: JobSpec) -> str:
        response = self.request({"op": "submit", "spec": spec.to_dict()})
        if not response.get("ok"):
            raise ValueError(response.get("error") or "submit rejected")
        return str(response["job"])

    def status(self, job_id: str) -> dict:
        return self._job_request("status", job_id)

    def result(self, job_id: str) -> dict:
        return self._job_request("result", job_id)

    def cancel(self, job_id: str) -> dict:
        return self._job_request("cancel", job_id)

    def jobs(self) -> List[dict]:
        response = self.request({"op": "jobs"})
        if not response.get("ok"):
            raise ValueError(response.get("error") or "jobs query failed")
        return list(response.get("jobs") or [])

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def _job_request(self, op: str, job_id: str) -> dict:
        response = self.request({"op": op, "job": str(job_id)})
        if not response.get("ok"):
            raise ValueError(response.get("error") or f"{op} failed")
        return dict(response["job"])

    # ------------------------------------------------------------------ #
    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll: float = 0.2) -> dict:
        """Poll until the job is terminal; returns its ``result``-shaped dict.

        Raises :class:`TimeoutError` if ``timeout`` elapses first (the job
        keeps running — waiting is observation, not control).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.result(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout}s")
            time.sleep(poll)
