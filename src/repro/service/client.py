"""Client side of the serve protocol: what ``k2 submit`` etc. talk through.

Speaks protocol v1 (typed requests carrying ``proto``/capabilities; see
:mod:`repro.service.protocol`) and understands both v1 structured errors
and legacy v0 string errors, so one client binary spans a daemon upgrade.

Two interaction shapes:

* one-shot requests (``ping``/``submit``/``status``/...): one connection,
  one JSON line each way;
* the ``watch`` stream: one connection held open while the daemon pushes
  job events — :meth:`DaemonClient.watch` wraps it in a generator with
  reconnect-and-resume (jittered exponential backoff, ``after``/``run``
  bookkeeping), and :meth:`DaemonClient.wait` is built on it, so waiting
  for a job costs zero status polls while the stream is healthy.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Iterator, List, Optional

from . import protocol
from .jobs import JobSpec

__all__ = ["DaemonClient", "DaemonUnavailable"]


class DaemonUnavailable(Exception):
    """No daemon is listening on the state directory's socket."""


class DaemonClient:
    """One-request-per-connection client for a :class:`K2Daemon`.

    Stateless: each call opens a fresh connection, so a client object can
    outlive daemon restarts.
    """

    def __init__(self, state_dir: str, timeout: float = 10.0):
        self.state_dir = str(state_dir)
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def request(self, payload: dict) -> dict:
        """One raw request → raw response dict (compat / debugging door).

        Typed callers go through :meth:`request_typed`; this stays public
        because a dict in, dict out escape hatch is the cheapest way to
        poke a daemon (and what the v0-compat tests speak).
        """
        try:
            sock = protocol.connect(self.state_dir, timeout=self.timeout)
        except OSError as exc:
            raise DaemonUnavailable(
                f"no k2 daemon at {self.state_dir!r} ({exc})") from exc
        try:
            with sock:
                protocol.send_message(sock, payload)
                response = protocol.recv_message(sock)
        except (OSError, ValueError) as exc:
            raise DaemonUnavailable(
                f"k2 daemon at {self.state_dir!r} dropped the "
                f"connection ({exc})") from exc
        if response is None:
            raise DaemonUnavailable(
                f"k2 daemon at {self.state_dir!r} closed without replying")
        return response

    def request_typed(self, request: protocol.Request) -> protocol.Response:
        """Send a typed request; raise ``ValueError`` on a daemon error."""
        response = protocol.decode_response(self.request(request.to_wire()))
        if isinstance(response, protocol.ErrorResponse):
            raise ValueError(response.message or response.code)
        return response

    # ------------------------------------------------------------------ #
    # One-shot requests
    # ------------------------------------------------------------------ #
    def ping(self) -> dict:
        return self.request(protocol.PingRequest().to_wire())

    def submit(self, spec: JobSpec) -> str:
        response = self.request_typed(
            protocol.SubmitRequest(spec=spec.to_dict()))
        return str(response.job)

    def status(self, job_id: str) -> dict:
        return dict(self.request_typed(
            protocol.StatusRequest(job=str(job_id))).job)

    def result(self, job_id: str) -> dict:
        return dict(self.request_typed(
            protocol.ResultRequest(job=str(job_id))).job)

    def cancel(self, job_id: str) -> dict:
        return dict(self.request_typed(
            protocol.CancelRequest(job=str(job_id))).job)

    def jobs(self) -> List[dict]:
        return list(self.request_typed(protocol.JobsRequest()).jobs)

    def shutdown(self) -> dict:
        return self.request(protocol.ShutdownRequest().to_wire())

    # ------------------------------------------------------------------ #
    # Event streaming
    # ------------------------------------------------------------------ #
    def watch(self, job_id: str, timeout: Optional[float] = None,
              after: int = 0, reconnect_attempts: int = 6,
              backoff_base: float = 0.05, backoff_cap: float = 2.0
              ) -> Iterator[protocol.EventResponse]:
        """Yield a job's pushed events until its terminal event.

        Holds one connection open per stream segment; the daemon pushes an
        event line at every job state change and generation boundary, so
        consuming this generator costs **zero** status polls.  When the
        stream drops (daemon restart, network hiccup) the generator
        reconnects with jittered exponential backoff and resumes from the
        last seen sequence number — carrying the daemon incarnation
        (``run``) so a *restarted* daemon replays its fresh stream from
        the start instead of the resume point silently skipping events.

        Raises :class:`DaemonUnavailable` after ``reconnect_attempts``
        consecutive failed reconnects, and :class:`TimeoutError` when
        ``timeout`` elapses (the job keeps running — watching is
        observation, not control).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        run = ""
        failures = 0
        while True:
            self._check_deadline(deadline, job_id)
            try:
                sock = protocol.connect(self.state_dir, timeout=self.timeout)
            except OSError as exc:
                failures += 1
                if failures > reconnect_attempts:
                    raise DaemonUnavailable(
                        f"no k2 daemon at {self.state_dir!r} after "
                        f"{failures} attempts ({exc})") from exc
                self._backoff(failures, backoff_base, backoff_cap, deadline,
                              job_id)
                continue
            try:
                with sock:
                    protocol.send_message(
                        sock, protocol.WatchRequest(
                            job=str(job_id), after=after, run=run).to_wire())
                    reader = protocol.LineReader(sock)
                    while True:
                        self._check_deadline(deadline, job_id)
                        sock.settimeout(1.0)
                        try:
                            message = reader.read_message()
                        except socket.timeout:
                            continue  # idle stream; buffer is intact
                        if message is None:
                            break  # peer closed: reconnect and resume
                        response = protocol.decode_response(message)
                        if isinstance(response, protocol.ErrorResponse):
                            raise ValueError(response.message
                                             or response.code)
                        if not isinstance(response,
                                          protocol.EventResponse):
                            raise protocol.ProtocolError(
                                "bad-message",
                                "watch streams carry only events")
                        failures = 0
                        after = response.seq
                        run = response.run
                        yield response
                        if response.final:
                            return
            except (OSError, protocol.ProtocolError):
                pass  # stream segment died: fall through to reconnect
            failures += 1
            if failures > reconnect_attempts:
                raise DaemonUnavailable(
                    f"k2 daemon at {self.state_dir!r} kept dropping the "
                    f"watch stream for job {job_id}")
            self._backoff(failures, backoff_base, backoff_cap, deadline,
                          job_id)

    def _check_deadline(self, deadline: Optional[float],
                        job_id: str) -> None:
        if deadline is not None and time.monotonic() > deadline:
            raise TimeoutError(f"job {job_id} not terminal before deadline")

    def _backoff(self, failures: int, base: float, cap: float,
                 deadline: Optional[float], job_id: str) -> None:
        """Jittered exponential backoff between reconnect attempts."""
        delay = min(cap, base * (2 ** (failures - 1)))
        delay *= 0.5 + random.random()  # full jitter in [0.5x, 1.5x)
        if deadline is not None:
            delay = min(delay, max(0.0, deadline - time.monotonic()))
            if delay <= 0:
                raise TimeoutError(
                    f"job {job_id} not terminal before deadline")
        time.sleep(delay)

    # ------------------------------------------------------------------ #
    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll: float = 0.2) -> dict:
        """Block until the job is terminal; returns its full record.

        Event-driven: consumes the :meth:`watch` stream and returns the
        job record carried by the terminal event — zero status polls while
        the stream is healthy.  Status polling (every ``poll`` seconds)
        remains only as the documented fallback when the stream cannot be
        held (e.g. a daemon rolling through restarts faster than the
        reconnect budget), so waiting still converges there.

        Raises :class:`TimeoutError` if ``timeout`` elapses first (the job
        keeps running — waiting is observation, not control).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            for event in self.watch(job_id, timeout=timeout):
                if event.final:
                    job = (event.data or {}).get("job")
                    if job:
                        return dict(job)
                    break  # terminal but bare: fetch the record below
        except (DaemonUnavailable, ValueError):
            pass  # stream lost or rejected: fall back to polling
        while True:
            try:
                job = self.result(job_id)
                if job["state"] in ("done", "failed", "cancelled"):
                    return job
            except DaemonUnavailable:
                pass  # daemon restarting; keep polling until the deadline
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still running after {timeout}s")
            time.sleep(poll)
