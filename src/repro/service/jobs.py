"""Job specifications and the journaled queue of the serve daemon.

A :class:`JobSpec` is the JSON-safe description of one synthesis request —
what ``k2 submit`` sends and what the daemon turns into a
:class:`~repro.synthesis.SearchOptions` + source program.  A :class:`Job`
wraps a spec with queue state, progress, attempts and (eventually) the
result summary.

Durability: the queue journals every state change as one JSON line in
``jobs.jsonl`` inside the daemon state directory (append-only, latest
record per job wins — the same recovery-by-replay shape as the verdict
store).  On daemon start the journal is replayed and any job that was
``running`` when the previous daemon died is requeued; its search then
resumes from its last checkpoint in the shared verdict store, so a daemon
crash costs at most one generation of work per in-flight job.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from typing import Dict, List, Optional

from ..bpf import BpfProgram, HookType, assemble, get_hook
from ..bpf.maps import MapEnvironment
from ..corpus import get_benchmark
from ..equivalence import EquivalenceOptions
from ..synthesis import SearchOptions
from ..synthesis.cost import PerformanceGoal

__all__ = ["JOB_STATES", "JobSpec", "Job", "JobQueue"]

#: ``queued``/``running`` are live; the rest are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


@dataclasses.dataclass
class JobSpec:
    """One synthesis request, as plain JSON-safe data."""

    #: Corpus benchmark name, or ``None`` with ``program_text`` set.
    benchmark: Optional[str] = None
    #: BPF assembly text (used when ``benchmark`` is None).
    program_text: Optional[str] = None
    hook: str = "xdp"
    goal: str = "size"
    iterations: int = 2000
    settings: int = 4
    seed: int = 0
    #: Generation length; checkpoints are written at generation boundaries,
    #: so this bounds the work a crash can lose.  The service default is
    #: deliberately finite (unlike the library's ``None``).
    sync_interval: Optional[int] = 250
    num_workers: int = 1
    executor: str = "auto"
    engine: str = "batch"
    analysis: str = "fused"
    windowed: bool = False
    window_size: int = 24
    window_overlap: int = 8
    #: Per-query solver conflict budget (``Solver.set_conflict_budget``):
    #: a hung SMT query degrades to ``unknown`` and the tier escalates, so
    #: one pathological candidate can never stall the fleet.  ``None``
    #: keeps the library default.
    conflict_budget: Optional[int] = None
    #: Scheduling priority: higher runs first; FIFO within a priority.
    priority: int = 0
    #: Split the job's chains into this many contiguous shards, farmed out
    #: to peer daemons (or run locally) and merged deterministically — see
    #: :mod:`repro.service.shards` for the exact semantics (sharding
    #: partitions the cross-chain *sharing domain*, so placement never
    #: changes results).  ``1`` keeps the whole job in one controller.
    shards: int = 1
    #: Cross-chain sharing knobs (mirror ``SearchOptions``).  Disable both
    #: to make a sharded run bit-identical to its unsharded counterpart.
    share_cache: bool = True
    share_counterexamples: bool = True
    #: Internal: the shard descriptor of a farmed-out sub-job
    #: (:func:`repro.service.shards.plan_shards` entry).  Clients never set
    #: this; coordinators do when submitting shard work to a peer.
    shard: Optional[dict] = None

    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        if not self.benchmark and not self.program_text:
            raise ValueError("job spec needs a benchmark or program_text")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if self.settings <= 0:
            raise ValueError("settings must be positive")
        if self.conflict_budget is not None and self.conflict_budget <= 0:
            raise ValueError("conflict_budget must be positive")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shards > 1 and self.windowed:
            # Windows compose sequentially (each search base is the
            # previous window's stitch), so they cannot be farmed out in
            # parallel; chains can.
            raise ValueError("windowed jobs are not shardable")
        if self.shard is not None:
            for field in ("index", "of", "lo", "hi", "total"):
                if field not in self.shard:
                    raise ValueError(f"shard descriptor missing {field!r}")

    def build_program(self) -> BpfProgram:
        if self.benchmark:
            return get_benchmark(self.benchmark).program()
        return BpfProgram(instructions=assemble(self.program_text),
                          hook=get_hook(HookType(self.hook)),
                          maps=MapEnvironment(), name="submitted")

    def search_options(self, store_path: Optional[str],
                       checkpoint_key: Optional[str],
                       generation_hook=None,
                       progress_listener=None) -> SearchOptions:
        """The fully-wired options for running this spec under the daemon."""
        equivalence = EquivalenceOptions()
        if self.conflict_budget is not None:
            equivalence = dataclasses.replace(
                equivalence, max_conflicts=int(self.conflict_budget))
        goal = PerformanceGoal.LATENCY if self.goal == "latency" \
            else PerformanceGoal.INSTRUCTION_COUNT
        return SearchOptions(
            goal=goal,
            iterations_per_chain=int(self.iterations),
            num_parameter_settings=int(self.settings),
            seed=int(self.seed),
            sync_interval=self.sync_interval,
            num_workers=int(self.num_workers),
            executor=self.executor,
            engine=self.engine,
            analysis=self.analysis,
            window_mode=bool(self.windowed),
            window_size=int(self.window_size),
            window_overlap=int(self.window_overlap),
            share_cache=bool(self.share_cache),
            share_counterexamples=bool(self.share_counterexamples),
            equivalence=equivalence,
            store_path=store_path,
            checkpoint_key=checkpoint_key,
            generation_hook=generation_hook,
            progress_listener=progress_listener)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        known = {field.name for field in dataclasses.fields(cls)}
        spec = cls(**{key: value for key, value in data.items()
                      if key in known})
        spec.validate()
        return spec


@dataclasses.dataclass
class Job:
    """Queue state wrapped around one spec."""

    id: str
    spec: JobSpec
    state: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Times the daemon (re)started this job: crash retries and
    #: restart-resumes both count, cancellations do not.
    attempts: int = 0
    error: Optional[str] = None
    #: ``{"generation": n, "total": m}`` while running.
    progress: Dict[str, int] = dataclasses.field(default_factory=dict)
    result: Optional[dict] = None
    cancel_requested: bool = False
    #: Workers the scheduler carved out of the daemon pool budget for the
    #: current (or last) run of this job; ``None`` before the first claim.
    workers_granted: Optional[int] = None

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    def to_dict(self, with_result: bool = True) -> dict:
        data = {
            "id": self.id,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "error": self.error,
            "progress": dict(self.progress),
            "cancel_requested": self.cancel_requested,
            "workers_granted": self.workers_granted,
        }
        if with_result:
            data["result"] = self.result
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        return cls(
            id=str(data["id"]),
            spec=JobSpec.from_dict(data["spec"]),
            state=str(data["state"]),
            submitted_at=float(data.get("submitted_at") or 0.0),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            attempts=int(data.get("attempts") or 0),
            error=data.get("error"),
            progress=dict(data.get("progress") or {}),
            result=data.get("result"),
            cancel_requested=bool(data.get("cancel_requested")),
            workers_granted=data.get("workers_granted"))


class JobQueue:
    """Thread-safe, journaled FIFO of jobs.

    The request-server thread submits and cancels; the scheduler thread
    claims and completes.  Every mutation goes through :meth:`persist`,
    which appends the job's full snapshot to the journal — replaying the
    journal (latest line per id wins) reconstructs the queue exactly.
    """

    def __init__(self, journal_path: str):
        self.journal_path = journal_path
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._next_index = 1
        self._load()

    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        if not os.path.exists(self.journal_path):
            return
        with open(self.journal_path, "r", encoding="utf-8") as handle:
            for line in handle:
                if not line.strip():
                    continue
                try:
                    job = Job.from_dict(json.loads(line))
                except (ValueError, TypeError, KeyError):
                    continue  # torn trailing line: lose one update, not all
                if job.id not in self._jobs:
                    self._order.append(job.id)
                self._jobs[job.id] = job
        for job in self._jobs.values():
            index = _index_of(job.id)
            if index is not None:
                self._next_index = max(self._next_index, index + 1)
            if job.state == "running":
                # The previous daemon died mid-job; requeue it — the search
                # resumes from its last checkpoint in the verdict store.
                job.state = "queued"
                self.persist(job)

    def persist(self, job: Job) -> None:
        with self._lock:
            line = json.dumps(job.to_dict(), sort_keys=True,
                              separators=(",", ":")) + "\n"
            with open(self.journal_path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())

    # ------------------------------------------------------------------ #
    def submit(self, spec: JobSpec) -> Job:
        with self._lock:
            job = Job(id=f"j{self._next_index:04d}", spec=spec,
                      submitted_at=time.time())
            self._next_index += 1
            self._jobs[job.id] = job
            self._order.append(job.id)
            self.persist(job)
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(str(job_id))

    def jobs(self) -> List[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def next_runnable(self) -> Optional[Job]:
        """Best queued, uncancelled job: highest priority, then FIFO.

        FIFO-with-budgets fairness lives in the scheduler, not here: the
        queue only ranks; the daemon clamps the head job's worker grant to
        whatever remains of the pool budget rather than skipping it, so a
        wide job can never be starved by a stream of narrow ones.
        """
        with self._lock:
            best = None
            for position, job_id in enumerate(self._order):
                job = self._jobs[job_id]
                if job.state != "queued" or job.cancel_requested:
                    continue
                rank = (-int(job.spec.priority), position)
                if best is None or rank < best[0]:
                    best = (rank, job)
            return None if best is None else best[1]

    def request_cancel(self, job_id: str) -> Optional[Job]:
        """Flag a job for cancellation; queued jobs cancel immediately.

        A running job is stopped by the daemon at its next generation
        boundary (the search's generation hook observes the flag).
        Terminal jobs are left untouched.
        """
        with self._lock:
            job = self._jobs.get(str(job_id))
            if job is None or job.terminal:
                return job
            job.cancel_requested = True
            if job.state == "queued":
                job.state = "cancelled"
                job.finished_at = time.time()
            self.persist(job)
            return job


def _index_of(job_id: str) -> Optional[int]:
    """Numeric suffix of a ``jNNNN`` id (None for foreign id formats)."""
    if job_id.startswith("j") and job_id[1:].isdigit():
        return int(job_id[1:])
    return None
