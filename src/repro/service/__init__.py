"""Synthesis-as-a-service: the ``k2 serve`` daemon (ROADMAP item 1).

The package turns the one-shot search pipeline into a long-lived local
service:

* :mod:`repro.service.protocol` — newline-delimited JSON over a local
  socket (``AF_UNIX`` where available, loopback TCP elsewhere);
* :mod:`repro.service.jobs` — job specs, states and the journaled queue
  that survives daemon restarts;
* :mod:`repro.service.daemon` — :class:`K2Daemon`: the scheduler loop, the
  request server, worker supervision and graceful shutdown;
* :mod:`repro.service.client` — :class:`DaemonClient`: what the
  ``k2 submit|status|result|cancel`` subcommands talk through.

Fault tolerance is layered on the checkpointed controller
(:mod:`repro.synthesis.checkpoint`): every job runs with
``checkpoint_key=job id`` against the daemon's shared verdict store, so a
SIGKILL'd worker costs one generation retry, a killed daemon resumes every
in-flight job from its last generation boundary on restart, and both paths
produce results bit-identical to an uninterrupted run.
"""

from .client import DaemonClient, DaemonUnavailable
from .daemon import K2Daemon
from .jobs import Job, JobQueue, JobSpec, JOB_STATES

__all__ = ["DaemonClient", "DaemonUnavailable", "K2Daemon",
           "Job", "JobQueue", "JobSpec", "JOB_STATES"]
