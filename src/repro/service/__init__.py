"""Synthesis-as-a-service: the ``k2 serve`` daemon (ROADMAP item 1).

The package turns the one-shot search pipeline into a long-lived local
service:

* :mod:`repro.service.protocol` — versioned, typed newline-delimited JSON
  over a local socket (``AF_UNIX`` where available, loopback TCP
  elsewhere), with a one-release compat shim for unversioned v0 peers;
* :mod:`repro.service.jobs` — job specs, states, priorities and the
  journaled queue that survives daemon restarts;
* :mod:`repro.service.daemon` — :class:`K2Daemon`: the concurrent
  scheduler (per-job worker grants from a daemon-wide budget), the
  request server, the event broker behind ``watch`` streams, the shard
  coordinator, worker supervision and graceful shutdown;
* :mod:`repro.service.shards` — chain sharding: split a job's chains
  across peer daemons and merge the results bit-identically;
* :mod:`repro.service.client` — :class:`DaemonClient`: what the
  ``k2 submit|status|result|cancel`` subcommands talk through, including
  the event-driven :meth:`~repro.service.client.DaemonClient.watch` /
  :meth:`~repro.service.client.DaemonClient.wait` pair.

Fault tolerance is layered on the checkpointed controller
(:mod:`repro.synthesis.checkpoint`): every job runs with
``checkpoint_key=job id`` against the daemon's shared verdict store, so a
SIGKILL'd worker costs one generation retry, a killed daemon resumes every
in-flight job from its last generation boundary on restart, and both paths
produce results bit-identical to an uninterrupted run.
"""

from .client import DaemonClient, DaemonUnavailable
from .daemon import EventBroker, K2Daemon
from .jobs import Job, JobQueue, JobSpec, JOB_STATES
from .protocol import CAPABILITIES, PROTO_VERSION
from .shards import merge_shard_payloads, plan_shards, run_shard

__all__ = ["DaemonClient", "DaemonUnavailable", "EventBroker", "K2Daemon",
           "Job", "JobQueue", "JobSpec", "JOB_STATES",
           "CAPABILITIES", "PROTO_VERSION",
           "merge_shard_payloads", "plan_shards", "run_shard"]
