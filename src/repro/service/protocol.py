"""Wire protocol of the serve daemon: versioned line-delimited JSON.

Transport
---------
Addressing goes through the daemon *state directory*: an ``AF_UNIX``
socket at ``<state>/daemon.sock`` where the platform has one, otherwise a
loopback TCP socket whose ephemeral port is published in
``<state>/daemon.port`` (the same degrade-don't-die posture as the verdict
store's lock fallback).  Every message is one JSON object terminated by
``\\n``; a torn line simply fails its JSON parse and is answered with an
error.  Most operations are one request / one response / one connection;
``watch`` keeps the connection open and the daemon pushes a *stream* of
event lines until the watched job is terminal (or the peer goes away).

Versioning (protocol v1)
------------------------
Requests and responses are typed dataclasses (:class:`Request` /
:class:`Response` subclasses below) with a single codec shared by daemon
and client: :func:`decode_request`, :meth:`Message.to_wire` and
:func:`decode_response`.  The rules:

* every v1 message carries ``proto`` (an integer, currently
  :data:`PROTO_VERSION`); ``ping`` additionally exchanges each side's
  ``proto_version`` and capability list, so clients feature-detect instead
  of guessing;
* **unknown fields are ignored** on decode (dataclass fields are the
  schema), so either side may add fields without breaking the other;
* unknown *request types* get a structured :class:`ErrorResponse`
  (``{"code": "unknown-op", ...}``), never a dropped connection;
* **v0 compat shim** (one release): a request without a ``proto`` field is
  treated as a legacy v0 dict request and answered in the v0 shape —
  ``error`` is a plain string rather than a ``{code, message}`` object and
  no ``proto`` field is attached.  The daemon decides per-connection from
  the request it received; v0 clients never see v1-only framing.

Bumping :data:`PROTO_VERSION` is reserved for changes the field rules
above cannot absorb (re-typed fields, changed semantics of an existing
op); additive changes (new ops, new fields, new capabilities) must not
bump it.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import socket
from typing import ClassVar, Dict, List, Optional, Type

__all__ = ["SOCKET_NAME", "PORT_FILE", "MAX_LINE_BYTES", "PROTO_VERSION",
           "CAPABILITIES", "has_unix_sockets", "bind_server", "connect",
           "send_message", "recv_message", "LineReader", "ProtocolError",
           "Message", "Request", "Response",
           "PingRequest", "SubmitRequest", "StatusRequest", "ResultRequest",
           "CancelRequest", "JobsRequest", "WatchRequest", "ShutdownRequest",
           "PingResponse", "SubmitResponse", "JobResponse", "JobsResponse",
           "ShutdownResponse", "EventResponse", "ErrorResponse",
           "decode_request", "decode_response", "response_to_wire"]

SOCKET_NAME = "daemon.sock"
PORT_FILE = "daemon.port"

#: Upper bound on one message line; a submit carrying a program listing is
#: a few KB, so anything near this is a protocol error, not a real request.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Current protocol generation.  See the module docstring for the bump
#: policy: additive changes never bump this.
PROTO_VERSION = 1

#: What this build of the daemon can do, advertised on ``ping``.  Clients
#: feature-detect on these strings, never on version arithmetic.
CAPABILITIES = ("jobs-v1", "watch", "shards", "concurrent-scheduler",
                "typed-errors")


class ProtocolError(ValueError):
    """A structurally-invalid message (carries a machine-readable code)."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


# --------------------------------------------------------------------------- #
# Transport
# --------------------------------------------------------------------------- #
def has_unix_sockets() -> bool:
    return hasattr(socket, "AF_UNIX")


def _socket_path(state_dir: str) -> str:
    return os.path.join(state_dir, SOCKET_NAME)


def _port_path(state_dir: str) -> str:
    return os.path.join(state_dir, PORT_FILE)


def bind_server(state_dir: str) -> socket.socket:
    """Create, bind and listen the daemon's server socket.

    A stale ``AF_UNIX`` socket file from a killed daemon is unlinked before
    binding — daemon liveness is probed via ``ping``, never inferred from
    the file's existence.  On TCP platforms the kernel picks the port and
    :data:`PORT_FILE` publishes it for clients.
    """
    if has_unix_sockets():
        path = _socket_path(state_dir)
        with contextlib.suppress(OSError):
            os.unlink(path)
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(path)
    else:  # pragma: no cover - non-POSIX platforms
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.bind(("127.0.0.1", 0))
        with open(_port_path(state_dir), "w", encoding="utf-8") as handle:
            handle.write(str(server.getsockname()[1]))
    server.listen(16)
    return server


def connect(state_dir: str, timeout: Optional[float] = 10.0) -> socket.socket:
    """Connect to the daemon addressed by ``state_dir``.

    Raises :class:`OSError` (including :class:`FileNotFoundError` /
    :class:`ConnectionRefusedError`) when no daemon is listening; the
    client wraps that into :class:`~repro.service.client.DaemonUnavailable`.
    """
    if has_unix_sockets():
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(_socket_path(state_dir))
        return sock
    with open(_port_path(state_dir), "r", encoding="utf-8") as handle:  # pragma: no cover
        port = int(handle.read().strip())
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)  # pragma: no cover
    return sock  # pragma: no cover


def send_message(sock: socket.socket, message: dict) -> None:
    sock.sendall(json.dumps(message, sort_keys=True,
                            separators=(",", ":")).encode("utf-8") + b"\n")


class LineReader:
    """Buffered newline-framed reader over a socket.

    The one-shot :func:`recv_message` discards whatever trails the first
    newline in its final ``recv`` — fine for one-response connections,
    fatal for a ``watch`` stream where several event lines can land in one
    TCP segment.  This reader buffers the remainder, so every line is
    delivered exactly once.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._buffer = b""
        self._eof = False

    def read_message(self) -> Optional[dict]:
        """The next JSON object line; ``None`` once the peer closed."""
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line, self._buffer = (self._buffer[:newline],
                                      self._buffer[newline + 1:])
                if not line.strip():
                    continue
                message = json.loads(line.decode("utf-8"))
                if not isinstance(message, dict):
                    raise ProtocolError("bad-message",
                                        "protocol messages must be "
                                        "JSON objects")
                return message
            if self._eof:
                return None
            chunk = self._sock.recv(65536)
            if not chunk:
                self._eof = True
                continue
            self._buffer += chunk
            if len(self._buffer) > MAX_LINE_BYTES:
                raise ProtocolError("line-too-long",
                                    "message exceeds protocol line limit")


def recv_message(sock: socket.socket) -> Optional[dict]:
    """Read one newline-terminated JSON object; ``None`` on a closed peer.

    One-shot convenience for single-response exchanges; streaming
    consumers must hold a :class:`LineReader` instead.
    """
    return LineReader(sock).read_message()


# --------------------------------------------------------------------------- #
# Typed messages
# --------------------------------------------------------------------------- #
@dataclasses.dataclass
class Message:
    """Base of every typed wire message.

    The dataclass fields *are* the schema: :meth:`from_wire` keeps known
    fields and silently ignores the rest (forward compatibility), and
    :meth:`to_wire` emits exactly the fields plus the envelope (``proto``
    and, where applicable, ``op``/``ok``).
    """

    @classmethod
    def from_wire(cls, data: dict) -> "Message":
        names = {field.name for field in dataclasses.fields(cls)}
        try:
            return cls(**{key: value for key, value in data.items()
                          if key in names})
        except TypeError as exc:
            raise ProtocolError("bad-message", str(exc)) from exc

    def _fields(self) -> dict:
        return {field.name: getattr(self, field.name)
                for field in dataclasses.fields(self)}


@dataclasses.dataclass
class Request(Message):
    op: ClassVar[str] = ""

    def to_wire(self, proto: int = PROTO_VERSION) -> dict:
        payload = self._fields()
        payload["op"] = self.op
        if proto:
            payload["proto"] = proto
        return payload


@dataclasses.dataclass
class PingRequest(Request):
    op: ClassVar[str] = "ping"
    #: The *client's* protocol generation and capabilities — the daemon
    #: answers with its own, completing the exchange.
    proto_version: int = PROTO_VERSION
    capabilities: List[str] = dataclasses.field(
        default_factory=lambda: list(CAPABILITIES))


@dataclasses.dataclass
class SubmitRequest(Request):
    op: ClassVar[str] = "submit"
    spec: dict = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class StatusRequest(Request):
    op: ClassVar[str] = "status"
    job: str = ""


@dataclasses.dataclass
class ResultRequest(Request):
    op: ClassVar[str] = "result"
    job: str = ""


@dataclasses.dataclass
class CancelRequest(Request):
    op: ClassVar[str] = "cancel"
    job: str = ""


@dataclasses.dataclass
class JobsRequest(Request):
    op: ClassVar[str] = "jobs"


@dataclasses.dataclass
class WatchRequest(Request):
    op: ClassVar[str] = "watch"
    job: str = ""
    #: Resume the stream after this event sequence number (0 = from the
    #: start of what the daemon still holds).  Lets a reconnecting client
    #: skip events it has already seen.
    after: int = 0
    #: The daemon incarnation (``EventResponse.run``) the client's
    #: ``after`` belongs to.  Event sequence numbers are per-incarnation:
    #: a restarted daemon serves the stream from the beginning when the
    #: incarnations differ, instead of silently skipping events.
    run: str = ""


@dataclasses.dataclass
class ShutdownRequest(Request):
    op: ClassVar[str] = "shutdown"


REQUEST_TYPES: Dict[str, Type[Request]] = {
    cls.op: cls for cls in (PingRequest, SubmitRequest, StatusRequest,
                            ResultRequest, CancelRequest, JobsRequest,
                            WatchRequest, ShutdownRequest)
}


def decode_request(data: dict) -> tuple:
    """``(request, proto)`` for a raw wire dict.

    ``proto`` is 0 for legacy v0 requests (no ``proto`` field) — the
    dispatcher threads it back through :func:`response_to_wire` so v0
    clients get v0-shaped responses.  Unknown ops raise a typed
    :class:`ProtocolError` the dispatcher turns into a structured error.
    """
    try:
        proto = int(data.get("proto") or 0)
    except (TypeError, ValueError):
        raise ProtocolError("bad-message", "proto must be an integer")
    op = data.get("op")
    cls = REQUEST_TYPES.get(op)
    if cls is None:
        raise ProtocolError("unknown-op", f"unknown op {op!r}")
    return cls.from_wire(data), proto


# --------------------------------------------------------------------------- #
@dataclasses.dataclass
class Response(Message):
    ok: ClassVar[bool] = True

    def to_wire(self, proto: int = PROTO_VERSION) -> dict:
        payload = self._fields()
        payload["ok"] = self.ok
        if proto:
            payload["proto"] = proto
        return payload


@dataclasses.dataclass
class PingResponse(Response):
    pid: int = 0
    jobs: int = 0
    stopping: bool = False
    proto_version: int = PROTO_VERSION
    capabilities: List[str] = dataclasses.field(
        default_factory=lambda: list(CAPABILITIES))
    #: Scheduler occupancy (informational; absent in v0 daemons).
    running: int = 0
    max_concurrent_jobs: int = 1
    worker_budget: int = 1


@dataclasses.dataclass
class SubmitResponse(Response):
    job: str = ""


@dataclasses.dataclass
class JobResponse(Response):
    """status / result / cancel all answer with one job snapshot."""

    job: dict = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class JobsResponse(Response):
    jobs: List[dict] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class ShutdownResponse(Response):
    stopping: bool = True


@dataclasses.dataclass
class EventResponse(Response):
    """One pushed line of a ``watch`` stream.

    ``seq`` is per-job and strictly increasing, so a reconnecting watcher
    resumes with ``WatchRequest(after=last_seen_seq)``.  ``final`` marks
    the job's terminal event; the stream closes after it.
    """

    event: str = ""
    job: str = ""
    seq: int = 0
    final: bool = False
    #: Daemon incarnation id; pairs with ``seq`` for reconnect bookkeeping.
    run: str = ""
    data: dict = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class ErrorResponse(Response):
    ok: ClassVar[bool] = False
    code: str = "error"
    message: str = ""

    def to_wire(self, proto: int = PROTO_VERSION) -> dict:
        if proto:
            return {"ok": False, "proto": proto,
                    "error": {"code": self.code, "message": self.message}}
        # v0 shape: error is a bare string.
        return {"ok": False, "error": self.message}


def response_to_wire(response: Response, proto: int) -> dict:
    """Encode for the generation the *request* arrived in (0 = legacy v0)."""
    return response.to_wire(proto=proto if proto else 0)


def decode_response(data: dict) -> Response:
    """Typed view of a response dict (client side).

    Tolerates v0 daemons: a missing ``proto`` plus a string ``error`` is
    lifted into a structured :class:`ErrorResponse`.  Success responses
    are classified by their payload fields.
    """
    if not data.get("ok"):
        error = data.get("error")
        if isinstance(error, dict):
            return ErrorResponse(code=str(error.get("code") or "error"),
                                 message=str(error.get("message") or ""))
        return ErrorResponse(code="error", message=str(error or ""))
    if "event" in data:
        return EventResponse.from_wire(data)
    if "pid" in data:
        return PingResponse.from_wire(data)
    if "jobs" in data and isinstance(data["jobs"], list):
        return JobsResponse.from_wire(data)
    if isinstance(data.get("job"), dict):
        return JobResponse.from_wire(data)
    if "job" in data:
        return SubmitResponse.from_wire(data)
    if "stopping" in data:
        return ShutdownResponse.from_wire(data)
    raise ProtocolError("bad-message", "unclassifiable response")
