"""Wire protocol of the serve daemon: line-delimited JSON, local sockets.

One request, one response, one connection: a client connects, writes a
single JSON object terminated by ``\\n``, reads a single JSON object back
and closes.  Requests carry an ``op`` field; responses always carry ``ok``
(and ``error`` when ``ok`` is false).  The framing is deliberately trivial
— the daemon is a local coordination point, not a network service, and a
torn line simply fails its JSON parse and is answered with an error.

Addressing goes through the daemon *state directory*: an ``AF_UNIX``
socket at ``<state>/daemon.sock`` where the platform has one, otherwise a
loopback TCP socket whose ephemeral port is published in
``<state>/daemon.port`` (the same degrade-don't-die posture as the verdict
store's lock fallback).
"""

from __future__ import annotations

import contextlib
import json
import os
import socket
from typing import Optional

__all__ = ["SOCKET_NAME", "PORT_FILE", "MAX_LINE_BYTES", "has_unix_sockets",
           "bind_server", "connect", "send_message", "recv_message"]

SOCKET_NAME = "daemon.sock"
PORT_FILE = "daemon.port"

#: Upper bound on one message line; a submit carrying a program listing is
#: a few KB, so anything near this is a protocol error, not a real request.
MAX_LINE_BYTES = 8 * 1024 * 1024


def has_unix_sockets() -> bool:
    return hasattr(socket, "AF_UNIX")


def _socket_path(state_dir: str) -> str:
    return os.path.join(state_dir, SOCKET_NAME)


def _port_path(state_dir: str) -> str:
    return os.path.join(state_dir, PORT_FILE)


def bind_server(state_dir: str) -> socket.socket:
    """Create, bind and listen the daemon's server socket.

    A stale ``AF_UNIX`` socket file from a killed daemon is unlinked before
    binding — daemon liveness is probed via ``ping``, never inferred from
    the file's existence.  On TCP platforms the kernel picks the port and
    :data:`PORT_FILE` publishes it for clients.
    """
    if has_unix_sockets():
        path = _socket_path(state_dir)
        with contextlib.suppress(OSError):
            os.unlink(path)
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(path)
    else:  # pragma: no cover - non-POSIX platforms
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.bind(("127.0.0.1", 0))
        with open(_port_path(state_dir), "w", encoding="utf-8") as handle:
            handle.write(str(server.getsockname()[1]))
    server.listen(16)
    return server


def connect(state_dir: str, timeout: Optional[float] = 10.0) -> socket.socket:
    """Connect to the daemon addressed by ``state_dir``.

    Raises :class:`OSError` (including :class:`FileNotFoundError` /
    :class:`ConnectionRefusedError`) when no daemon is listening; the
    client wraps that into :class:`~repro.service.client.DaemonUnavailable`.
    """
    if has_unix_sockets():
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(_socket_path(state_dir))
        return sock
    with open(_port_path(state_dir), "r", encoding="utf-8") as handle:  # pragma: no cover
        port = int(handle.read().strip())
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)  # pragma: no cover
    return sock  # pragma: no cover


def send_message(sock: socket.socket, message: dict) -> None:
    sock.sendall(json.dumps(message, sort_keys=True,
                            separators=(",", ":")).encode("utf-8") + b"\n")


def recv_message(sock: socket.socket) -> Optional[dict]:
    """Read one newline-terminated JSON object; ``None`` on a closed peer."""
    chunks = []
    total = 0
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        chunks.append(chunk)
        total += len(chunk)
        if chunk.endswith(b"\n") or b"\n" in chunk:
            break
        if total > MAX_LINE_BYTES:
            raise ValueError("message exceeds protocol line limit")
    data = b"".join(chunks)
    if not data.strip():
        return None
    line = data.split(b"\n", 1)[0]
    message = json.loads(line.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError("protocol messages must be JSON objects")
    return message
