"""The ``k2 serve`` daemon: concurrent scheduler, request server, shards.

One :class:`K2Daemon` owns a state directory::

    <state>/daemon.sock   the request socket (or daemon.port on TCP hosts)
    <state>/store.k2s     the shared verdict store (warm starts + checkpoints)
    <state>/jobs.jsonl    the job journal (queue state, replayed on start)

Scheduling
----------
The scheduler (the main thread, so POSIX signals reach it) runs up to
``max_concurrent_jobs`` jobs at once, each in its own thread with a
per-job *worker grant* carved from the daemon-wide ``worker_budget``.
Fairness is FIFO-with-budgets over spec priorities: the queue ranks by
``(priority desc, submission order)`` and the head job's grant is clamped
to whatever budget remains — a wide job waits for workers but is never
skipped in favour of a younger narrow one.  All jobs flush into the one
shared ``store.k2s`` through the store's single-writer fcntl discipline
(concurrent controllers are concurrent *writers*, each append under the
file lock).  Grants size the job's worker pool only; they never change
results (the determinism model is worker-count independent).

Sharding
--------
A job with ``spec.shards > 1`` becomes a *coordinator*: its chains are
split into contiguous shard specs (:mod:`repro.service.shards`), farmed
out to ``--peer`` daemons as ordinary sub-jobs over the wire protocol,
and merged deterministically in chain order — bit-identical to the
unsharded run (see the shards module for the exact sharing semantics).  A
peer that dies (or rejects) costs a reassignment: the next peer gets the
shard, and when no peer is left the coordinator runs it locally.  Since
shard results are deterministic, reassignment never changes the merged
result — only wall clock.

Events
------
Every job state change, generation boundary (per-chain best costs,
checkpoint writes) and shard transition is published to an in-memory
:class:`EventBroker`; a ``watch`` request holds its connection open and
the daemon pushes these events as they happen, so followers never poll.
Event sequence numbers are per-job and per-daemon-incarnation; the
terminal event carries the full job record (result included), which is
what :meth:`DaemonClient.wait` consumes.  The broker is in-memory by
design — the *journal* is the durable record — so after a restart a
watcher is served a fresh stream (the client reconnects with backoff and
the new daemon replays state from the journal).

Failure matrix (what each fault costs):

* **worker SIGKILL'd** — the controller rebuilds the process pool and
  replays the generation from its seeded snapshot (bounded retries,
  exponential backoff); results stay bit-identical, the retry count is
  surfaced in the result summary.
* **job raises** — the job is requeued with backoff up to
  ``max_job_attempts``, then marked failed; other jobs are unaffected.
* **shard peer dies** — the coordinator reassigns the shard to the next
  peer, or runs it locally; the merged result is unchanged.
* **coordinator dies** — the journal requeues the job; on restart remote
  shards are resubmitted (deterministic, same payloads) and local shards
  resume from their ``<job>/sN`` checkpoints.
* **hung solver query** — the spec's ``conflict_budget`` bounds every SMT
  query; exhaustion degrades the verdict to ``unknown`` and the pipeline
  escalates or moves on, so the fleet never stalls.
* **daemon SIGTERM/SIGINT** — graceful: every running search stops at its
  next generation boundary (checkpoint already written), jobs return to
  ``queued``, stores are flushed, exit 0.
* **daemon SIGKILL** — the journal still shows jobs ``running``; the next
  daemon requeues them and each search resumes from its last checkpoint,
  losing at most one generation.  Resumed results are bit-identical to an
  uninterrupted run.
"""

from __future__ import annotations

import collections
import contextlib
import dataclasses
import hashlib
import os
import signal
import socket
import threading
import time
import traceback
import uuid
from typing import Dict, List, Optional

from ..store import VerdictStore, flush_open_stores
from ..synthesis import SearchInterrupted, SearchResult, Synthesizer
from . import protocol
from .jobs import Job, JobQueue, JobSpec
from .shards import (merge_shard_payloads, plan_shards, run_shard,
                     shard_spec_dict)

__all__ = ["K2Daemon", "EventBroker", "summarize_search_result"]

STORE_NAME = "store.k2s"
JOURNAL_NAME = "jobs.jsonl"


def _digest(text: str) -> str:
    return hashlib.blake2b(text.encode("utf-8"), digest_size=12).hexdigest()


def summarize_search_result(result: SearchResult) -> dict:
    """JSON-safe result summary stored on the job and returned to clients.

    Carries enough per-chain detail that two runs can be compared for
    bit-identity by comparing summaries (minus the wall-clock fields, the
    retry counter and the cache's memo-hit counter, which legitimately
    differ across resumes).
    """
    best_text = result.best_program.to_text()
    return {
        "best_program": best_text,
        "best_digest": _digest(best_text),
        "source_insns": result.source.num_real_instructions,
        "best_insns": result.best_program.num_real_instructions,
        "compression": result.compression,
        "iterations": result.total_iterations(),
        "num_generations": result.num_generations,
        "executor_used": result.executor_used,
        "counterexamples_shared": result.counterexamples_shared,
        "rejected_by_kernel_checker": result.rejected_by_kernel_checker,
        "worker_retries": result.worker_retries,
        "elapsed_seconds": result.elapsed_seconds,
        "cache": {name: value for name, value in result.cache_stats.items()},
        "store": dict(result.store_stats) if result.store_stats else None,
        "chains": [{
            "iterations": chain.statistics.iterations,
            "proposals_accepted": chain.statistics.proposals_accepted,
            "proposals_unsafe": chain.statistics.proposals_unsafe,
            "test_failures": chain.statistics.test_failures,
            "equivalence_checks": chain.statistics.equivalence_checks,
            "equivalence_cache_hits":
                chain.statistics.equivalence_cache_hits,
            "counterexamples_added": chain.statistics.counterexamples_added,
            "verified_candidates": chain.statistics.verified_candidates,
            "best_found_at_iteration":
                chain.statistics.best_found_at_iteration,
            "candidates": [_digest(candidate.program.to_text())
                           for candidate in chain.candidates],
        } for chain in result.chain_results],
    }


class ShardFailed(RuntimeError):
    """A peer ran (or lost) a shard without producing a payload."""


class EventBroker:
    """Per-job, seq-numbered, bounded in-memory event log with waiters.

    ``publish`` appends and wakes every waiter; ``wait_events`` blocks
    until something newer than ``after`` exists (or the timeout lapses).
    Rings are bounded — a slow watcher that falls more than
    ``max_per_job`` events behind simply misses the overwritten ones, and
    the terminal event always carries the full job record so nothing
    load-bearing is ever lost.
    """

    def __init__(self, run_id: str, max_per_job: int = 1024):
        self.run_id = run_id
        self._max_per_job = max_per_job
        self._cond = threading.Condition()
        self._rings: Dict[str, collections.deque] = {}
        self._seqs: Dict[str, int] = {}

    def publish(self, job_id: str, event: str, data: Optional[dict] = None,
                final: bool = False) -> protocol.EventResponse:
        with self._cond:
            return self._publish_locked(job_id, event, data, final)

    def _publish_locked(self, job_id, event, data, final):
        seq = self._seqs.get(job_id, 0) + 1
        self._seqs[job_id] = seq
        entry = protocol.EventResponse(event=event, job=job_id, seq=seq,
                                       final=final, run=self.run_id,
                                       data=dict(data or {}))
        ring = self._rings.setdefault(
            job_id, collections.deque(maxlen=self._max_per_job))
        ring.append(entry)
        self._cond.notify_all()
        return entry

    def ensure_final(self, job_id: str, event: str,
                     data: Optional[dict] = None) -> protocol.EventResponse:
        """Publish a terminal event unless the ring already holds one.

        Idempotent under the broker lock: the job runner's ``_finish`` and
        any watcher that observes a terminal *journal* state (e.g. right
        after a daemon restart, when the ring is empty) can both call
        this without producing duplicate finals.
        """
        with self._cond:
            for entry in self._rings.get(job_id, ()):
                if entry.final:
                    return entry
            return self._publish_locked(job_id, event, data, final=True)

    def events_after(self, job_id: str, after: int
                     ) -> List[protocol.EventResponse]:
        with self._cond:
            return [entry for entry in self._rings.get(job_id, ())
                    if entry.seq > after]

    def wait_events(self, job_id: str, after: int, timeout: float
                    ) -> List[protocol.EventResponse]:
        """Events newer than ``after``, blocking up to ``timeout`` for one."""
        with self._cond:
            events = [entry for entry in self._rings.get(job_id, ())
                      if entry.seq > after]
            if events:
                return events
            self._cond.wait(timeout)
            return [entry for entry in self._rings.get(job_id, ())
                    if entry.seq > after]


class K2Daemon:
    """The long-lived synthesis service behind ``k2 serve``."""

    def __init__(self, state_dir: str, poll_interval: float = 0.2,
                 max_job_attempts: int = 3,
                 job_retry_backoff_seconds: float = 0.2,
                 max_concurrent_jobs: int = 1,
                 worker_budget: Optional[int] = None,
                 peers: Optional[List[str]] = None):
        self.state_dir = str(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)
        self.store_path = os.path.join(self.state_dir, STORE_NAME)
        self.queue = JobQueue(os.path.join(self.state_dir, JOURNAL_NAME))
        self.poll_interval = poll_interval
        self.max_job_attempts = max_job_attempts
        self.job_retry_backoff_seconds = job_retry_backoff_seconds
        self.max_concurrent_jobs = max(1, int(max_concurrent_jobs))
        #: Daemon-wide worker pool budget that concurrent jobs' grants are
        #: carved from.  Defaults to one worker per scheduler slot, so the
        #: single-job default behaves exactly like the pre-scale-out daemon.
        self.worker_budget = max(int(worker_budget), 1) \
            if worker_budget else self.max_concurrent_jobs
        #: Peer daemon state directories shard sub-jobs are farmed out to.
        self.peers = [str(peer) for peer in (peers or [])]
        #: Incarnation id: event sequence numbers are scoped to it.
        self.run_id = uuid.uuid4().hex[:12]
        self.events = EventBroker(self.run_id)
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._server: Optional[socket.socket] = None
        #: job id → running job thread / worker grant (scheduler state).
        self._threads: Dict[str, threading.Thread] = {}
        self._grants: Dict[str, int] = {}
        self._sched_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def request_stop(self) -> None:
        """Begin a graceful shutdown (idempotent, any thread)."""
        self._stop.set()
        self._wake.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    # ------------------------------------------------------------------ #
    def serve_forever(self, install_signal_handlers: bool = True) -> int:
        """Run the request server and the scheduler until stopped."""
        self._server = protocol.bind_server(self.state_dir)
        server_thread = threading.Thread(target=self._accept_loop,
                                         name="k2-serve-requests",
                                         daemon=True)
        server_thread.start()
        if install_signal_handlers:
            signal.signal(signal.SIGTERM, self._on_signal)
            signal.signal(signal.SIGINT, self._on_signal)
        try:
            while not self._stop.is_set():
                self._start_runnable_jobs()
                self._wake.wait(self.poll_interval)
                self._wake.clear()
        finally:
            # Graceful: every running job observes the stop flag at its
            # next generation boundary (checkpoint written) and requeues.
            for thread in self._running_threads():
                thread.join()
            self._close_server()
            # Whatever is buffered anywhere (the job runners' stores are
            # per-run, but belt-and-braces on interrupt paths) hits disk.
            flush_open_stores()
        return 0

    def _running_threads(self) -> List[threading.Thread]:
        with self._sched_lock:
            return list(self._threads.values())

    def _on_signal(self, signum, frame) -> None:  # pragma: no cover - signal
        self.request_stop()

    def _close_server(self) -> None:
        server = self._server
        self._server = None
        if server is not None:
            try:
                server.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    # ------------------------------------------------------------------ #
    # Scheduler
    # ------------------------------------------------------------------ #
    def _start_runnable_jobs(self) -> None:
        """Claim and launch queued jobs while slots and budget allow.

        FIFO-with-budgets: the best-ranked queued job's worker grant is
        ``min(spec.num_workers, remaining budget)`` — clamped, never
        skipped, so narrow late arrivals cannot starve a wide head job.
        Claiming (state flip + persist) happens under the scheduler lock,
        so a job can never be launched twice.
        """
        while not self._stop.is_set():
            with self._sched_lock:
                if len(self._threads) >= self.max_concurrent_jobs:
                    return
                available = self.worker_budget - sum(self._grants.values())
                if available <= 0:
                    return
                job = self.queue.next_runnable()
                if job is None:
                    return
                want = max(1, min(int(job.spec.num_workers),
                                  self.worker_budget))
                granted = min(want, available)
                job.state = "running"
                job.started_at = time.time()
                job.attempts += 1
                job.progress = {}
                job.workers_granted = granted
                self.queue.persist(job)
                self._grants[job.id] = granted
                thread = threading.Thread(
                    target=self._job_thread, args=(job, granted),
                    name=f"k2-job-{job.id}")
                self._threads[job.id] = thread
            self.events.publish(job.id, "state",
                                data={"state": "running",
                                      "attempts": job.attempts,
                                      "workers_granted": granted})
            thread.start()

    def _job_thread(self, job: Job, granted: int) -> None:
        try:
            self._execute_job(job, granted)
        except Exception as exc:  # pragma: no cover - last-resort guard
            with contextlib.suppress(Exception):
                self._finish(job, "failed", error=f"internal: {exc!r}")
        finally:
            with self._sched_lock:
                self._threads.pop(job.id, None)
                self._grants.pop(job.id, None)
            self._wake.set()

    # ------------------------------------------------------------------ #
    # Request server
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            server = self._server
            if server is None:
                return
            try:
                conn, _ = server.accept()
            except OSError:
                return  # socket closed during shutdown
            worker = threading.Thread(target=self._handle_connection,
                                      args=(conn,), daemon=True)
            worker.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        try:
            with conn:
                conn.settimeout(10.0)
                reader = protocol.LineReader(conn)
                try:
                    message = reader.read_message()
                except protocol.ProtocolError as exc:
                    protocol.send_message(conn, protocol.ErrorResponse(
                        code=exc.code, message=str(exc)).to_wire(proto=0))
                    return
                except (ValueError, OSError) as exc:
                    protocol.send_message(conn, protocol.ErrorResponse(
                        code="bad-request",
                        message=f"bad request: {exc}").to_wire(proto=0))
                    return
                if message is None:
                    return
                try:
                    request, proto = protocol.decode_request(message)
                except protocol.ProtocolError as exc:
                    # Unknown ops and malformed requests get a structured
                    # error in the shape their generation expects.
                    proto = 1 if message.get("proto") else 0
                    protocol.send_message(
                        conn,
                        protocol.response_to_wire(protocol.ErrorResponse(
                            code=exc.code, message=str(exc)), proto))
                    return
                if isinstance(request, protocol.WatchRequest):
                    self._serve_watch(conn, request, proto)
                    return
                response = self._dispatch(request)
                protocol.send_message(
                    conn, protocol.response_to_wire(response, proto))
                # Stop only after the acknowledgement is on the wire —
                # stopping first races the process exit against the send.
                if isinstance(request, protocol.ShutdownRequest):
                    self.request_stop()
        except OSError:  # pragma: no cover - peer vanished mid-response
            pass

    def _dispatch(self, request: protocol.Request) -> protocol.Response:
        try:
            if isinstance(request, protocol.PingRequest):
                with self._sched_lock:
                    running = len(self._threads)
                return protocol.PingResponse(
                    pid=os.getpid(), jobs=len(self.queue.jobs()),
                    stopping=self.stopping, running=running,
                    max_concurrent_jobs=self.max_concurrent_jobs,
                    worker_budget=self.worker_budget)
            if isinstance(request, protocol.SubmitRequest):
                spec = JobSpec.from_dict(request.spec or {})
                job = self.queue.submit(spec)
                self.events.publish(job.id, "state",
                                    data={"state": "queued"})
                self._wake.set()
                return protocol.SubmitResponse(job=job.id)
            if isinstance(request, (protocol.StatusRequest,
                                    protocol.ResultRequest)):
                job = self._require_job(request.job)
                with_result = isinstance(request, protocol.ResultRequest)
                return protocol.JobResponse(
                    job=job.to_dict(with_result=with_result))
            if isinstance(request, protocol.CancelRequest):
                job = self.queue.request_cancel(str(request.job or ""))
                if job is None:
                    return protocol.ErrorResponse(code="unknown-job",
                                                  message="unknown job")
                if job.state == "cancelled":
                    self._clear_job_checkpoints(job.id)
                    self.events.ensure_final(
                        job.id, "state",
                        data={"state": job.state,
                              "job": job.to_dict(with_result=True)})
                return protocol.JobResponse(job=job.to_dict(with_result=False))
            if isinstance(request, protocol.JobsRequest):
                return protocol.JobsResponse(
                    jobs=[job.to_dict(with_result=False)
                          for job in self.queue.jobs()])
            if isinstance(request, protocol.ShutdownRequest):
                # request_stop happens in _handle_connection, post-send.
                return protocol.ShutdownResponse(stopping=True)
            return protocol.ErrorResponse(
                code="unknown-op", message=f"unhandled op {request.op!r}")
        except (KeyError, TypeError, ValueError) as exc:
            return protocol.ErrorResponse(code="bad-request",
                                          message=str(exc))

    def _require_job(self, job_id: str) -> Job:
        job = self.queue.get(str(job_id or ""))
        if job is None:
            raise ValueError("unknown job")
        return job

    def _serve_watch(self, conn: socket.socket,
                     request: protocol.WatchRequest, proto: int) -> None:
        """Stream a job's events until its terminal event (or peer loss).

        The connection stays open; every pushed line is an
        :class:`~repro.service.protocol.EventResponse`.  A client that
        reconnects with the previous incarnation's ``run`` is served from
        the beginning of this incarnation's ring (its ``after`` belongs to
        a dead sequence space); a terminal job whose ring is empty (daemon
        restarted after it finished) gets a synthesized final event built
        from the journal.  On graceful shutdown the stream simply closes —
        the client's reconnect backoff finds the successor daemon.
        """
        job_id = str(request.job or "")
        if self.queue.get(job_id) is None:
            protocol.send_message(
                conn, protocol.response_to_wire(protocol.ErrorResponse(
                    code="unknown-job", message="unknown job"), proto))
            return
        conn.settimeout(30.0)
        after = int(request.after or 0)
        if request.run and request.run != self.run_id:
            after = 0
        while True:
            events = self.events.wait_events(job_id, after, timeout=0.5)
            if not events:
                if self._stop.is_set():
                    return
                job = self.queue.get(job_id)
                if job is not None and job.terminal:
                    events = [self.events.ensure_final(
                        job_id, "state",
                        data={"state": job.state,
                              "job": job.to_dict(with_result=True)})]
                    events = [entry for entry in events
                              if entry.seq > after]
            for entry in events:
                protocol.send_message(
                    conn, entry.to_wire(proto=proto or
                                        protocol.PROTO_VERSION))
                after = entry.seq
                if entry.final:
                    return

    # ------------------------------------------------------------------ #
    # Job execution
    # ------------------------------------------------------------------ #
    def _execute_job(self, job: Job, granted: int) -> None:
        try:
            program = job.spec.build_program()
        except Exception as exc:  # bad spec: never retried
            self._finish(job, "failed", error=f"bad program: {exc}")
            return

        def generation_hook(completed: int, total: int):
            job.progress = {"generation": completed, "total": total}
            self.queue.persist(job)
            # Stopping or cancelled: interrupt at this (checkpointed)
            # boundary; SearchInterrupted lands in the handler below.
            return not (self._stop.is_set() or job.cancel_requested)

        def progress_listener(info: dict) -> None:
            self.events.publish(job.id, "generation", data=info)

        try:
            if job.spec.shard is not None:
                summary = self._run_shard_subjob(job, granted,
                                                 generation_hook,
                                                 progress_listener)
            elif job.spec.shards > 1:
                summary = self._run_sharded(job, program, granted,
                                            generation_hook,
                                            progress_listener)
            else:
                options = job.spec.search_options(
                    self.store_path, job.id, generation_hook,
                    progress_listener)
                if granted != options.num_workers:
                    options = dataclasses.replace(options,
                                                  num_workers=granted)
                result = Synthesizer(options).optimize(program)
                summary = summarize_search_result(result)
        except SearchInterrupted:
            if job.cancel_requested:
                # Checkpoints go first: the terminal event releases waiting
                # clients, who may immediately inspect the shared store.
                self._clear_job_checkpoints(job.id)
                self._finish(job, "cancelled")
            else:
                # Graceful shutdown: back to the queue, checkpoint intact —
                # the next daemon resumes it where it stopped.
                job.state = "queued"
                self.queue.persist(job)
                self.events.publish(job.id, "state",
                                    data={"state": "queued",
                                          "requeued": True})
            return
        except Exception as exc:
            if job.attempts < self.max_job_attempts \
                    and not self._stop.is_set():
                job.state = "queued"
                job.error = f"attempt {job.attempts} failed: {exc!r}"
                self.queue.persist(job)
                self.events.publish(job.id, "state",
                                    data={"state": "queued",
                                          "error": job.error})
                delay = self.job_retry_backoff_seconds \
                    * (2 ** (job.attempts - 1))
                self._stop.wait(delay)
                self._wake.set()
            else:
                self._clear_job_checkpoints(job.id)
                self._finish(job, "failed",
                             error="".join(traceback.format_exception_only(
                                 type(exc), exc)).strip())
            return
        job.result = summary
        self._finish(job, "done")

    # ------------------------------------------------------------------ #
    # Shards
    # ------------------------------------------------------------------ #
    def _run_shard_subjob(self, job: Job, granted: int, generation_hook,
                          progress_listener) -> dict:
        """Run one farmed-out shard (this daemon is the *peer*)."""
        shard = dict(job.spec.shard)

        def shard_listener(info: dict) -> None:
            progress_listener(dict(info, shard=shard))

        started = time.perf_counter()
        payload = run_shard(job.spec, shard, self.store_path, job.id,
                            generation_hook, shard_listener,
                            num_workers=granted)
        return {
            "shard_payload": payload,
            "shard": payload["shard"],
            "elapsed_seconds": time.perf_counter() - started,
            "worker_retries": sum(
                int(chain["stats"].get("worker_retries", 0))
                for chain in payload["chains"]),
        }

    def _run_sharded(self, job: Job, program, granted: int,
                     generation_hook, progress_listener) -> dict:
        """Coordinate a sharded job: farm out, reassign on loss, merge."""
        spec = job.spec
        plans = plan_shards(spec.settings, spec.shards)
        payloads: List[Optional[dict]] = [None] * len(plans)
        statuses = [{"index": plan["index"], "of": plan["of"],
                     "chains": [plan["lo"], plan["hi"]],
                     "ran_on": None, "reassignments": 0}
                    for plan in plans]
        interrupted: List[BaseException] = []
        started = time.perf_counter()

        def shard_event(index: int, state: str, **extra) -> None:
            self.events.publish(job.id, "shard",
                                data=dict({"index": index, "of": len(plans),
                                           "state": state}, **extra))

        def remote_worker(index: int, plan: dict) -> None:
            rotation = self.peers[index % len(self.peers):] \
                + self.peers[:index % len(self.peers)]
            try:
                for peer in rotation:
                    if job.cancel_requested or self._stop.is_set():
                        return
                    shard_event(index, "assigned", peer=peer)
                    try:
                        payloads[index] = self._run_shard_on_peer(
                            peer, job, plan)
                        statuses[index]["ran_on"] = peer
                        shard_event(index, "done", peer=peer)
                        return
                    except SearchInterrupted:
                        raise
                    except Exception as exc:
                        statuses[index]["reassignments"] += 1
                        shard_event(index, "reassigned", peer=peer,
                                    error=str(exc))
            except SearchInterrupted as exc:
                interrupted.append(exc)

        if self.peers:
            threads = [threading.Thread(target=remote_worker,
                                        args=(index, plan),
                                        name=f"k2-shard-{job.id}-{index}")
                       for index, plan in enumerate(plans)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if interrupted:
            raise SearchInterrupted("sharded job interrupted")

        # Whatever no peer delivered runs here, sequentially, with this
        # job's full worker grant — determinism makes the fallback exact.
        for index, plan in enumerate(plans):
            if payloads[index] is not None:
                continue
            if job.cancel_requested or self._stop.is_set():
                raise SearchInterrupted("sharded job interrupted")
            shard_event(index, "local")

            def local_listener(info: dict, _plan=plan) -> None:
                progress_listener(dict(info, shard=_plan))

            payloads[index] = run_shard(
                spec, plan, self.store_path,
                f"{job.id}/s{plan['index']}", generation_hook,
                local_listener, num_workers=granted)
            statuses[index]["ran_on"] = "local"
            shard_event(index, "done", peer="local")

        result = merge_shard_payloads(
            program, spec, [payload for payload in payloads
                            if payload is not None],
            elapsed_seconds=time.perf_counter() - started)
        summary = summarize_search_result(result)
        summary["shards"] = statuses
        return summary

    def _run_shard_on_peer(self, peer: str, job: Job, plan: dict) -> dict:
        """Submit one shard to a peer daemon and await its payload.

        Raises :class:`ShardFailed` (peer answered but the shard did not
        finish ``done``) or the client's ``DaemonUnavailable`` (peer is
        gone) — both make the coordinator reassign.  Cancellation and
        daemon shutdown surface as :class:`SearchInterrupted`, after a
        best-effort cancel of the peer's sub-job.
        """
        from .client import DaemonClient

        client = DaemonClient(peer)
        sub_spec = JobSpec.from_dict(shard_spec_dict(job.spec.to_dict(),
                                                     plan))
        sub_id = client.submit(sub_spec)
        try:
            while True:
                if job.cancel_requested or self._stop.is_set():
                    raise SearchInterrupted("coordinator stopping")
                try:
                    record = client.wait(sub_id, timeout=2.0)
                    break
                except TimeoutError:
                    # Still running — or the peer is gone and wait() merely
                    # ran out its window retrying.  Probe: a dead peer makes
                    # ping raise DaemonUnavailable, which reassigns.
                    client.ping()
                    continue
        except SearchInterrupted:
            with contextlib.suppress(Exception):
                client.cancel(sub_id)
            raise
        if record.get("state") != "done":
            raise ShardFailed(
                f"shard {plan['index']} on {peer!r} ended "
                f"{record.get('state')!r}: {record.get('error')}")
        payload = (record.get("result") or {}).get("shard_payload")
        if not payload:
            raise ShardFailed(
                f"shard {plan['index']} on {peer!r} returned no payload")
        return payload

    # ------------------------------------------------------------------ #
    def _finish(self, job: Job, state: str,
                error: Optional[str] = None) -> None:
        job.state = state
        job.finished_at = time.time()
        if error is not None:
            job.error = error
        self.queue.persist(job)
        self.events.ensure_final(
            job.id, "state",
            data={"state": job.state, "job": job.to_dict(with_result=True)})

    def _clear_job_checkpoints(self, job_id: str) -> None:
        """Drop a dead job's checkpoints (incl. windowed/shard sub-keys)."""
        try:
            store = VerdictStore(self.store_path)
            cleared = False
            for key in store.checkpoint_jobs():
                if key == job_id or key.startswith(job_id + "/"):
                    cleared = store.clear_checkpoint(key) or cleared
            if cleared:
                store.flush()
        except Exception:  # pragma: no cover - cleanup is best-effort
            pass
