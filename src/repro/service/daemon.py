"""The ``k2 serve`` daemon: scheduler loop, request server, supervision.

One :class:`K2Daemon` owns a state directory::

    <state>/daemon.sock   the request socket (or daemon.port on TCP hosts)
    <state>/store.k2s     the shared verdict store (warm starts + checkpoints)
    <state>/jobs.jsonl    the job journal (queue state, replayed on start)

The scheduler (the main thread, so POSIX signals reach it) runs one job at
a time — parallelism lives *inside* a job, whose chains fan out over the
supervised worker fleet of :class:`~repro.synthesis.parallel.ChainController`
with ``checkpoint_key=job id``.  The request server answers
submit/status/result/cancel over the local socket from a background thread.

Failure matrix (what each fault costs):

* **worker SIGKILL'd** — the controller rebuilds the process pool and
  replays the generation from its seeded snapshot (bounded retries,
  exponential backoff); results stay bit-identical, the retry count is
  surfaced in the result summary.
* **job raises** — the job is requeued with backoff up to
  ``max_job_attempts``, then marked failed; other jobs are unaffected.
* **hung solver query** — the spec's ``conflict_budget`` bounds every SMT
  query; exhaustion degrades the verdict to ``unknown`` and the pipeline
  escalates or moves on, so the fleet never stalls.
* **daemon SIGTERM/SIGINT** — graceful: the running search stops at its
  next generation boundary (checkpoint already written), the job returns
  to ``queued``, stores are flushed, exit 0.
* **daemon SIGKILL** — the journal still shows the job ``running``; the
  next daemon requeues it and the search resumes from the last checkpoint,
  losing at most one generation.  Resumed results are bit-identical to an
  uninterrupted run.
"""

from __future__ import annotations

import hashlib
import os
import signal
import socket
import threading
import time
import traceback
from typing import Optional

from ..store import VerdictStore, flush_open_stores
from ..synthesis import SearchInterrupted, SearchResult, Synthesizer
from . import protocol
from .jobs import Job, JobQueue, JobSpec

__all__ = ["K2Daemon", "summarize_search_result"]

STORE_NAME = "store.k2s"
JOURNAL_NAME = "jobs.jsonl"


def _digest(text: str) -> str:
    return hashlib.blake2b(text.encode("utf-8"), digest_size=12).hexdigest()


def summarize_search_result(result: SearchResult) -> dict:
    """JSON-safe result summary stored on the job and returned to clients.

    Carries enough per-chain detail that two runs can be compared for
    bit-identity by comparing summaries (minus the wall-clock fields, the
    retry counter and the cache's memo-hit counter, which legitimately
    differ across resumes).
    """
    best_text = result.best_program.to_text()
    return {
        "best_program": best_text,
        "best_digest": _digest(best_text),
        "source_insns": result.source.num_real_instructions,
        "best_insns": result.best_program.num_real_instructions,
        "compression": result.compression,
        "iterations": result.total_iterations(),
        "num_generations": result.num_generations,
        "executor_used": result.executor_used,
        "counterexamples_shared": result.counterexamples_shared,
        "rejected_by_kernel_checker": result.rejected_by_kernel_checker,
        "worker_retries": result.worker_retries,
        "elapsed_seconds": result.elapsed_seconds,
        "cache": {name: value for name, value in result.cache_stats.items()},
        "store": dict(result.store_stats) if result.store_stats else None,
        "chains": [{
            "iterations": chain.statistics.iterations,
            "proposals_accepted": chain.statistics.proposals_accepted,
            "proposals_unsafe": chain.statistics.proposals_unsafe,
            "test_failures": chain.statistics.test_failures,
            "equivalence_checks": chain.statistics.equivalence_checks,
            "equivalence_cache_hits":
                chain.statistics.equivalence_cache_hits,
            "counterexamples_added": chain.statistics.counterexamples_added,
            "verified_candidates": chain.statistics.verified_candidates,
            "best_found_at_iteration":
                chain.statistics.best_found_at_iteration,
            "candidates": [_digest(candidate.program.to_text())
                           for candidate in chain.candidates],
        } for chain in result.chain_results],
    }


class K2Daemon:
    """The long-lived synthesis service behind ``k2 serve``."""

    def __init__(self, state_dir: str, poll_interval: float = 0.2,
                 max_job_attempts: int = 3,
                 job_retry_backoff_seconds: float = 0.2):
        self.state_dir = str(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)
        self.store_path = os.path.join(self.state_dir, STORE_NAME)
        self.queue = JobQueue(os.path.join(self.state_dir, JOURNAL_NAME))
        self.poll_interval = poll_interval
        self.max_job_attempts = max_job_attempts
        self.job_retry_backoff_seconds = job_retry_backoff_seconds
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._server: Optional[socket.socket] = None

    # ------------------------------------------------------------------ #
    def request_stop(self) -> None:
        """Begin a graceful shutdown (idempotent, any thread)."""
        self._stop.set()
        self._wake.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    # ------------------------------------------------------------------ #
    def serve_forever(self, install_signal_handlers: bool = True) -> int:
        """Run the request server and the scheduler until stopped."""
        self._server = protocol.bind_server(self.state_dir)
        server_thread = threading.Thread(target=self._accept_loop,
                                         name="k2-serve-requests",
                                         daemon=True)
        server_thread.start()
        if install_signal_handlers:
            signal.signal(signal.SIGTERM, self._on_signal)
            signal.signal(signal.SIGINT, self._on_signal)
        try:
            while not self._stop.is_set():
                job = self.queue.next_runnable()
                if job is None:
                    self._wake.wait(self.poll_interval)
                    self._wake.clear()
                    continue
                self._run_job(job)
        finally:
            self._close_server()
            # Whatever is buffered anywhere (the scheduler's stores are
            # per-run, but belt-and-braces on interrupt paths) hits disk.
            flush_open_stores()
        return 0

    def _on_signal(self, signum, frame) -> None:  # pragma: no cover - signal
        self.request_stop()

    def _close_server(self) -> None:
        server = self._server
        self._server = None
        if server is not None:
            try:
                server.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    # ------------------------------------------------------------------ #
    # Request server
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            server = self._server
            if server is None:
                return
            try:
                conn, _ = server.accept()
            except OSError:
                return  # socket closed during shutdown
            worker = threading.Thread(target=self._handle_connection,
                                      args=(conn,), daemon=True)
            worker.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        try:
            with conn:
                conn.settimeout(10.0)
                try:
                    message = protocol.recv_message(conn)
                except (ValueError, OSError) as exc:
                    protocol.send_message(
                        conn, {"ok": False, "error": f"bad request: {exc}"})
                    return
                if message is None:
                    return
                protocol.send_message(conn, self._dispatch(message))
                # Stop only after the acknowledgement is on the wire —
                # stopping first races the process exit against the send.
                if message.get("op") == "shutdown":
                    self.request_stop()
        except OSError:  # pragma: no cover - peer vanished mid-response
            pass

    def _dispatch(self, message: dict) -> dict:
        op = message.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pid": os.getpid(),
                        "jobs": len(self.queue.jobs()),
                        "stopping": self.stopping}
            if op == "submit":
                spec = JobSpec.from_dict(message.get("spec") or {})
                job = self.queue.submit(spec)
                self._wake.set()
                return {"ok": True, "job": job.id}
            if op in ("status", "result"):
                job = self._require_job(message)
                return {"ok": True,
                        "job": job.to_dict(with_result=op == "result")}
            if op == "cancel":
                job = self.queue.request_cancel(
                    str(message.get("job") or ""))
                if job is None:
                    return {"ok": False, "error": "unknown job"}
                if job.state == "cancelled":
                    self._clear_job_checkpoints(job.id)
                return {"ok": True, "job": job.to_dict(with_result=False)}
            if op == "jobs":
                return {"ok": True,
                        "jobs": [job.to_dict(with_result=False)
                                 for job in self.queue.jobs()]}
            if op == "shutdown":
                # request_stop happens in _handle_connection, post-send.
                return {"ok": True, "stopping": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except (KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": str(exc)}

    def _require_job(self, message: dict) -> Job:
        job = self.queue.get(str(message.get("job") or ""))
        if job is None:
            raise ValueError("unknown job")
        return job

    # ------------------------------------------------------------------ #
    # Scheduler
    # ------------------------------------------------------------------ #
    def _run_job(self, job: Job) -> None:
        job.state = "running"
        job.started_at = time.time()
        job.attempts += 1
        job.progress = {}
        self.queue.persist(job)

        try:
            program = job.spec.build_program()
        except Exception as exc:  # bad spec: never retried
            self._finish(job, "failed", error=f"bad program: {exc}")
            return

        def generation_hook(completed: int, total: int):
            job.progress = {"generation": completed, "total": total}
            self.queue.persist(job)
            # Stopping or cancelled: interrupt at this (checkpointed)
            # boundary; SearchInterrupted lands in the handler below.
            return not (self._stop.is_set() or job.cancel_requested)

        options = job.spec.search_options(self.store_path, job.id,
                                          generation_hook)
        try:
            result = Synthesizer(options).optimize(program)
        except SearchInterrupted:
            if job.cancel_requested:
                self._finish(job, "cancelled")
                self._clear_job_checkpoints(job.id)
            else:
                # Graceful shutdown: back to the queue, checkpoint intact —
                # the next daemon resumes it where it stopped.
                job.state = "queued"
                self.queue.persist(job)
            return
        except Exception as exc:
            if job.attempts < self.max_job_attempts \
                    and not self._stop.is_set():
                job.state = "queued"
                job.error = f"attempt {job.attempts} failed: {exc!r}"
                self.queue.persist(job)
                delay = self.job_retry_backoff_seconds \
                    * (2 ** (job.attempts - 1))
                self._stop.wait(delay)
            else:
                self._finish(job, "failed",
                             error="".join(traceback.format_exception_only(
                                 type(exc), exc)).strip())
                self._clear_job_checkpoints(job.id)
            return
        job.result = summarize_search_result(result)
        self._finish(job, "done")

    def _finish(self, job: Job, state: str,
                error: Optional[str] = None) -> None:
        job.state = state
        job.finished_at = time.time()
        if error is not None:
            job.error = error
        self.queue.persist(job)

    def _clear_job_checkpoints(self, job_id: str) -> None:
        """Drop a dead job's checkpoints (including windowed sub-keys)."""
        try:
            store = VerdictStore(self.store_path)
            cleared = False
            for key in store.checkpoint_jobs():
                if key == job_id or key.startswith(job_id + "/"):
                    cleared = store.clear_checkpoint(key) or cleared
            if cleared:
                store.flush()
        except Exception:  # pragma: no cover - cleanup is best-effort
            pass
