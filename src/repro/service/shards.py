"""Chain sharding: split one job's chains across controllers and daemons.

A job with ``JobSpec.shards = N`` is split into N contiguous *shard specs*
(``chains lo..hi of total``).  Each shard runs an ordinary
:class:`~repro.synthesis.parallel.ChainController` over its slice of the
Table 8 parameter settings, with ``SearchOptions.chain_index_offset`` set
so every chain derives its seeds from its **global** index — shard-local
chain ``i`` is bit-identical to chain ``lo + i`` of the unsharded run.
The coordinator daemon farms shards out to peer daemons as ordinary jobs
over the wire protocol (falling back to running them locally when a peer
dies) and merges the returned payloads **in shard order**, which is chain
order, which is exactly the merge order of the in-process controller — so
a sharded run is bit-identical to its unsharded counterpart.

Sharding semantics
------------------
``shards`` partitions the *cross-chain sharing domain*: the equivalence
cache and counterexample pool are shared within a shard, never across
shards — regardless of whether the shards happen to run on one host or
five.  Placement therefore never changes results.  The corollary: a
sharded run equals the unsharded run **when sharing is disabled**
(``share_cache=False, share_counterexamples=False``) or trivially scoped
(one chain per shard); with intra-shard sharing enabled, sharded and
unsharded runs are *each* deterministic but legitimately differ from each
other (different sharing domains), exactly like changing
``sync_interval``.

Payloads are JSON-safe (the wire carries them) and reuse the checkpoint
codec of :mod:`repro.synthesis.checkpoint` for programs, statistics and
cache snapshots — one serialization discipline for everything that must
round-trip bit-identically.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from ..bpf.program import BpfProgram
from ..equivalence import EquivalenceCache
from ..synthesis.checkpoint import decode_cache_state, encode_cache_state
from ..synthesis.mcmc import ChainResult, ChainStatistics, VerifiedCandidate
from ..synthesis.parallel import ChainController
from ..synthesis.params import all_parameter_settings
from ..synthesis.search import SearchResult, assemble_search_result

__all__ = ["SHARD_PAYLOAD_VERSION", "plan_shards", "shard_spec_dict",
           "run_shard", "encode_chain_result", "decode_chain_result",
           "merge_shard_payloads"]

#: Bump when the payload layout changes; a coordinator refuses to merge
#: payloads of a different version (the shard is re-run instead).
SHARD_PAYLOAD_VERSION = 1


def plan_shards(num_settings: int, num_shards: int) -> List[dict]:
    """Contiguous near-even split of ``num_settings`` chains into shards.

    Earlier shards take the remainder (like
    :func:`repro.synthesis.windows.split_budget`); shards beyond the chain
    count would be empty and are dropped.  Each entry is the JSON-safe
    shard descriptor carried by sub-job specs::

        {"index": k, "of": n, "lo": first, "hi": past_last, "total": all}
    """
    num_shards = max(1, min(int(num_shards), int(num_settings)))
    base, remainder = divmod(int(num_settings), num_shards)
    plans = []
    lo = 0
    for index in range(num_shards):
        size = base + (1 if index < remainder else 0)
        plans.append({"index": index, "of": num_shards,
                      "lo": lo, "hi": lo + size, "total": int(num_settings)})
        lo += size
    return plans


def shard_spec_dict(spec_dict: dict, plan: dict) -> dict:
    """The sub-job spec a coordinator submits to a peer for one shard."""
    sub = dict(spec_dict)
    sub["shard"] = dict(plan)
    sub["shards"] = 1  # a shard never re-shards
    return sub


# --------------------------------------------------------------------------- #
# Chain-result codec (JSON-safe, via the checkpoint discipline)
# --------------------------------------------------------------------------- #
def encode_chain_result(result: ChainResult) -> dict:
    """One chain's outcome as plain data.

    Candidates are stored in their (perf-cost-sorted) order; ``best`` is
    the head by construction (:meth:`MarkovChain.run`), so it needs no
    separate encoding.
    """
    from ..synthesis.checkpoint import _encode_insns

    return {
        "stats": dataclasses.asdict(result.statistics),
        "candidates": [{
            "insns": _encode_insns(candidate.program.instructions),
            "perf_cost": candidate.perf_cost,
            "instruction_count": candidate.instruction_count,
            "estimated_latency": candidate.estimated_latency,
            "found_at_iteration": candidate.found_at_iteration,
            "found_at_seconds": candidate.found_at_seconds,
        } for candidate in result.candidates],
    }


def decode_chain_result(source: BpfProgram, encoded: dict) -> ChainResult:
    from ..synthesis.checkpoint import _decode_insns

    candidates = [VerifiedCandidate(
        program=source.with_instructions(_decode_insns(entry["insns"])),
        perf_cost=float(entry["perf_cost"]),
        instruction_count=int(entry["instruction_count"]),
        estimated_latency=float(entry["estimated_latency"]),
        found_at_iteration=int(entry["found_at_iteration"]),
        found_at_seconds=float(entry["found_at_seconds"]),
    ) for entry in encoded["candidates"]]
    return ChainResult(best=candidates[0] if candidates else None,
                       candidates=candidates,
                       statistics=ChainStatistics(**encoded["stats"]))


# --------------------------------------------------------------------------- #
# Running one shard
# --------------------------------------------------------------------------- #
def run_shard(spec, shard: dict, store_path: Optional[str],
              checkpoint_key: Optional[str],
              generation_hook: Optional[Callable] = None,
              progress_listener: Optional[Callable] = None,
              num_workers: Optional[int] = None) -> dict:
    """Run one shard's chains to completion; returns the merge payload.

    ``spec`` is a :class:`~repro.service.jobs.JobSpec` (the *original*
    job's spec — iteration counts, seed, engine etc. all read from it);
    ``shard`` is a :func:`plan_shards` descriptor.  Runs in-process: the
    coordinator calls this directly for local shards, and a peer daemon's
    job runner calls it for farmed-out shard sub-jobs.
    """
    program = spec.build_program()
    options = spec.search_options(store_path, checkpoint_key,
                                  generation_hook)
    lo, hi = int(shard["lo"]), int(shard["hi"])
    options = dataclasses.replace(
        options,
        chain_index_offset=lo,
        progress_listener=progress_listener,
        window_mode=False)
    if num_workers is not None:
        options = dataclasses.replace(options,
                                      num_workers=max(1, int(num_workers)))
    settings = all_parameter_settings(options.goal)[:int(shard["total"])]
    controller = ChainController(program, settings[lo:hi], options)
    results = controller.run()
    payload = {
        "v": SHARD_PAYLOAD_VERSION,
        "shard": {key: int(shard[key])
                  for key in ("index", "of", "lo", "hi", "total")},
        "chains": [encode_chain_result(result) for result in results],
        "cache": encode_cache_state(controller.shared_cache.snapshot_state()),
        "counterexamples_shared": controller.counterexamples_shared,
        "num_generations": controller.num_generations,
        "executor_used": controller.executor_kind,
        "store": dict(controller.store_summary)
        if controller.store_summary else None,
    }
    return payload


# --------------------------------------------------------------------------- #
# Deterministic merge
# --------------------------------------------------------------------------- #
def merge_shard_payloads(source: BpfProgram, spec, payloads: List[dict],
                         kernel_checker=None,
                         elapsed_seconds: float = 0.0) -> SearchResult:
    """Merge shard payloads into one :class:`SearchResult`.

    Payloads are ordered by shard index (= global chain order) and must
    tile ``[0, total)`` exactly; the merged chain list then matches the
    unsharded controller's chain-index merge order, and the shared post-
    processing of :func:`~repro.synthesis.search.assemble_search_result`
    (sort → kernel filter → dedup → top-k) does the rest.  Caches are
    merged in the same order with accumulated counters, mirroring the
    controller's end-of-run ``shared_cache.merge`` loop.
    """
    ordered = sorted(payloads, key=lambda p: int(p["shard"]["index"]))
    if not ordered:
        raise ValueError("no shard payloads to merge")
    for payload in ordered:
        if int(payload.get("v", -1)) != SHARD_PAYLOAD_VERSION:
            raise ValueError("shard payload version mismatch")
    total = int(ordered[0]["shard"]["total"])
    covered = 0
    for payload in ordered:
        shard = payload["shard"]
        if int(shard["lo"]) != covered or int(shard["total"]) != total:
            raise ValueError("shard payloads do not tile the chain range")
        covered = int(shard["hi"])
    if covered != total:
        raise ValueError("shard payloads do not cover every chain")

    options = spec.search_options(None, None)
    settings = all_parameter_settings(options.goal)[:total]

    chain_results = [decode_chain_result(source, encoded)
                     for payload in ordered
                     for encoded in payload["chains"]]

    cache = EquivalenceCache.restore_state(
        decode_cache_state(ordered[0]["cache"]))
    for payload in ordered[1:]:
        cache.merge(EquivalenceCache.restore_state(
            decode_cache_state(payload["cache"])), include_counters=True)

    store_stats: Optional[Dict[str, object]] = None
    for payload in ordered:
        summary = payload.get("store")
        if not summary:
            continue
        if store_stats is None:
            store_stats = dict(summary)
        else:
            for field, value in summary.items():
                if isinstance(value, int) \
                        and isinstance(store_stats.get(field), int):
                    store_stats[field] += value

    return assemble_search_result(
        source, chain_results, settings, options, kernel_checker,
        elapsed_seconds=elapsed_seconds,
        cache_stats=cache.stats(),
        counterexamples_shared=sum(
            int(payload["counterexamples_shared"]) for payload in ordered),
        num_generations=int(ordered[0]["num_generations"]),
        executor_used=str(ordered[0]["executor_used"]),
        store_stats=store_stats)
