"""Modular (window-based) verification — paper §5 optimization IV, Appendix C.2.

Instead of verifying equivalence of whole programs, K2 synthesizes rewrites
inside small *windows* and verifies each window under:

* a **stronger precondition** than a peephole optimizer: the registers live
  into the window are shared symbolic variables, and registers whose value
  the static analysis proves constant at the window entry are constrained to
  those constants (the "inferred concrete valuations" of the paper);
* a **weaker postcondition**: only the variables live out of the window (and
  the memory/map effects inside it) must agree.

The window verification condition is::

    variables live into window 1 == variables live into window 2
    ∧ inferred concrete valuations of variables
    ∧ input-output behaviour of window 1
    ∧ input-output behaviour of window 2
    ⇒ variables live out of window 1 != variables live out of window 2
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..bpf import builders
from ..bpf.liveness import compute_liveness
from ..bpf.memtypes import analyze_types
from ..bpf.opcodes import STACK_SIZE
from ..bpf.program import BpfProgram
from ..bpf.regions import MemRegion
from ..smt import (
    CheckResult, Expr, Solver, bool_or, bv_add, bv_const, bv_eq, bv_ne, bv_var,
)
from .checker import EquivalenceOptions, EquivalenceResult
from .memory_model import SymbolicInputs
from .symbolic import ImpreciseEncodingError, SymbolicExecutor

__all__ = ["Window", "WindowEquivalenceChecker", "select_windows"]


@dataclasses.dataclass(frozen=True)
class Window:
    """A contiguous instruction range ``[start, end)`` inside a program."""

    start: int
    end: int

    def __len__(self) -> int:
        return self.end - self.start


def select_windows(program: BpfProgram, max_size: int = 4) -> List[Window]:
    """Straight-line windows of at most ``max_size`` instructions.

    Windows never contain branches, calls or exits, so the window body is a
    basic-block fragment; this mirrors K2's choice of windows among basic
    blocks of bounded size.
    """
    windows: List[Window] = []
    start: Optional[int] = None
    for index, insn in enumerate(program.instructions):
        breaks = (insn.is_branch or insn.is_call or insn.is_exit) and not insn.is_nop
        if breaks:
            if start is not None and index - start >= 1:
                windows.append(Window(start, index))
            start = None
            continue
        if start is None:
            start = index
        if index - start + 1 == max_size:
            windows.append(Window(start, index + 1))
            start = None
    if start is not None and len(program.instructions) - start >= 1:
        windows.append(Window(start, len(program.instructions)))
    return windows


class _WindowSession:
    """Incremental solver state shared by the window queries of one source.

    Window queries against the same source share: the symbolic inputs, the
    input well-formedness constraints (asserted once at the solver's base
    level), and — per window — the entry-register analysis and the source
    window's symbolic execution.  Each query's candidate-side constraints
    and postcondition live in one push/pop scope, so the bit-blasted CNF
    and the clauses learned from one candidate prune the next.
    """

    def __init__(self, source: BpfProgram, options: EquivalenceOptions):
        self.source_key = source.structural_key()
        self.solver = Solver(max_conflicts=options.max_conflicts)
        self.inputs = SymbolicInputs(source.hook, source.maps)
        self.liveness = compute_liveness(source.instructions)
        self._base_asserted = False
        #: (start, end) -> (entry registers, preconditions, source result).
        self.windows: Dict[Tuple[int, int], tuple] = {}
        #: (start, end) -> live stack offsets (or None for "all").
        self.live_stack: Dict[Tuple[int, int], Optional[set]] = {}

    def assert_base(self) -> None:
        if self._base_asserted:
            return
        for constraint in self.inputs.constraints():
            self.solver.add(constraint)
        self._base_asserted = True


class WindowEquivalenceChecker:
    """Equivalence of two programs that differ only inside one window."""

    def __init__(self, options: Optional[EquivalenceOptions] = None):
        self.options = options or EquivalenceOptions()
        self.num_queries = 0
        #: Per-query conflict-budget override (``None`` uses
        #: ``options.max_conflicts``); set by the portfolio front end.
        self.conflict_budget: Optional[int] = None
        self._session: Optional[_WindowSession] = None

    # ------------------------------------------------------------------ #
    # Incremental session management
    # ------------------------------------------------------------------ #
    def reset_session(self) -> None:
        """Drop the incremental solver state (fresh encoding on next query)."""
        self._session = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_session"] = None
        return state

    def _session_for(self, source: BpfProgram) -> _WindowSession:
        session = self._session
        if session is not None and (
                session.source_key != source.structural_key()
                or session.solver.num_clauses > self.options.max_session_clauses):
            session = None
        if session is None:
            session = _WindowSession(source, self.options)
            self._session = session
        budget = self.conflict_budget if self.conflict_budget is not None \
            else self.options.max_conflicts
        if session.solver.conflict_budget != budget:
            session.solver.set_conflict_budget(budget)
        return session

    @property
    def session_conflicts(self) -> int:
        """Conflicts resolved by the live session's SAT core (0 if none)."""
        session = self._session
        return session.solver.conflicts if session is not None else 0

    # ------------------------------------------------------------------ #
    def check(self, source: BpfProgram, candidate: BpfProgram,
              window: Window) -> EquivalenceResult:
        """Window verification; falls back to "unknown" when not applicable."""
        self.num_queries += 1
        if len(source.instructions) != len(candidate.instructions):
            return EquivalenceResult(equivalent=False, unknown=True,
                                     reason="programs have different lengths")
        for index in range(len(source.instructions)):
            if window.start <= index < window.end:
                continue
            if source.instructions[index] != candidate.instructions[index]:
                return EquivalenceResult(
                    equivalent=False, unknown=True,
                    reason="programs differ outside the window")

        try:
            return self._check_window(source, candidate, window)
        except ImpreciseEncodingError as exc:
            return EquivalenceResult(equivalent=False, unknown=True,
                                     reason=f"imprecise window encoding: {exc}")
        except Exception as exc:  # broken candidates (e.g. malformed CFG)
            return EquivalenceResult(equivalent=False, unknown=True,
                                     reason=f"window encoding failed: {exc}")

    # ------------------------------------------------------------------ #
    def _window_program(self, program: BpfProgram,
                        window: Window) -> BpfProgram:
        body = list(program.instructions[window.start:window.end])
        for insn in body:
            if (insn.is_branch or insn.is_call) and not insn.is_nop:
                raise ImpreciseEncodingError(
                    "window contains control flow or helper calls")
        body.append(builders.EXIT_INSN())
        return program.with_instructions(body, name=f"{program.name}_window")

    def _entry_registers(self, inputs: SymbolicInputs, program: BpfProgram,
                         window: Window) -> Tuple[Dict[int, Expr], List[Expr]]:
        """Shared live-in register variables plus precondition constraints."""
        analysis = analyze_types(program.instructions, program.hook)
        state = analysis.state_before(window.start)
        registers: Dict[int, Expr] = {}
        preconditions: List[Expr] = []
        for reg in range(10):  # r10 keeps its standard value
            variable = bv_var(f"livein_r{reg}", 64)
            value = state.regs[reg] if state is not None else None
            if value is None:
                registers[reg] = variable
                continue
            if value.region == MemRegion.STACK and value.offset is not None:
                registers[reg] = bv_add(inputs.stack_base,
                                        bv_const(value.offset, 64))
            elif value.region == MemRegion.PACKET and value.offset is not None:
                registers[reg] = bv_add(inputs.pkt_base,
                                        bv_const(value.offset, 64))
            elif value.region == MemRegion.CTX and value.offset is not None:
                registers[reg] = bv_add(inputs.ctx_base,
                                        bv_const(value.offset, 64))
            elif value.region == MemRegion.SCALAR and value.const is not None:
                # Inferred concrete valuation: a strong precondition (§5 IV).
                registers[reg] = variable
                preconditions.append(bv_eq(variable, bv_const(value.const, 64)))
            else:
                registers[reg] = variable
        return registers, preconditions

    def _check_window(self, source: BpfProgram, candidate: BpfProgram,
                      window: Window) -> EquivalenceResult:
        session = self._session_for(source)
        inputs = session.inputs

        window_key = (window.start, window.end)
        cached = session.windows.get(window_key)
        if cached is None:
            entry, preconditions = self._entry_registers(inputs, source, window)
            source_window = self._window_program(source, window)
            result1 = SymbolicExecutor(inputs, "p1").execute(
                source_window, entry_registers=dict(entry))
            cached = (entry, preconditions, result1)
            session.windows[window_key] = cached
        entry, preconditions, result1 = cached

        candidate_window = self._window_program(candidate, window)
        result2 = SymbolicExecutor(inputs, "p2").execute(
            candidate_window, entry_registers=dict(entry))

        # Postcondition: live-out registers of the source program, plus all
        # memory stores performed inside the window.
        liveness = session.liveness
        live_out = liveness.live_out_at(window.end - 1) if window.end > 0 else frozenset()

        differences: List[Expr] = []
        for reg in sorted(live_out):
            differences.append(bv_ne(result1.final_registers[reg],
                                     result2.final_registers[reg]))

        if window_key in session.live_stack:
            live_stack = session.live_stack[window_key]
        else:
            live_stack = self._live_stack_offsets(source, window)
            session.live_stack[window_key] = live_stack
        for region in (MemRegion.STACK, MemRegion.PACKET, MemRegion.MAP_VALUE):
            mem1 = result1.memories.get(region)
            mem2 = result2.memories.get(region)
            if mem1 is None and mem2 is None:
                continue
            if (mem1 and mem1.has_symbolic_writes()) or \
               (mem2 and mem2.has_symbolic_writes()):
                return EquivalenceResult(equivalent=False, unknown=True,
                                         reason="symbolic store inside window")
            offsets = set(mem1.written_offsets() if mem1 else []) | \
                set(mem2.written_offsets() if mem2 else [])
            if region == MemRegion.STACK and live_stack is not None:
                # Weaker postcondition (§5 IV): stack bytes never read after
                # the window are not observable and need not match.
                offsets &= live_stack
            for offset in sorted(offsets):
                final1 = (mem1.final_byte(offset) if mem1
                          else self._untouched_byte(inputs, region, offset, result1))
                final2 = (mem2.final_byte(offset) if mem2
                          else self._untouched_byte(inputs, region, offset, result2))
                differences.append(bv_ne(final1, final2))

        if not differences:
            return EquivalenceResult(equivalent=True,
                                     reason="windows have no live outputs")

        difference = bool_or(*differences)
        if difference.op == "boolconst":
            if difference.value:
                return EquivalenceResult(equivalent=False,
                                         reason="window outputs trivially differ")
            return EquivalenceResult(equivalent=True,
                                     reason="window outputs syntactically identical")

        session.assert_base()
        solver = session.solver
        token = solver.push()
        try:
            # Preconditions bind the shared live-in variables to this
            # window's inferred valuations, so they are scoped per query.
            for constraint in preconditions:
                solver.add(constraint)
            for constraint in result1.constraints:
                solver.add(constraint)
            for constraint in result2.constraints:
                solver.add(constraint)
            solver.add(difference)

            verdict = solver.check()
            if verdict == CheckResult.UNSAT:
                return EquivalenceResult(equivalent=True, used_solver=True,
                                         reason="window proved equivalent")
            if verdict == CheckResult.SAT:
                return EquivalenceResult(equivalent=False, used_solver=True,
                                         reason="window counterexample found")
            return EquivalenceResult(equivalent=False, unknown=True,
                                     used_solver=True,
                                     reason="solver budget exhausted")
        finally:
            solver.pop(token)

    @staticmethod
    def _untouched_byte(inputs: SymbolicInputs, region: MemRegion, offset: int,
                        result) -> Expr:
        from .memory_model import RegionMemory

        memory = RegionMemory(region, inputs, "untouched")
        return memory.final_byte(offset)

    @staticmethod
    def _live_stack_offsets(source: BpfProgram,
                            window: Window) -> Optional[set]:
        """Stack byte offsets that may be read after the window (may-live).

        This is a conservative liveness analysis with kill tracking: a byte
        overwritten on the straight-line path following the window (before
        any control-flow divergence) is dead at the window boundary even if
        it is read later.  Returns ``None`` when a post-window stack read
        cannot be bounded to a concrete offset, in which case every stack
        byte must be compared.
        """
        instructions = source.instructions
        analysis = analyze_types(instructions, source.hook)
        jump_targets = set()
        for index, insn in enumerate(instructions):
            if insn.is_jump and not insn.is_call and not insn.is_exit \
                    and not insn.is_nop:
                jump_targets.add(index + 1 + insn.off)

        live: set = set()
        killed: set = set()
        tracking_kills = True
        for index in range(window.end, len(instructions)):
            insn = instructions[index]
            if index in jump_targets or (insn.is_branch and not insn.is_nop):
                # Control flow may diverge or merge here: stop treating later
                # stores as kills (they may not execute on every path).
                tracking_kills = False
            if insn.is_call:
                # Helper calls read memory through pointer arguments (e.g.
                # map keys built on the stack): every byte not already
                # overwritten may be observed.
                live.update(set(range(STACK_SIZE)) - killed)
                continue
            if insn.is_store or insn.is_xadd:
                region, offset = analysis.pointer_info(index)
                if region == MemRegion.STACK and offset is not None:
                    span = range(offset, offset + insn.access_bytes)
                    if insn.is_xadd:
                        live.update(set(span) - killed)  # xadd also reads
                    elif tracking_kills:
                        killed.update(span)
                continue
            if insn.is_load:
                region, offset = analysis.pointer_info(index)
                if region != MemRegion.STACK:
                    continue
                if offset is None:
                    return None
                live.update(set(range(offset, offset + insn.access_bytes))
                            - killed)
        return live
