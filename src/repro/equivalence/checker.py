"""Full-program and window-based equivalence checking (paper §4, §5).

The :class:`EquivalenceChecker` builds the logic query of §4::

    inputs to program 1 == inputs to program 2
    ∧ input-output behaviour of program 1
    ∧ input-output behaviour of program 2
    ⇒ outputs of program 1 != outputs of program 2

by executing both programs symbolically over *shared* input variables and
asking the solver for an input on which the observable outputs differ.  If
the query is unsatisfiable the programs are equivalent; if it is satisfiable
the model is turned into a concrete counterexample test case that the
synthesizer adds to its test suite (Fig. 1 in the paper).

Observable outputs:

* the return value r0,
* the final contents of every packet byte either program wrote,
* the final contents of every map-value byte either program wrote,
* the sequence of map updates / deletions (compared effect-for-effect),
* the sequence of other helper calls (uninterpreted functions: both programs
  must make the same calls with the same arguments under the same conditions).

Window-based (modular) verification, §5 IV, is provided by
:class:`WindowEquivalenceChecker` in :mod:`repro.equivalence.window`.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional, Tuple

from ..bpf.program import BpfProgram
from ..interpreter import ProgramInput
from ..smt import (
    CheckResult, Expr, Solver, bool_and, bool_or, bool_xor, bv_ne,
)
from .memory_model import SymbolicInputs, map_congruence_constraints
from .symbolic import ImpreciseEncodingError, SymbolicExecutor, SymbolicResult

__all__ = ["EquivalenceOptions", "EquivalenceResult", "EquivalenceChecker"]


@dataclasses.dataclass
class EquivalenceOptions:
    """Toggles for the §5 optimizations, exercised by the Table 4 ablation.

    This is the *single* options object for the whole candidate-validation
    path: it is owned by :class:`repro.verification.VerificationPipeline`,
    which hands the same instance to every stage (interpreter replay, cache,
    window checking, full symbolic checking).  The four ``stage`` toggles
    map one-to-one onto pipeline stages — see :meth:`stage_names`.
    """

    #: I — separate read/write tables per memory region.
    memory_type_concretization: bool = True
    #: II — per-map two-level tables (always structural in this encoding, but
    #: turning it off widens every lookup to consider every map).
    map_type_concretization: bool = True
    #: III — concrete offsets decided at encoding time.
    memory_offset_concretization: bool = True
    #: IV — modular (window) verification; the pipeline's ``window`` stage.
    modular_verification: bool = True
    #: V — cache of canonicalized programs; the pipeline's ``cache`` stage.
    enable_cache: bool = True
    #: Replay candidates against pooled counterexamples before any solver
    #: work; the pipeline's ``replay`` stage.
    interpreter_replay: bool = True
    #: Full-program symbolic equivalence; the pipeline's ``full`` stage.
    #: Disabling it (a Table-4-style ablation) makes the pipeline report
    #: "unknown" for whatever the earlier stages cannot decide.
    full_symbolic: bool = True
    #: Conflict budget handed to the SAT solver per query.
    max_conflicts: int = 2_000_000
    #: Clause-database size at which a checker retires its incremental
    #: solver session and starts a fresh one (bounds long-run memory).
    max_session_clauses: int = 250_000
    #: Portfolio front end for the ``full`` stage: run the incremental
    #: session and a fresh-solver-per-query session on a deterministic
    #: budget-doubling dovetail; the first conclusive verdict wins (see
    #: :class:`repro.verification.PortfolioEquivalenceChecker`).  Bounds the
    #: worst case of a polluted incremental session without giving up its
    #: common-case wins.
    portfolio: bool = False
    #: First conflict-budget slice of the portfolio dovetail.
    portfolio_initial_conflicts: int = 4096
    #: Multiplier applied to the slice budget after both front ends
    #: exhaust it (capped at ``max_conflicts``).
    portfolio_growth: int = 8

    #: Pipeline stage order, mapped to the toggle controlling each stage.
    STAGE_TOGGLES = (("replay", "interpreter_replay"),
                     ("cache", "enable_cache"),
                     ("window", "modular_verification"),
                     ("full", "full_symbolic"))

    def stage_names(self) -> Tuple[str, ...]:
        """The enabled pipeline stages, in escalation order."""
        return tuple(stage for stage, toggle in self.STAGE_TOGGLES
                     if getattr(self, toggle))

    @classmethod
    def from_stages(cls, stages: str, **kwargs) -> "EquivalenceOptions":
        """Build options from a comma-separated stage list.

        ``EquivalenceOptions.from_stages("replay,cache,full")`` is the
        one-line way to express a Table 4 ablation configuration; unknown
        stage names raise ``ValueError``.
        """
        known = {stage: toggle for stage, toggle in cls.STAGE_TOGGLES}
        enabled = [part.strip() for part in stages.split(",") if part.strip()]
        for name in enabled:
            if name not in known:
                raise ValueError(
                    f"unknown verification stage {name!r}; "
                    f"choose from {', '.join(known)}")
        for stage, toggle in cls.STAGE_TOGGLES:
            kwargs.setdefault(toggle, stage in enabled)
        return cls(**kwargs)


@dataclasses.dataclass
class EquivalenceResult:
    """Outcome of one equivalence query."""

    equivalent: bool
    counterexample: Optional[ProgramInput] = None
    unknown: bool = False
    reason: str = ""
    solver_time: float = 0.0
    used_solver: bool = False

    def __bool__(self) -> bool:
        return self.equivalent


class _CheckerSession:
    """Incremental solver state shared by every query against one source.

    The source program's encoding never changes between queries, so its
    symbolic execution is done once and its constraints (plus the input
    well-formedness constraints) are asserted once at the solver's base
    level.  Each candidate query then runs inside one push/pop scope: only
    the candidate's constraints and the "outputs differ" formula are new,
    and the hash-consed bit-blaster re-blasts none of the shared structure.
    """

    def __init__(self, source: BpfProgram, options: EquivalenceOptions):
        self.source_key = source.structural_key()
        self.solver = Solver(max_conflicts=options.max_conflicts)
        self.inputs = SymbolicInputs(source.hook, source.maps)
        self.result1 = SymbolicExecutor(
            self.inputs, "p1",
            concretize_offsets=options.memory_offset_concretization,
        ).execute(source)
        self._base_asserted = False

    def assert_base(self) -> None:
        if self._base_asserted:
            return
        for constraint in self.inputs.constraints():
            self.solver.add(constraint)
        for constraint in self.result1.constraints:
            self.solver.add(constraint)
        self._base_asserted = True


class EquivalenceChecker:
    """Formal input/output equivalence of two BPF programs."""

    def __init__(self, options: Optional[EquivalenceOptions] = None):
        self.options = options or EquivalenceOptions()
        self.num_queries = 0
        self.total_time = 0.0
        #: Per-query conflict-budget override (``None`` uses
        #: ``options.max_conflicts``).  The portfolio front end sets this
        #: between dovetail slices; it applies to the live session solver.
        self.conflict_budget: Optional[int] = None
        self._session: Optional[_CheckerSession] = None

    # ------------------------------------------------------------------ #
    # Incremental session management
    # ------------------------------------------------------------------ #
    def reset_session(self) -> None:
        """Drop the incremental solver state (fresh encoding on next query)."""
        self._session = None

    def __getstate__(self):
        # Solver sessions are rebuilt lazily and can be large; never ship
        # them across process boundaries with a pickled checker.
        state = self.__dict__.copy()
        state["_session"] = None
        return state

    def _session_for(self, source: BpfProgram) -> _CheckerSession:
        session = self._session
        if session is not None and (
                session.source_key != source.structural_key()
                or session.solver.num_clauses > self.options.max_session_clauses):
            session = None
        if session is None:
            session = _CheckerSession(source, self.options)
            self._session = session
        budget = self.conflict_budget if self.conflict_budget is not None \
            else self.options.max_conflicts
        if session.solver.conflict_budget != budget:
            session.solver.set_conflict_budget(budget)
        return session

    @property
    def session_conflicts(self) -> int:
        """Conflicts resolved by the live session's SAT core (0 if none).

        A deterministic effort metric: unlike wall clock it is identical
        across runs and executor backends, which is what lets the portfolio
        order its front ends without breaking reproducibility.
        """
        session = self._session
        return session.solver.conflicts if session is not None else 0

    # ------------------------------------------------------------------ #
    def check(self, source: BpfProgram, candidate: BpfProgram) -> EquivalenceResult:
        """Decide whether ``candidate`` is equivalent to ``source``."""
        started = time.perf_counter()
        self.num_queries += 1
        try:
            result = self._check_inner(source, candidate)
        except ImpreciseEncodingError as exc:
            result = EquivalenceResult(equivalent=False, unknown=True,
                                       reason=f"imprecise encoding: {exc}")
        except Exception as exc:  # broken candidates (e.g. malformed CFG)
            result = EquivalenceResult(equivalent=False, unknown=True,
                                       reason=f"encoding failed: {exc}")
        result.solver_time = time.perf_counter() - started
        self.total_time += result.solver_time
        return result

    # ------------------------------------------------------------------ #
    def _check_inner(self, source: BpfProgram,
                     candidate: BpfProgram) -> EquivalenceResult:
        if source.structural_key() == candidate.structural_key():
            return EquivalenceResult(equivalent=True, reason="identical programs")

        session = self._session_for(source)
        concretize = self.options.memory_offset_concretization
        result1 = session.result1
        result2 = SymbolicExecutor(session.inputs, "p2",
                                   concretize_offsets=concretize).execute(candidate)

        difference = self._outputs_differ(result1, result2)
        if difference is None:
            return EquivalenceResult(
                equivalent=False, unknown=True,
                reason="observable effects cannot be aligned "
                       "(different helper or map effect structure)")
        if difference.op == "boolconst" and not difference.value:
            return EquivalenceResult(equivalent=True,
                                     reason="outputs syntactically identical")

        session.assert_base()
        solver = session.solver
        token = solver.push()
        try:
            for constraint in result2.constraints:
                solver.add(constraint)
            # Link the two executions' initial map reads semantically (equal
            # keys => equal initial contents); keys read through distinct
            # expressions otherwise get unrelated variables, and the solver
            # fabricates counterexamples for equivalent programs.  Scoped to
            # this query: the candidate's key expressions are new each time.
            reads = (result1.map_model.initial_reads
                     + result2.map_model.initial_reads)
            for constraint in map_congruence_constraints(session.inputs, reads):
                solver.add(constraint)
            solver.add(difference)

            verdict = solver.check()
            if verdict == CheckResult.UNSAT:
                return EquivalenceResult(equivalent=True, used_solver=True,
                                         reason="solver proved equivalence")
            if verdict == CheckResult.SAT:
                counterexample = session.inputs.extract_test_case(solver.model())
                return EquivalenceResult(equivalent=False, used_solver=True,
                                         counterexample=counterexample,
                                         reason="counterexample found")
            return EquivalenceResult(equivalent=False, unknown=True,
                                     used_solver=True,
                                     reason="solver budget exhausted")
        finally:
            solver.pop(token)

    # ------------------------------------------------------------------ #
    # Output comparison
    # ------------------------------------------------------------------ #
    def _outputs_differ(self, a: SymbolicResult,
                        b: SymbolicResult) -> Optional[Expr]:
        """Build the "outputs differ" formula, or None if not alignable."""
        from ..bpf.regions import MemRegion

        differences: List[Expr] = [bv_ne(a.return_value, b.return_value)]

        # Packet memory: compare the final value of every concretely-addressed
        # byte either program wrote.  Writes to symbolic offsets cannot be
        # aligned soundly, so we conservatively refuse.
        mem_a = a.memories.get(MemRegion.PACKET)
        mem_b = b.memories.get(MemRegion.PACKET)
        if (mem_a and mem_a.has_symbolic_writes()) or \
           (mem_b and mem_b.has_symbolic_writes()):
            return None
        offsets = set(mem_a.written_offsets() if mem_a else []) | \
            set(mem_b.written_offsets() if mem_b else [])
        for offset in sorted(offsets):
            final_a = self._packet_final_byte(a, offset)
            final_b = self._packet_final_byte(b, offset)
            differences.append(bv_ne(final_a, final_b))

        # Map value cells: align lookups pairwise (same call order) and
        # compare the final contents of every byte either program wrote.
        map_difference = self._map_value_differences(a, b)
        if map_difference is None:
            return None
        differences.extend(map_difference)

        # Map effects (updates / deletes): compare effect-for-effect.
        effects_a = a.map_model.effects
        effects_b = b.map_model.effects
        if len(effects_a) != len(effects_b):
            return None
        for ea, eb in zip(effects_a, effects_b):
            if ea.kind != eb.kind or ea.map_fd != eb.map_fd:
                return None
            differences.append(bool_xor(ea.condition, eb.condition))
            both = bool_and(ea.condition, eb.condition)
            differences.append(bool_and(both, bv_ne(ea.key, eb.key)))
            if ea.value is not None and eb.value is not None:
                differences.append(bool_and(both, bv_ne(ea.value, eb.value)))

        # Uninterpreted helper calls: same calls, same arguments, same order.
        calls_a = a.helper_calls
        calls_b = b.helper_calls
        if len(calls_a) != len(calls_b):
            return None
        for ca, cb in zip(calls_a, calls_b):
            if ca.name != cb.name or len(ca.args) != len(cb.args):
                return None
            differences.append(bool_xor(ca.condition, cb.condition))
            both = bool_and(ca.condition, cb.condition)
            for arg_a, arg_b in zip(ca.args, cb.args):
                differences.append(bool_and(both, bv_ne(arg_a, arg_b)))

        return bool_or(*differences)

    @staticmethod
    def _packet_final_byte(result: SymbolicResult, offset: int) -> Expr:
        from ..bpf.regions import MemRegion
        from .memory_model import RegionMemory

        memory = result.memories.get(MemRegion.PACKET)
        if memory is None:
            # This program never wrote the byte: its final value is the input.
            memory = RegionMemory(MemRegion.PACKET, result.inputs, "untouched")
        return memory.final_byte(offset)

    def _map_value_differences(self, a: SymbolicResult,
                               b: SymbolicResult) -> Optional[List[Expr]]:
        """Differences in map-value cells written through lookup pointers."""
        from ..bpf.regions import MemRegion
        from ..smt import bv_ite

        lookups_a = a.map_model.lookups
        lookups_b = b.map_model.lookups
        mem_a = a.memories.get(MemRegion.MAP_VALUE)
        mem_b = b.memories.get(MemRegion.MAP_VALUE)
        writes_a = mem_a.writes if mem_a else []
        writes_b = mem_b.writes if mem_b else []
        if not writes_a and not writes_b:
            return []
        if len(lookups_a) != len(lookups_b):
            return None
        if (mem_a and mem_a.has_symbolic_writes()) or \
           (mem_b and mem_b.has_symbolic_writes()):
            return None

        differences: List[Expr] = []
        for la, lb in zip(lookups_a, lookups_b):
            if la.map_fd != lb.map_fd:
                return None
            # Bytes of this cell written by either program (relative offsets).
            offsets_a = {w.concrete_offset - la.address for w in writes_a
                         if la.address <= w.concrete_offset < la.address + 0x1000}
            offsets_b = {w.concrete_offset - lb.address for w in writes_b
                         if lb.address <= w.concrete_offset < lb.address + 0x1000}
            touched = offsets_a | offsets_b
            if not touched:
                continue
            # A written cell is observable, so the two programs must have
            # looked up the same key under the same conditions.
            differences.append(bool_xor(la.condition, lb.condition))
            differences.append(bool_and(la.condition, lb.condition,
                                        bv_ne(la.key, lb.key)))
            for rel in sorted(touched):
                init_a = la.value_bytes[rel] if rel < len(la.value_bytes) else None
                init_b = lb.value_bytes[rel] if rel < len(lb.value_bytes) else None
                if init_a is None or init_b is None:
                    return None
                final_a, final_b = init_a, init_b
                for write in writes_a:
                    if write.concrete_offset == la.address + rel:
                        final_a = bv_ite(write.condition, write.value, final_a)
                for write in writes_b:
                    if write.concrete_offset == lb.address + rel:
                        final_b = bv_ite(write.condition, write.value, final_b)
                differences.append(bv_ne(final_a, final_b))
        return differences
