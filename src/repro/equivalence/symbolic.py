"""Symbolic execution of BPF programs into first-order logic (paper §4).

The :class:`SymbolicExecutor` turns a loop-free BPF program into:

* an expression for the final value of r0 (the program's return value),
* per-region write tables capturing every memory store with its path
  condition (paper §4.2),
* a map model with lookup instances, update/delete effects and the
  Ackermann-style constraints that encode two-level map aliasing (§4.3),
* a list of uninterpreted helper calls (other helpers, §4.3),
* a list of side constraints that must be assumed when checking equivalence.

Control flow is encoded in the bounded-model-checking style the paper uses:
blocks are visited in topological order, register states are merged with
if-then-else expressions at join points, and every store or effect carries
the path condition of the block it belongs to (§4.2 step 3).

The executor performs the three concretization optimizations of §5 natively:
pointer provenance and concrete offsets are recovered from the *structure* of
the symbolic address expressions (``stack_base + c``, ``pkt_base + c``,
constant map-value cell addresses), so aliasing checks between concrete
offsets are decided at formula-construction time.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..bpf.cfg import build_cfg
from ..bpf.helpers import HELPERS, HelperId
from ..bpf.hooks import CtxFieldKind, Hook
from ..bpf.instruction import Instruction
from ..bpf.opcodes import AluOp, JmpOp, SrcOperand, STACK_SIZE
from ..bpf.program import BpfProgram
from ..bpf.regions import MemRegion
from ..interpreter.state import MAP_PTR_BASE
from ..smt import (
    Expr, FALSE, TRUE, bool_and, bool_not, bool_or, bv_add, bv_and, bv_ashr,
    bv_concat, bv_const, bv_eq, bv_extract, bv_ite, bv_lshr, bv_mul, bv_ne,
    bv_or, bv_shl, bv_sge, bv_sgt, bv_sle, bv_slt, bv_sub, bv_udiv, bv_uge,
    bv_ugt, bv_ule, bv_ult, bv_urem, bv_var, bv_xor, bv_zero_extend,
)
from .memory_model import (
    HelperCallRecord, MapModel, RegionMemory, SymbolicInputs,
)

__all__ = ["SymbolicExecutor", "SymbolicResult", "ImpreciseEncodingError"]

_U64 = (1 << 64) - 1

#: Concrete address space used for lookup-returned value cells; distinct per
#: program copy so a candidate cannot forge a pointer into the other copy.
_MAP_CELL_BASE = {"p1": 0x7000_0000_0000, "p2": 0x7800_0000_0000}


class ImpreciseEncodingError(Exception):
    """Raised when the program uses a feature the encoding cannot model
    precisely (e.g. a store through a pointer of unknown provenance)."""


@dataclasses.dataclass
class SymbolicResult:
    """Everything the equivalence checker needs about one program."""

    return_value: Expr
    memories: Dict[MemRegion, RegionMemory]
    map_model: MapModel
    helper_calls: List[HelperCallRecord]
    constraints: List[Expr]
    inputs: SymbolicInputs
    exit_conditions: List[Expr]
    #: Register state at program exit, merged over all exit paths.  Used by
    #: window-based verification to compare live-out variables (§5 IV).
    final_registers: Dict[int, Expr] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class _BlockState:
    regs: Dict[int, Expr]
    path: Expr

    def copy(self) -> "_BlockState":
        return _BlockState(dict(self.regs), self.path)


class SymbolicExecutor:
    """Encode one program as first-order logic over shared symbolic inputs."""

    def __init__(self, inputs: SymbolicInputs, prefix: str = "p1",
                 concretize_offsets: bool = True):
        self.inputs = inputs
        self.prefix = prefix
        self.concretize_offsets = concretize_offsets
        self.memories: Dict[MemRegion, RegionMemory] = {}
        self.map_model = MapModel(inputs, prefix,
                                  _MAP_CELL_BASE.get(prefix, 0x7000_0000_0000))
        self.helper_calls: List[HelperCallRecord] = []
        self.constraints: List[Expr] = []
        self._fresh_counter = 0
        self._random_calls = 0
        self._packet_epoch = 0

    # ------------------------------------------------------------------ #
    def execute(self, program: BpfProgram,
                entry_registers: Optional[Dict[int, Expr]] = None) -> SymbolicResult:
        cfg = build_cfg(program.instructions)
        if not cfg.is_loop_free():
            raise ImpreciseEncodingError("program contains a loop")
        hook = program.hook

        entry_regs = {reg: self._fresh(f"uninit_r{reg}") for reg in range(11)}
        entry_regs[1] = self.inputs.ctx_base
        entry_regs[10] = bv_add(self.inputs.stack_base,
                                bv_const(STACK_SIZE, 64))
        if entry_registers:
            entry_regs.update(entry_registers)
        block_entry: Dict[int, _BlockState] = {
            0: _BlockState(entry_regs, TRUE)}

        exit_values: List[Tuple[Expr, Expr]] = []   # (path condition, r0)
        exit_states: List[Tuple[Expr, Dict[int, Expr]]] = []
        reachable = cfg.reachable_blocks()

        for block_index in cfg.topological_order():
            if block_index not in reachable or block_index not in block_entry:
                continue
            block = cfg.blocks[block_index]
            state = block_entry[block_index].copy()
            if state.path == FALSE:
                continue

            terminated = False
            for insn_index in range(block.start, block.end):
                insn = program.instructions[insn_index]
                if insn.is_exit:
                    exit_values.append((state.path, state.regs[0]))
                    exit_states.append((state.path, dict(state.regs)))
                    terminated = True
                    break
                if insn.is_conditional_jump or insn.is_unconditional_jump:
                    break
                self._step(state, insn, hook)

            if terminated:
                continue

            last_index = block.end - 1
            last = program.instructions[last_index]
            for successor in block.successors:
                succ_block = cfg.blocks[successor]
                edge_cond = state.path
                if last.is_conditional_jump:
                    taken_target = last_index + 1 + last.off
                    cond = self._jump_condition(state, last)
                    if succ_block.start == taken_target:
                        edge_cond = bool_and(state.path, cond)
                    else:
                        edge_cond = bool_and(state.path, bool_not(cond))
                incoming = _BlockState(dict(state.regs), edge_cond)
                existing = block_entry.get(successor)
                if existing is None:
                    block_entry[successor] = incoming
                else:
                    block_entry[successor] = self._merge(existing, incoming)

        if not exit_values:
            raise ImpreciseEncodingError("program has no reachable exit")
        return_value = exit_values[-1][1]
        for path, value in reversed(exit_values[:-1]):
            return_value = bv_ite(path, value, return_value)

        final_registers = dict(exit_states[-1][1])
        for path, regs in reversed(exit_states[:-1]):
            for reg in range(11):
                if regs[reg] != final_registers[reg]:
                    final_registers[reg] = bv_ite(path, regs[reg],
                                                  final_registers[reg])

        return SymbolicResult(
            return_value=return_value,
            memories=self.memories,
            map_model=self.map_model,
            helper_calls=self.helper_calls,
            constraints=self.constraints + self.map_model.constraints,
            inputs=self.inputs,
            exit_conditions=[path for path, _ in exit_values],
            final_registers=final_registers,
        )

    # ------------------------------------------------------------------ #
    # State merging at control-flow joins
    # ------------------------------------------------------------------ #
    @staticmethod
    def _merge(a: _BlockState, b: _BlockState) -> _BlockState:
        merged_regs = {}
        for reg in range(11):
            va, vb = a.regs[reg], b.regs[reg]
            merged_regs[reg] = va if va == vb else bv_ite(a.path, va, vb)
        return _BlockState(merged_regs, bool_or(a.path, b.path))

    # ------------------------------------------------------------------ #
    # Helpers for variable naming
    # ------------------------------------------------------------------ #
    def _fresh(self, label: str, width: int = 64) -> Expr:
        self._fresh_counter += 1
        return bv_var(f"{self.prefix}_{label}_{self._fresh_counter}", width)

    # ------------------------------------------------------------------ #
    # Instruction semantics
    # ------------------------------------------------------------------ #
    def _step(self, state: _BlockState, insn: Instruction, hook: Hook) -> None:
        if insn.is_nop:
            return
        if insn.is_lddw:
            if insn.src == 1:
                state.regs[insn.dst] = bv_const(MAP_PTR_BASE + insn.imm, 64)
            else:
                state.regs[insn.dst] = bv_const(insn.imm64 or insn.imm, 64)
            return
        if insn.is_alu:
            state.regs[insn.dst] = self._alu(state, insn)
            return
        if insn.is_load:
            state.regs[insn.dst] = self._load(state, insn, hook)
            return
        if insn.is_store or insn.is_xadd:
            self._store(state, insn)
            return
        if insn.is_call:
            self._call(state, insn)
            return
        raise ImpreciseEncodingError(f"unsupported instruction {insn!r}")

    # --- ALU ------------------------------------------------------------- #
    def _alu(self, state: _BlockState, insn: Instruction) -> Expr:
        op = insn.alu_op
        is64 = insn.is_alu64
        dst = state.regs[insn.dst]

        if op == AluOp.END:
            return self._byteswap(dst, insn.imm,
                                  swap=insn.src_operand == SrcOperand.X)
        if op == AluOp.NEG:
            if is64:
                return bv_sub(bv_const(0, 64), dst)
            low = bv_sub(bv_const(0, 32), bv_extract(dst, 31, 0))
            return bv_zero_extend(low, 32)

        src = state.regs[insn.src] if insn.uses_reg_source \
            else bv_const(insn.imm, 64)
        if op == AluOp.MOV:
            if is64:
                return src
            return bv_zero_extend(bv_extract(src, 31, 0), 32)

        if is64:
            a, b = dst, src
        else:
            a, b = bv_extract(dst, 31, 0), bv_extract(src, 31, 0)

        width = 64 if is64 else 32
        shift_mask = bv_const(width - 1, width)
        if op == AluOp.ADD:
            result = bv_add(a, b)
        elif op == AluOp.SUB:
            result = bv_sub(a, b)
        elif op == AluOp.MUL:
            result = bv_mul(a, b)
        elif op == AluOp.DIV:
            result = bv_udiv(a, b)
        elif op == AluOp.MOD:
            result = bv_urem(a, b)
        elif op == AluOp.OR:
            result = bv_or(a, b)
        elif op == AluOp.AND:
            result = bv_and(a, b)
        elif op == AluOp.XOR:
            result = bv_xor(a, b)
        elif op == AluOp.LSH:
            result = bv_shl(a, bv_and(b, shift_mask))
        elif op == AluOp.RSH:
            result = bv_lshr(a, bv_and(b, shift_mask))
        elif op == AluOp.ARSH:
            result = bv_ashr(a, bv_and(b, shift_mask))
        else:
            raise ImpreciseEncodingError(f"unsupported ALU op {op!r}")
        if not is64:
            result = bv_zero_extend(result, 32)
        return result

    @staticmethod
    def _byteswap(value: Expr, width_bits: int, swap: bool) -> Expr:
        low = bv_extract(value, width_bits - 1, 0)
        if swap:
            swapped_bytes = [bv_extract(low, 8 * i + 7, 8 * i)
                             for i in range(width_bits // 8)]
            result = swapped_bytes[0]
            for byte in swapped_bytes[1:]:
                result = bv_concat(result, byte)
        else:
            result = low
        return bv_zero_extend(result, 64 - width_bits)

    # --- Jump conditions --------------------------------------------------- #
    def _jump_condition(self, state: _BlockState, insn: Instruction) -> Expr:
        dst = state.regs[insn.dst]
        src = state.regs[insn.src] if insn.uses_reg_source \
            else bv_const(insn.imm, 64)
        if insn.is_jump32:
            dst = bv_extract(dst, 31, 0)
            src = bv_extract(src, 31, 0)
        op = insn.jmp_op
        table = {
            JmpOp.JEQ: bv_eq, JmpOp.JNE: bv_ne,
            JmpOp.JGT: bv_ugt, JmpOp.JGE: bv_uge,
            JmpOp.JLT: bv_ult, JmpOp.JLE: bv_ule,
            JmpOp.JSGT: bv_sgt, JmpOp.JSGE: bv_sge,
            JmpOp.JSLT: bv_slt, JmpOp.JSLE: bv_sle,
        }
        if op in table:
            return table[op](dst, src)
        if op == JmpOp.JSET:
            return bv_ne(bv_and(dst, src), bv_const(0, dst.width))
        raise ImpreciseEncodingError(f"unsupported jump op {op!r}")

    # --- Address classification (concretization, §5 I-III) ----------------- #
    def _classify_address(self, address: Expr) -> Tuple[MemRegion, Optional[int]]:
        base, offset = address, 0
        if address.op == "bvadd" and address.args[1].op == "bvconst":
            base = address.args[0]
            offset = address.args[1].value
            if offset >= 1 << 63:
                offset -= 1 << 64
        # Null-checked map-lookup results have the shape ite(present, cell, 0):
        # a dereference is only reachable on the non-null branch (the safety
        # checker enforces the check), so classify the non-null alternative.
        zero = bv_const(0, 64)
        while base.op == "bvite":
            if base.args[2] == zero:
                base = base.args[1]
            elif base.args[1] == zero:
                base = base.args[2]
            else:
                break
        if base == self.inputs.stack_base:
            return MemRegion.STACK, offset
        if base == self.inputs.pkt_base:
            return MemRegion.PACKET, offset
        if base == self.inputs.ctx_base:
            return MemRegion.CTX, offset
        if base.op == "bvconst":
            value = base.value + offset
            for cell_base in _MAP_CELL_BASE.values():
                if cell_base <= value < cell_base + 0x0800_0000_0000:
                    return MemRegion.MAP_VALUE, value
        # A pointer whose provenance we cannot determine.
        return MemRegion.UNKNOWN, None

    def _region_memory(self, region: MemRegion) -> RegionMemory:
        memory = self.memories.get(region)
        if memory is None:
            memory = RegionMemory(region, self.inputs, self.prefix,
                                  concretize_offsets=self.concretize_offsets)
            self.memories[region] = memory
        return memory

    def _map_value_initial(self, absolute_address: int) -> Expr:
        lookup = self.map_model.lookup_owning_address(absolute_address)
        if lookup is None:
            return bv_const(0, 8)
        offset = absolute_address - lookup.address
        if offset < len(lookup.value_bytes):
            return lookup.value_bytes[offset]
        return bv_const(0, 8)

    # --- Loads and stores --------------------------------------------------- #
    def _load(self, state: _BlockState, insn: Instruction, hook: Hook) -> Expr:
        address = bv_add(state.regs[insn.src], bv_const(insn.off, 64))
        region, offset = self._classify_address(address)
        width = insn.access_bytes

        if region == MemRegion.CTX and offset is not None:
            field = hook.field_by_offset(offset)
            if field is not None and field.size == width:
                if field.kind == CtxFieldKind.PACKET_PTR:
                    return self._current_packet_base()
                if field.kind == CtxFieldKind.PACKET_END_PTR:
                    return bv_add(self._current_packet_base(), self.inputs.pkt_len)

        memory = self._region_memory(region)
        bytes_read = []
        for byte_index in range(width):
            byte_address = bv_add(address, bv_const(byte_index, 64))
            byte_offset = None if offset is None else offset + byte_index
            if region == MemRegion.MAP_VALUE and byte_offset is not None:
                initial = self._map_value_initial(byte_offset)
                value = initial
                for write in memory.writes:
                    if write.concrete_offset == byte_offset:
                        value = bv_ite(write.condition, write.value, value)
                    elif write.concrete_offset is None:
                        value = bv_ite(bool_and(write.condition,
                                                bv_eq(write.address, byte_address)),
                                       write.value, value)
                bytes_read.append(value)
            elif region == MemRegion.UNKNOWN:
                raise ImpreciseEncodingError(
                    "load through pointer of unknown provenance")
            else:
                bytes_read.append(memory.load_byte(byte_address, byte_offset,
                                                   state.path))
        value = bytes_read[0]
        for byte in bytes_read[1:]:
            value = bv_concat(byte, value)
        if value.width < 64:
            value = bv_zero_extend(value, 64 - value.width)
        return value

    def _store(self, state: _BlockState, insn: Instruction) -> None:
        address = bv_add(state.regs[insn.dst], bv_const(insn.off, 64))
        region, offset = self._classify_address(address)
        if region == MemRegion.UNKNOWN:
            raise ImpreciseEncodingError(
                "store through pointer of unknown provenance")
        if region == MemRegion.CTX:
            raise ImpreciseEncodingError("store to ctx memory")
        width = insn.access_bytes
        memory = self._region_memory(region)

        if insn.is_xadd:
            # Read-modify-write: read the current value, add, write back.
            loaded = self._load_for_xadd(state, insn, address, region, offset, width)
            addend = state.regs[insn.src]
            if width == 4:
                value = bv_zero_extend(
                    bv_add(bv_extract(loaded, 31, 0), bv_extract(addend, 31, 0)), 32)
            else:
                value = bv_add(loaded, addend)
        elif insn.is_store_reg:
            value = state.regs[insn.src]
        else:
            value = bv_const(insn.imm, 64)

        for byte_index in range(width):
            byte_address = bv_add(address, bv_const(byte_index, 64))
            byte_offset = None if offset is None else offset + byte_index
            byte_value = bv_extract(value, 8 * byte_index + 7, 8 * byte_index)
            memory.store_byte(byte_address, byte_offset, byte_value, state.path)

    def _load_for_xadd(self, state: _BlockState, insn: Instruction,
                       address: Expr, region: MemRegion,
                       offset: Optional[int], width: int) -> Expr:
        fake_load = insn.with_fields(opcode=0x61 if width == 4 else 0x79,
                                     dst=insn.dst, src=insn.dst, off=insn.off)
        # Reuse the load path: construct the loaded value at this address.
        saved = state.regs[insn.dst]
        value = self._load(state, fake_load, self.inputs.hook)
        state.regs[insn.dst] = saved
        return value

    def _current_packet_base(self) -> Expr:
        if self._packet_epoch == 0:
            return self.inputs.pkt_base
        return bv_var(f"input_pkt_base_epoch{self._packet_epoch}", 64)

    # --- Helper calls --------------------------------------------------------- #
    def _call(self, state: _BlockState, insn: Instruction) -> None:
        spec = HELPERS.get(insn.imm)
        if spec is None:
            raise ImpreciseEncodingError(f"unknown helper id {insn.imm}")
        helper_id = spec.helper_id

        if helper_id == HelperId.MAP_LOOKUP_ELEM:
            result = self._map_lookup(state)
        elif helper_id == HelperId.MAP_UPDATE_ELEM:
            result = self._map_update(state)
        elif helper_id == HelperId.MAP_DELETE_ELEM:
            result = self._map_delete(state)
        elif helper_id == HelperId.KTIME_GET_NS:
            result = self.inputs.time_ns
        elif helper_id == HelperId.KTIME_GET_BOOT_NS:
            result = bv_add(self.inputs.time_ns, bv_const(1, 64))
        elif helper_id == HelperId.GET_PRANDOM_U32:
            result = bv_and(self.inputs.random_value(self._random_calls),
                            bv_const(0xFFFFFFFF, 64))
            self._random_calls += 1
        elif helper_id == HelperId.GET_SMP_PROCESSOR_ID:
            result = bv_and(self.inputs.cpu_id, bv_const(0xFFFFFFFF, 64))
        else:
            result = self._uninterpreted_call(state, spec)

        state.regs[0] = result
        for reg in range(1, 6):
            state.regs[reg] = self._fresh(f"clobber_r{reg}")

    def _read_bytes(self, state: _BlockState, address: Expr, count: int) -> Expr:
        """Read ``count`` bytes from memory and return their concatenation."""
        region, offset = self._classify_address(address)
        if region == MemRegion.UNKNOWN:
            raise ImpreciseEncodingError(
                "helper argument pointer of unknown provenance")
        memory = self._region_memory(region)
        value = None
        for byte_index in range(count):
            byte_address = bv_add(address, bv_const(byte_index, 64))
            byte_offset = None if offset is None else offset + byte_index
            if region == MemRegion.MAP_VALUE and byte_offset is not None:
                byte = self._map_value_initial(byte_offset)
            else:
                byte = memory.load_byte(byte_address, byte_offset, state.path)
            value = byte if value is None else bv_concat(byte, value)
        return value

    def _map_fd_from(self, state: _BlockState, reg: int) -> int:
        expr = state.regs[reg]
        if expr.op == "bvconst" and expr.value >= MAP_PTR_BASE:
            return expr.value - MAP_PTR_BASE
        raise ImpreciseEncodingError("map argument is not a concrete map reference")

    def _map_lookup(self, state: _BlockState) -> Expr:
        map_fd = self._map_fd_from(state, 1)
        definition = self.inputs.maps.definition(map_fd)
        key = self._read_bytes(state, state.regs[2], definition.key_size)
        instance = self.map_model.lookup(map_fd, key, definition.value_size,
                                         state.path)
        return bv_ite(instance.present, bv_const(instance.address, 64),
                      bv_const(0, 64))

    def _map_update(self, state: _BlockState) -> Expr:
        map_fd = self._map_fd_from(state, 1)
        definition = self.inputs.maps.definition(map_fd)
        key = self._read_bytes(state, state.regs[2], definition.key_size)
        value = self._read_bytes(state, state.regs[3], definition.value_size)
        self.map_model.update(map_fd, key, value, state.path)
        return bv_const(0, 64)

    def _map_delete(self, state: _BlockState) -> Expr:
        map_fd = self._map_fd_from(state, 1)
        definition = self.inputs.maps.definition(map_fd)
        key = self._read_bytes(state, state.regs[2], definition.key_size)
        self.map_model.delete(map_fd, key, state.path)
        return bv_const(0, 64)

    def _uninterpreted_call(self, state: _BlockState, spec) -> Expr:
        """Model any other helper as an uninterpreted function (§4.3).

        Equivalence then requires both programs to issue the same calls with
        the same arguments in the same order, which is exactly the paper's
        restriction for helpers without specific semantics.
        """
        index = sum(1 for call in self.helper_calls if call.name == spec.name)
        result = bv_var(f"uf_{spec.name}_{index}", 64)
        args = tuple(state.regs[reg] for reg in range(1, 1 + spec.num_args))
        self.helper_calls.append(HelperCallRecord(
            name=spec.name, args=args, condition=state.path, result=result))
        if spec.helper_id in (HelperId.XDP_ADJUST_HEAD, HelperId.XDP_ADJUST_TAIL,
                              HelperId.XDP_ADJUST_META):
            # The packet layout may have changed: subsequent packet-pointer
            # loads observe a fresh epoch shared across both programs.
            self._packet_epoch += 1
        return result
