"""Symbolic memory, map and helper-call models for equivalence checking.

This module implements the first-order-logic formalization of BPF memory
accesses (paper §4.2), BPF maps and helper functions (§4.3, Appendix B), plus
the domain-specific concretizations that keep the formulas small (§5 I–III):

* **memory type concretization** — a separate write table per memory region,
* **map type concretization** — a separate table per map,
* **memory offset concretization** — when the pointer analysis proves an
  access touches a compile-time-known offset, the aliasing clauses collapse
  to compile-time booleans and usually disappear entirely.

Memory is modelled at byte granularity: multi-byte stores are decomposed into
per-byte writes and multi-byte loads concatenate per-byte reads, which is the
paper's approach to partial overlaps.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..bpf.hooks import Hook
from ..bpf.maps import MapEnvironment
from ..bpf.regions import MemRegion
from ..smt import (
    Expr, TRUE, bool_and, bool_or, bool_not, bool_var, bv_and, bv_concat,
    bv_const, bv_eq, bv_extract, bv_ite, bv_var, bv_zero_extend,
)

__all__ = ["SymbolicInputs", "MemoryWrite", "RegionMemory", "MapModel",
           "MapLookupInstance", "MapEffect", "HelperCallRecord",
           "MODEL_PACKET_SIZE", "map_congruence_constraints"]

#: Maximum packet size modelled symbolically (bytes).  Counterexamples and
#: generated test packets fit within this bound.
MODEL_PACKET_SIZE = 256


class SymbolicInputs:
    """The shared program inputs (identical for the two compared programs).

    The equivalence query of §4 asserts "inputs to program 1 == inputs to
    program 2"; we realize that by having both symbolic executions read the
    *same* input variables.
    """

    def __init__(self, hook: Hook, maps: MapEnvironment):
        self.hook = hook
        self.maps = maps
        # Region base addresses are symbolic so equivalence verdicts do not
        # depend on any particular placement of the stack or packet.
        self.stack_base = bv_var("input_stack_base", 64)
        self.pkt_base = bv_var("input_pkt_base", 64)
        self.ctx_base = bv_var("input_ctx_base", 64)
        self.pkt_len = bv_var("input_pkt_len", 64)
        self.time_ns = bv_var("input_time_ns", 64)
        self.cpu_id = bv_var("input_cpu_id", 64)
        self._ctx_fields: Dict[str, Expr] = {}
        self._packet_bytes: Dict[int, Expr] = {}
        self._stack_bytes: Dict[int, Expr] = {}
        self._random: Dict[int, Expr] = {}

    # -------------------------------------------------------------- #
    def ctx_field(self, name: str, size: int) -> Expr:
        expr = self._ctx_fields.get(name)
        if expr is None:
            expr = bv_var(f"input_ctx_{name}", 8 * size)
            self._ctx_fields[name] = expr
        return expr

    def packet_byte(self, offset: int) -> Expr:
        expr = self._packet_bytes.get(offset)
        if expr is None:
            expr = bv_var(f"input_pkt_{offset}", 8)
            self._packet_bytes[offset] = expr
        return expr

    def stack_init_byte(self, offset: int) -> Expr:
        """Initial (pre-execution) stack contents, shared by both programs."""
        expr = self._stack_bytes.get(offset)
        if expr is None:
            expr = bv_var(f"input_stack_{offset}", 8)
            self._stack_bytes[offset] = expr
        return expr

    def random_value(self, index: int) -> Expr:
        expr = self._random.get(index)
        if expr is None:
            expr = bv_var(f"input_random_{index}", 64)
            self._random[index] = expr
        return expr

    def constraints(self) -> List[Expr]:
        """Well-formedness constraints on the inputs."""
        from ..smt import bv_ule
        constraints = [
            bv_ule(self.pkt_len, bv_const(MODEL_PACKET_SIZE, 64)),
            # Region bases are far apart and non-zero, mirroring the flat
            # interpreter layout; this keeps pointer comparisons meaningful.
            bv_eq(bv_and(self.stack_base, bv_const(0xFFF, 64)), bv_const(0, 64)),
            bv_eq(bv_and(self.pkt_base, bv_const(0xFFF, 64)), bv_const(0, 64)),
            bv_eq(bv_and(self.ctx_base, bv_const(0xFFF, 64)), bv_const(0, 64)),
            bool_not(bv_eq(self.stack_base, bv_const(0, 64))),
            bool_not(bv_eq(self.pkt_base, bv_const(0, 64))),
            bool_not(bv_eq(self.ctx_base, bv_const(0, 64))),
        ]
        return constraints

    # -------------------------------------------------------------- #
    # Counterexample extraction helpers
    # -------------------------------------------------------------- #
    def extract_test_case(self, model) -> "ProgramInput":
        """Build an interpreter test case from a satisfying assignment."""
        from ..interpreter import ProgramInput

        length = int(model.get(self.pkt_len, 64)) % (MODEL_PACKET_SIZE + 1)
        length = max(length, 14) if self.hook.has_packet else length
        packet = bytearray(length)
        for offset, var in self._packet_bytes.items():
            if 0 <= offset < length:
                packet[offset] = model.get(var, 0) & 0xFF
        ctx = {name: model.get(var, 0)
               for name, var in self._ctx_fields.items()}
        random_values = [model.get(var, 0) & 0xFFFFFFFF
                         for _, var in sorted(self._random.items())] or [0]
        return ProgramInput(packet=bytes(packet), ctx=ctx,
                            random_values=random_values,
                            time_ns=model.get(self.time_ns, 0),
                            cpu_id=model.get(self.cpu_id, 0) & 0xFF)


@dataclasses.dataclass
class MemoryWrite:
    """One byte-wide store recorded in a region's write table."""

    address: Expr              # full 64-bit address expression
    concrete_offset: Optional[int]  # offset from the region base, if known
    value: Expr                # 8-bit value expression
    condition: Expr            # path condition under which the write happens


class RegionMemory:
    """Write table and initial-content model for one memory region.

    One instance exists per (program, region) pair; the *initial* contents
    come from :class:`SymbolicInputs` and are shared across programs, which
    encodes the "same inputs" side of the equivalence query.
    """

    def __init__(self, region: MemRegion, inputs: SymbolicInputs, prefix: str,
                 concretize_offsets: bool = True):
        self.region = region
        self.inputs = inputs
        self.prefix = prefix
        #: §5 optimization III; disabled by the Table 4 ablation benchmark.
        self.concretize_offsets = concretize_offsets
        self.writes: List[MemoryWrite] = []
        self._symbolic_init: Dict[Expr, Expr] = {}

    # -------------------------------------------------------------- #
    def initial_byte(self, address: Expr, concrete_offset: Optional[int]) -> Expr:
        """The value of a byte before the program ran."""
        if concrete_offset is not None:
            if self.region == MemRegion.STACK:
                return self.inputs.stack_init_byte(concrete_offset)
            if self.region == MemRegion.PACKET:
                return self.inputs.packet_byte(concrete_offset)
            if self.region == MemRegion.CTX:
                return self._ctx_byte(concrete_offset)
        # Unknown offset: key the initial contents by the address expression
        # itself.  Both programs reading a syntactically identical address get
        # the same variable; differing-but-equal addresses make the check
        # conservative (may reject, never wrongly accept).
        cached = self._symbolic_init.get(address)
        if cached is None:
            cached = bv_var(f"init_{self.region.value}_{abs(hash(address)) & 0xFFFFFF:x}", 8)
            self._symbolic_init[address] = cached
        return cached

    def _ctx_byte(self, offset: int) -> Expr:
        for field in self.inputs.hook.fields:
            if field.offset <= offset < field.offset + field.size:
                value = self.inputs.ctx_field(field.name, field.size)
                shift = offset - field.offset
                return bv_extract(value, 8 * shift + 7, 8 * shift)
        return bv_const(0, 8)

    # -------------------------------------------------------------- #
    def store_byte(self, address: Expr, concrete_offset: Optional[int],
                   value: Expr, condition: Expr) -> None:
        self.writes.append(MemoryWrite(address, concrete_offset, value, condition))

    def load_byte(self, address: Expr, concrete_offset: Optional[int],
                  condition: Expr) -> Expr:
        """Most-recent-write semantics (paper §4.2 steps 1-3)."""
        result = self.initial_byte(address, concrete_offset)
        for write in self.writes:
            matches = self._addresses_match(write, address, concrete_offset)
            if matches is False:
                continue
            match_expr = TRUE if matches is True else bv_eq(write.address, address)
            result = bv_ite(bool_and(write.condition, match_expr),
                            write.value, result)
        return result

    def _addresses_match(self, write: MemoryWrite, address: Expr,
                         concrete_offset: Optional[int]):
        """Decide aliasing at compile time when both offsets are concrete."""
        if self.concretize_offsets and write.concrete_offset is not None \
                and concrete_offset is not None:
            return write.concrete_offset == concrete_offset
        if write.address == address:
            return True
        return None

    # -------------------------------------------------------------- #
    def written_offsets(self) -> List[int]:
        return sorted({w.concrete_offset for w in self.writes
                       if w.concrete_offset is not None})

    def has_symbolic_writes(self) -> bool:
        return any(w.concrete_offset is None for w in self.writes)

    def final_byte(self, concrete_offset: int) -> Expr:
        """Final value of a byte at a concrete offset (for output comparison)."""
        address = bv_const(0, 64)  # unused: all comparisons are concrete
        result = self.initial_byte(address, concrete_offset)
        for write in self.writes:
            if write.concrete_offset is None:
                continue
            if write.concrete_offset != concrete_offset:
                continue
            result = bv_ite(write.condition, write.value, result)
        return result


@dataclasses.dataclass
class MapLookupInstance:
    """One ``bpf_map_lookup_elem`` call site in one program."""

    map_fd: int
    key: Expr                   # key valuation (key_size * 8 bits wide)
    present: Expr               # boolean: does the key exist at this point?
    value_bytes: List[Expr]     # 8-bit variables for the value cell contents
    address: int                # concrete address handed to the program
    condition: Expr             # path condition of the call


@dataclasses.dataclass
class MapEffect:
    """A persistent, externally visible map mutation (update / delete)."""

    kind: str                   # "update" or "delete"
    map_fd: int
    key: Expr
    value: Optional[Expr]       # value valuation for updates
    condition: Expr


@dataclasses.dataclass
class HelperCallRecord:
    """An uninterpreted helper call, compared call-for-call across programs."""

    name: str
    args: Tuple[Expr, ...]
    condition: Expr
    result: Expr


class MapModel:
    """Two-level map formalization (§4.3) for a single program execution.

    Level one (pointers to keys/values in regular memory) is handled by the
    caller, which reads the key valuation out of the :class:`RegionMemory`
    tables.  Level two (aliasing between equal key *valuations*) is handled
    here with per-map read/write tables and Ackermann-style constraints
    linking lookups to earlier updates/deletes and to the shared initial map
    contents.
    """

    #: Address space carved out for lookup result cells, per program copy.
    VALUE_CELL_STRIDE = 0x1000

    def __init__(self, inputs: SymbolicInputs, prefix: str, base_address: int):
        self.inputs = inputs
        self.prefix = prefix
        self.base_address = base_address
        self.lookups: List[MapLookupInstance] = []
        self.effects: List[MapEffect] = []
        self.constraints: List[Expr] = []
        #: ``(map_fd, key expression)`` of every initial-contents read this
        #: execution performed, for the cross-program congruence constraints
        #: (:func:`map_congruence_constraints`).
        self.initial_reads: List[Tuple[int, Expr]] = []
        self._initial_present: Dict[Tuple[int, Expr], Expr] = {}
        self._initial_value: Dict[Tuple[int, Expr], List[Expr]] = {}

    # -------------------------------------------------------------- #
    def _initial_present_for(self, map_fd: int, key: Expr) -> Expr:
        """Shared (cross-program) initial presence of ``key`` in map ``fd``."""
        cache_key = (map_fd, key)
        cached = self._shared_presence().get(cache_key)
        if cached is None:
            name = f"input_map{map_fd}_present_{len(self._shared_presence())}"
            cached = bool_var(name)
            self._shared_presence()[cache_key] = cached
        return cached

    def _initial_value_for(self, map_fd: int, key: Expr, value_size: int) -> List[Expr]:
        cache_key = (map_fd, key)
        cached = self._shared_values().get(cache_key)
        if cached is None:
            index = len(self._shared_values())
            cached = [bv_var(f"input_map{map_fd}_val{index}_b{b}", 8)
                      for b in range(value_size)]
            self._shared_values()[cache_key] = cached
        return cached

    # The initial-contents tables are shared across program copies through
    # the SymbolicInputs object so that both executions observe the same map.
    def _shared_presence(self) -> Dict:
        table = getattr(self.inputs, "_map_presence", None)
        if table is None:
            table = {}
            setattr(self.inputs, "_map_presence", table)
        return table

    def _shared_values(self) -> Dict:
        table = getattr(self.inputs, "_map_values", None)
        if table is None:
            table = {}
            setattr(self.inputs, "_map_values", table)
        return table

    # -------------------------------------------------------------- #
    def lookup(self, map_fd: int, key: Expr, value_size: int,
               condition: Expr) -> MapLookupInstance:
        """Record a lookup and return its instance (address, value cell)."""
        index = len(self.lookups)
        address = self.base_address + index * self.VALUE_CELL_STRIDE

        # Initial (pre-program) contents for this key valuation.
        present: Expr = self._initial_present_for(map_fd, key)
        value: List[Expr] = list(self._initial_value_for(map_fd, key, value_size))
        self.initial_reads.append((map_fd, key))

        # Apply this program's earlier updates and deletes (§4.3: a lookup
        # must observe the latest write to the same key valuation).
        for effect in self.effects:
            if effect.map_fd != map_fd:
                continue
            matches = bool_and(effect.condition, bv_eq(effect.key, key))
            if effect.kind == "delete":
                present = bool_ite_expr(matches, False, present)
            else:
                present = bool_ite_expr(matches, True, present)
                for byte_index in range(value_size):
                    updated = bv_extract(effect.value, 8 * byte_index + 7, 8 * byte_index)
                    value[byte_index] = bv_ite(matches, updated, value[byte_index])

        present_var = bool_var(f"{self.prefix}_map{map_fd}_lk{index}_present")
        self.constraints.append(bool_or(bool_and(present_var, present),
                                        bool_and(bool_not(present_var),
                                                 bool_not(present))))
        value_vars = []
        for byte_index in range(value_size):
            var = bv_var(f"{self.prefix}_map{map_fd}_lk{index}_b{byte_index}", 8)
            self.constraints.append(bv_eq(var, value[byte_index]))
            value_vars.append(var)

        instance = MapLookupInstance(map_fd=map_fd, key=key, present=present_var,
                                     value_bytes=value_vars, address=address,
                                     condition=condition)
        self.lookups.append(instance)
        return instance

    def update(self, map_fd: int, key: Expr, value: Expr, condition: Expr) -> None:
        self.effects.append(MapEffect("update", map_fd, key, value, condition))

    def delete(self, map_fd: int, key: Expr, condition: Expr) -> None:
        self.effects.append(MapEffect("delete", map_fd, key, None, condition))

    def record_value_store(self, lookup: MapLookupInstance, offset: int,
                           value: Expr, condition: Expr) -> None:
        """A store through a lookup-returned value pointer is a map effect."""
        self.effects.append(MapEffect(
            kind="update", map_fd=lookup.map_fd, key=lookup.key,
            value=bv_concat(bv_const(offset, 32), bv_zero_extend(value, 24))
            if value.width == 8 else value,
            condition=condition))

    # -------------------------------------------------------------- #
    def lookup_owning_address(self, address: int) -> Optional[MapLookupInstance]:
        for lookup in self.lookups:
            if lookup.address <= address < lookup.address + self.VALUE_CELL_STRIDE:
                return lookup
        return None


def bool_ite_expr(condition: Expr, then_value: bool, otherwise: Expr) -> Expr:
    """ITE over booleans with a constant 'then' branch."""
    if then_value:
        return bool_or(condition, otherwise)
    return bool_and(bool_not(condition), otherwise)


def map_congruence_constraints(inputs: SymbolicInputs,
                               reads: List[Tuple[int, Expr]]) -> List[Expr]:
    """Congruence of the shared initial map contents over ``reads``.

    The initial-contents tables of :class:`MapModel` are keyed by the key's
    *expression*: two executions computing the same key through syntactically
    identical expressions share one presence/value valuation for free.  When
    the expressions differ — e.g. the candidate's key is built under a path
    condition that names its own lookup-presence variables — each execution
    gets fresh initial-contents variables, and without further constraints
    the solver may assign them different values for semantically *equal*
    keys, fabricating counterexamples for genuinely equivalent programs
    (observed on every two-lookup corpus program).

    This is the Ackermann expansion of the "maps are functions of their
    keys" axiom (paper §4.3), restricted to the key expressions the current
    query actually read: for every same-map pair, ``key_a == key_b`` implies
    equal initial presence and equal initial value bytes.
    """
    presence = getattr(inputs, "_map_presence", {})
    values = getattr(inputs, "_map_values", {})
    unique: List[Tuple[int, Expr]] = []
    seen = set()
    for map_fd, key in reads:
        token = (map_fd, key)
        if token in seen or token not in presence:
            continue
        seen.add(token)
        unique.append(token)

    constraints: List[Expr] = []
    for index, (fd_a, key_a) in enumerate(unique):
        for fd_b, key_b in unique[index + 1:]:
            if fd_a != fd_b or key_a.width != key_b.width:
                continue
            same_key = bv_eq(key_a, key_b)
            present_a = presence[(fd_a, key_a)]
            present_b = presence[(fd_b, key_b)]
            constraints.append(bool_or(
                bool_not(same_key),
                bool_and(bool_or(bool_not(present_a), present_b),
                         bool_or(bool_not(present_b), present_a))))
            for byte_a, byte_b in zip(values.get((fd_a, key_a), []),
                                      values.get((fd_b, key_b), [])):
                constraints.append(bool_or(bool_not(same_key),
                                           bv_eq(byte_a, byte_b)))
    return constraints
