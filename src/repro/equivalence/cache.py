"""Equivalence-check caching (paper §5, optimization V).

Candidate programs produced by the stochastic search are frequently
structurally similar — often differing only in dead instructions.  K2
canonicalizes each candidate by removing dead code and caches the outcome of
equivalence-checking the canonical form, eliminating the vast majority of
solver calls (93%+ hit rates in Table 6).

Canonicalization itself runs dead-code elimination, which is not free; the
verification pipeline asks for the same candidate's key twice per query
(lookup, then store on a miss), and the proposal loop revisits programs.
:meth:`EquivalenceCache.canonical_key` therefore memoizes keys on
``program.content_key()`` in a bounded LRU, so the common lookup/insert pair
performs one elimination pass instead of two.

The cache is also the sharing channel of the parallel multi-chain engine
(:mod:`repro.synthesis.parallel`): worker chains are seeded with a snapshot
of the controller's shared entries (:meth:`EquivalenceCache.seed`) and their
discoveries are merged back between generations
(:meth:`EquivalenceCache.merge`).  Entries received from another chain are
tracked as *foreign* so hits on them can be reported separately
(``cross_chain_hits``); entries preseeded from a durable
:class:`~repro.store.VerdictStore` are additionally marked via
:meth:`mark_store_origin` so cross-run reuse shows up as ``store_hits``.
:meth:`merge` accumulates counters so the aggregate statistics stay coherent
across chains.

Capacity is explicit: :meth:`store` evicts the oldest entry (insertion
order) when full and :meth:`seed` drops the overflow, and both paths are
counted (``evictions`` / ``seed_dropped``) and reported by :meth:`stats` —
a saturated cache is a tuning signal, not a silent behaviour change.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Optional, Tuple

from ..bpf.liveness import dead_code_eliminate
from ..bpf.program import BpfProgram
from .checker import EquivalenceResult

__all__ = ["EquivalenceCache"]


class EquivalenceCache:
    """Maps canonicalized candidate programs to their equivalence verdicts."""

    #: Bound on the canonical-key memo (program content key → canonical
    #: key).  Sized well above the distinct programs a chain generation
    #: touches so the hot lookup/store pair always hits.
    MAX_KEY_MEMO = 16_384

    def __init__(self, max_entries: int = 1_000_000):
        self._entries: Dict[Tuple, EquivalenceResult] = {}
        self._foreign: set = set()
        #: Canonical keys whose entries came from the durable verdict store.
        self._store_keys: set = set()
        self._key_memo: "OrderedDict[Tuple, Tuple]" = OrderedDict()
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.cross_chain_hits = 0
        self.store_hits = 0
        self.evictions = 0
        self.seed_dropped = 0
        self.key_memo_hits = 0

    # ------------------------------------------------------------------ #
    @staticmethod
    def canonicalize(program: BpfProgram) -> Tuple:
        """Canonical key: the structural key after dead-code elimination,
        with NOPs dropped so programs that differ only in padding collide.

        Candidates with broken control flow (e.g. a jump that falls off the
        end of the program) cannot be analysed for liveness; they fall back
        to their raw structural key — they will be rejected by the safety
        checker anyway.
        """
        from ..bpf.cfg import CfgError

        try:
            canonical = dead_code_eliminate(program.instructions)
        except CfgError:
            canonical = list(program.instructions)
        return tuple(
            (insn.opcode, insn.dst, insn.src, insn.off, insn.imm, insn.imm64)
            for insn in canonical if not insn.is_nop)

    def canonical_key(self, program: BpfProgram) -> Tuple:
        """:meth:`canonicalize`, memoized on ``program.content_key()``.

        The memo is keyed on the full content key (instructions + hook +
        map layout), so two programs can never alias an entry, and bounded
        LRU so a long search cannot grow it without limit.
        """
        memo_key = program.content_key()
        cached = self._key_memo.get(memo_key)
        if cached is not None:
            self._key_memo.move_to_end(memo_key)
            self.key_memo_hits += 1
            return cached
        key = self.canonicalize(program)
        self._key_memo[memo_key] = key
        if len(self._key_memo) > self.MAX_KEY_MEMO:
            self._key_memo.popitem(last=False)
        return key

    # ------------------------------------------------------------------ #
    def lookup(self, program: BpfProgram) -> Optional[EquivalenceResult]:
        key = self.canonical_key(program)
        result = self._entries.get(key)
        if result is not None:
            self.hits += 1
            if key in self._foreign:
                self.cross_chain_hits += 1
            if key in self._store_keys:
                self.store_hits += 1
        else:
            self.misses += 1
        return result

    def store(self, program: BpfProgram, result: EquivalenceResult) -> None:
        key = self.canonical_key(program)
        if key not in self._entries and \
                len(self._entries) >= self._max_entries:
            # Evict the oldest entry (dict preserves insertion order) so a
            # long-running search keeps caching recent verdicts instead of
            # freezing the cache at whatever filled it first.
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self._foreign.discard(oldest)
            self._store_keys.discard(oldest)
            self.evictions += 1
        self._entries[key] = result

    # ------------------------------------------------------------------ #
    # Cross-chain sharing (parallel search engine).
    def export_entries(self) -> Dict[Tuple, EquivalenceResult]:
        """A picklable snapshot of every entry, for seeding worker chains."""
        return dict(self._entries)

    def local_entries(self) -> Dict[Tuple, EquivalenceResult]:
        """Only the entries this cache discovered itself (not seeded ones)."""
        return {key: value for key, value in self._entries.items()
                if key not in self._foreign}

    def seed(self, entries: Dict[Tuple, EquivalenceResult],
             foreign: bool = True) -> int:
        """Insert ``entries`` that are not already present.

        With ``foreign=True`` (a worker receiving the controller's shared
        snapshot) the inserted keys are tracked so later hits on them count
        as ``cross_chain_hits``.  Keys the cache already holds are left
        untouched, so a chain never sees its own discoveries as foreign.

        Seeding never evicts resident entries: once the cache is full the
        remaining entries are dropped and counted in ``seed_dropped``.
        Returns the number of entries inserted.
        """
        inserted = 0
        for key, value in entries.items():
            if key in self._entries:
                continue
            if len(self._entries) >= self._max_entries:
                self.seed_dropped += 1
                continue
            self._entries[key] = value
            if foreign:
                self._foreign.add(key)
            inserted += 1
        return inserted

    def mark_store_origin(self, keys: Iterable[Tuple]) -> None:
        """Tag resident foreign ``keys`` as loaded from the durable store.

        Hits on tagged keys increment ``store_hits`` (on top of
        ``cross_chain_hits``), which is what cross-run warm-start
        accounting reports.  Keys the cache does not hold as foreign are
        ignored — a chain's own rediscovery of a stored verdict is local.
        """
        for key in keys:
            if key in self._foreign:
                self._store_keys.add(key)

    def store_origin_keys(self) -> frozenset:
        """The resident keys currently tagged as store-originated."""
        return frozenset(self._store_keys)

    def merge(self, other: "EquivalenceCache",
              include_counters: bool = True) -> None:
        """Merge a worker cache back into this (controller) cache.

        Only the worker's *local* discoveries are unioned in — entries it was
        seeded with are already here.  With ``include_counters`` the worker's
        hit/miss/eviction counters are accumulated so aggregate statistics
        survive the merge path (each chain's counters would otherwise stay
        siloed in its own cache object).
        """
        self.seed(other.local_entries(), foreign=False)
        if include_counters:
            self.hits += other.hits
            self.misses += other.misses
            self.cross_chain_hits += other.cross_chain_hits
            self.store_hits += other.store_hits
            self.evictions += other.evictions
            self.seed_dropped += other.seed_dropped
            self.key_memo_hits += other.key_memo_hits

    # ------------------------------------------------------------------ #
    # Checkpointing (crash-recoverable chains; repro.synthesis.checkpoint)
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict[str, object]:
        """Complete cache state as plain Python data, for checkpoints.

        Entries are listed in insertion order (the eviction order), each
        with its provenance flags, so :meth:`restore_state` reconstructs a
        cache whose future hits, evictions and hit counters are exactly
        those the original object would have produced.  The canonical-key
        memo is deliberately excluded: it is a pure-speed device whose only
        observable is the ``key_memo_hits`` counter.
        """
        return {
            "entries": [(key, result, key in self._foreign,
                         key in self._store_keys)
                        for key, result in self._entries.items()],
            "max_entries": self._max_entries,
            "counters": {"hits": self.hits, "misses": self.misses,
                         "cross_chain_hits": self.cross_chain_hits,
                         "store_hits": self.store_hits,
                         "evictions": self.evictions,
                         "seed_dropped": self.seed_dropped,
                         "key_memo_hits": self.key_memo_hits},
        }

    @classmethod
    def restore_state(cls, state: Dict[str, object]) -> "EquivalenceCache":
        """Rebuild a cache from a :meth:`snapshot_state` snapshot."""
        cache = cls(max_entries=int(state["max_entries"]))
        for key, result, foreign, from_store in state["entries"]:
            cache._entries[key] = result
            if foreign:
                cache._foreign.add(key)
            if from_store:
                cache._store_keys.add(key)
        for name, value in state["counters"].items():
            setattr(cache, name, int(value))
        return cache

    # ------------------------------------------------------------------ #
    @property
    def num_entries(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "cross_chain_hits": self.cross_chain_hits,
                "store_hits": self.store_hits,
                "evictions": self.evictions,
                "seed_dropped": self.seed_dropped,
                "key_memo_hits": self.key_memo_hits,
                "entries": self.num_entries, "hit_rate": self.hit_rate}
