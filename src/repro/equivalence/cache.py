"""Equivalence-check caching (paper §5, optimization V).

Candidate programs produced by the stochastic search are frequently
structurally similar — often differing only in dead instructions.  K2
canonicalizes each candidate by removing dead code and caches the outcome of
equivalence-checking the canonical form, eliminating the vast majority of
solver calls (93%+ hit rates in Table 6).

The cache is also the sharing channel of the parallel multi-chain engine
(:mod:`repro.synthesis.parallel`): worker chains are seeded with a snapshot
of the controller's shared entries (:meth:`EquivalenceCache.seed`) and their
discoveries are merged back between generations
(:meth:`EquivalenceCache.merge`).  Entries received from another chain are
tracked as *foreign* so hits on them can be reported separately
(``cross_chain_hits``), and :meth:`merge` accumulates ``hits``/``misses``
so the aggregate statistics stay coherent across chains.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..bpf.liveness import dead_code_eliminate
from ..bpf.program import BpfProgram
from .checker import EquivalenceResult

__all__ = ["EquivalenceCache"]


class EquivalenceCache:
    """Maps canonicalized candidate programs to their equivalence verdicts."""

    def __init__(self, max_entries: int = 1_000_000):
        self._entries: Dict[Tuple, EquivalenceResult] = {}
        self._foreign: set = set()
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.cross_chain_hits = 0

    # ------------------------------------------------------------------ #
    @staticmethod
    def canonicalize(program: BpfProgram) -> Tuple:
        """Canonical key: the structural key after dead-code elimination,
        with NOPs dropped so programs that differ only in padding collide.

        Candidates with broken control flow (e.g. a jump that falls off the
        end of the program) cannot be analysed for liveness; they fall back
        to their raw structural key — they will be rejected by the safety
        checker anyway.
        """
        from ..bpf.cfg import CfgError

        try:
            canonical = dead_code_eliminate(program.instructions)
        except CfgError:
            canonical = list(program.instructions)
        return tuple(
            (insn.opcode, insn.dst, insn.src, insn.off, insn.imm, insn.imm64)
            for insn in canonical if not insn.is_nop)

    # ------------------------------------------------------------------ #
    def lookup(self, program: BpfProgram) -> Optional[EquivalenceResult]:
        key = self.canonicalize(program)
        result = self._entries.get(key)
        if result is not None:
            self.hits += 1
            if key in self._foreign:
                self.cross_chain_hits += 1
        else:
            self.misses += 1
        return result

    def store(self, program: BpfProgram, result: EquivalenceResult) -> None:
        if len(self._entries) >= self._max_entries:
            return
        self._entries[self.canonicalize(program)] = result

    # ------------------------------------------------------------------ #
    # Cross-chain sharing (parallel search engine).
    def export_entries(self) -> Dict[Tuple, EquivalenceResult]:
        """A picklable snapshot of every entry, for seeding worker chains."""
        return dict(self._entries)

    def local_entries(self) -> Dict[Tuple, EquivalenceResult]:
        """Only the entries this cache discovered itself (not seeded ones)."""
        return {key: value for key, value in self._entries.items()
                if key not in self._foreign}

    def seed(self, entries: Dict[Tuple, EquivalenceResult],
             foreign: bool = True) -> int:
        """Insert ``entries`` that are not already present.

        With ``foreign=True`` (a worker receiving the controller's shared
        snapshot) the inserted keys are tracked so later hits on them count
        as ``cross_chain_hits``.  Keys the cache already holds are left
        untouched, so a chain never sees its own discoveries as foreign.
        Returns the number of entries inserted.
        """
        inserted = 0
        for key, value in entries.items():
            if len(self._entries) >= self._max_entries:
                break
            if key in self._entries:
                continue
            self._entries[key] = value
            if foreign:
                self._foreign.add(key)
            inserted += 1
        return inserted

    def merge(self, other: "EquivalenceCache",
              include_counters: bool = True) -> None:
        """Merge a worker cache back into this (controller) cache.

        Only the worker's *local* discoveries are unioned in — entries it was
        seeded with are already here.  With ``include_counters`` the worker's
        ``hits``/``misses``/``cross_chain_hits`` are accumulated so aggregate
        statistics survive the merge path (each chain's counters would
        otherwise stay siloed in its own cache object).
        """
        self.seed(other.local_entries(), foreign=False)
        if include_counters:
            self.hits += other.hits
            self.misses += other.misses
            self.cross_chain_hits += other.cross_chain_hits

    # ------------------------------------------------------------------ #
    @property
    def num_entries(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "cross_chain_hits": self.cross_chain_hits,
                "entries": self.num_entries, "hit_rate": self.hit_rate}
