"""Equivalence-check caching (paper §5, optimization V).

Candidate programs produced by the stochastic search are frequently
structurally similar — often differing only in dead instructions.  K2
canonicalizes each candidate by removing dead code and caches the outcome of
equivalence-checking the canonical form, eliminating the vast majority of
solver calls (93%+ hit rates in Table 6).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..bpf.liveness import dead_code_eliminate
from ..bpf.program import BpfProgram
from .checker import EquivalenceResult

__all__ = ["EquivalenceCache"]


class EquivalenceCache:
    """Maps canonicalized candidate programs to their equivalence verdicts."""

    def __init__(self, max_entries: int = 1_000_000):
        self._entries: Dict[Tuple, EquivalenceResult] = {}
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    @staticmethod
    def canonicalize(program: BpfProgram) -> Tuple:
        """Canonical key: the structural key after dead-code elimination,
        with NOPs dropped so programs that differ only in padding collide.

        Candidates with broken control flow (e.g. a jump that falls off the
        end of the program) cannot be analysed for liveness; they fall back
        to their raw structural key — they will be rejected by the safety
        checker anyway.
        """
        from ..bpf.cfg import CfgError

        try:
            canonical = dead_code_eliminate(program.instructions)
        except CfgError:
            canonical = list(program.instructions)
        return tuple(
            (insn.opcode, insn.dst, insn.src, insn.off, insn.imm, insn.imm64)
            for insn in canonical if not insn.is_nop)

    # ------------------------------------------------------------------ #
    def lookup(self, program: BpfProgram) -> Optional[EquivalenceResult]:
        key = self.canonicalize(program)
        result = self._entries.get(key)
        if result is not None:
            self.hits += 1
        else:
            self.misses += 1
        return result

    def store(self, program: BpfProgram, result: EquivalenceResult) -> None:
        if len(self._entries) >= self._max_entries:
            return
        self._entries[self.canonicalize(program)] = result

    # ------------------------------------------------------------------ #
    @property
    def num_entries(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": self.num_entries, "hit_rate": self.hit_rate}
