"""Formal equivalence checking of BPF programs (paper sections 4 and 5)."""

from .memory_model import (
    SymbolicInputs, RegionMemory, MemoryWrite, MapModel, MapLookupInstance,
    MapEffect, HelperCallRecord, MODEL_PACKET_SIZE,
)
from .symbolic import SymbolicExecutor, SymbolicResult, ImpreciseEncodingError
from .checker import EquivalenceChecker, EquivalenceOptions, EquivalenceResult
from .window import Window, WindowEquivalenceChecker, select_windows
from .cache import EquivalenceCache

__all__ = [name for name in dir() if not name.startswith("_")]
