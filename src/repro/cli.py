"""Command-line interface: ``k2 optimize``, ``k2 check``, ``k2 serve``, ...

Examples::

    k2 optimize program.s --hook xdp --iterations 2000
    k2 optimize --benchmark xdp_pktcntr --engine decoded  # engine ablation
    k2 optimize --benchmark sys_enter_open --portfolio    # portfolio solver
    k2 optimize --benchmark xdp_pktcntr --store verdicts.k2s  # warm start
    k2 check program.s --hook xdp
    k2 corpus --list
    k2 store verdicts.k2s stats
    k2 serve --state .k2d                 # start the job daemon
    k2 serve --state .k2d --max-concurrent-jobs 4 --worker-budget 8
    k2 serve --state .k2d --peer .k2d-b --peer .k2d-c  # shard coordinator
    k2 submit --state .k2d --benchmark xdp_pktcntr --wait
    k2 submit --state .k2d --benchmark xdp_pktcntr --follow  # pushed events
    k2 submit --state .k2d --benchmark xdp_pktcntr --shards 2
    k2 watch --state .k2d j0001
    k2 status --state .k2d j0001
    k2 result --state .k2d j0001

The CLI is a thin shell over the stable :mod:`repro.api` facade — every
flag maps one-for-one onto a :class:`repro.api.K2Config` field, so
anything scriptable here is scriptable in Python with the same names.

Every command flushes open verdict stores and exits with status 130 on
SIGINT/SIGTERM, so an interrupted warm-started run never loses buffered
verdicts.  ``k2 serve`` upgrades that to a graceful daemon shutdown:
in-flight jobs stop at their next (checkpointed) generation boundary and
resume when the daemon restarts.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys

from . import api
from .bpf import HookType
from .engine import DEFAULT_ENGINE_KIND, ENGINE_KINDS
from .equivalence import EquivalenceOptions
from .corpus import all_benchmarks
from .safety import SafetyChecker
from .verifier import KernelChecker

__all__ = ["main"]


def _search_config(args: argparse.Namespace) -> api.K2Config:
    """The :class:`~repro.api.K2Config` a flag namespace denotes.

    The CLI is a thin shell over :mod:`repro.api`: flags map onto config
    fields one-for-one, so this is a straight transcription plus the few
    flags that only exist on some subcommands.
    """
    config = api.K2Config(
        goal=args.goal, iterations=args.iterations, settings=args.settings,
        seed=args.seed, num_workers=args.num_workers, executor=args.executor,
        sync_interval=args.sync_interval, engine=args.engine,
        analysis=args.analysis, windowed=args.windowed,
        window_size=args.window_size, window_overlap=args.window_overlap,
        conflict_budget=args.conflict_budget)
    for flag in ("portfolio", "store", "verify_pipeline", "priority",
                 "shards", "share_cache", "share_counterexamples"):
        if hasattr(args, flag):
            setattr(config, flag, getattr(args, flag))
    return config


def _cmd_optimize(args: argparse.Namespace) -> int:
    if args.benchmark:
        program = api.benchmark_program(args.benchmark)
    else:
        program = api.load_program(args.program, args.hook)
    result = api.optimize(program, _search_config(args))
    print(result.summary())
    print()
    print(result.optimized.to_text())
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    if args.benchmark:
        program = api.benchmark_program(args.benchmark)
    else:
        program = api.load_program(args.program, args.hook)
    safety = SafetyChecker(mode=args.analysis).check(program)
    verdict = KernelChecker(mode=args.analysis).load(program)
    print(f"safety checker : {'safe' if safety.safe else 'UNSAFE'}")
    for violation in safety.violations:
        print(f"  - {violation}")
    print(f"kernel checker : {'accepted' if verdict else 'REJECTED'} "
          f"({verdict.reason}, {verdict.insns_processed} insns processed)")
    return 0 if safety.safe and verdict.accepted else 1


def _cmd_corpus(args: argparse.Namespace) -> int:
    for bench in all_benchmarks():
        program = bench.program()
        print(f"{bench.paper_index:2d}  {bench.name:20s} {bench.origin:9s} "
              f"{len(program):4d} insns  {bench.description}")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from .store import VerdictStore

    store = VerdictStore(args.path)
    if args.action == "stats":
        for field, value in api.store_stats(args.path).items():
            print(f"{field:22s} {value}")
        return 0
    if args.action == "gc":
        report = store.gc()
        print(f"compacted {args.path}: {report['lines_before']} -> "
              f"{report['lines_after']} lines "
              f"({report['dropped']} dropped, "
              f"{report['corrupt_dropped']} corrupt)")
        return 0
    # verify: nonzero exit on any corruption or a stale/foreign header.
    report = store.verify()
    state = "ok" if report["ok"] else "CORRUPT"
    if not report["exists"]:
        state = "ok (missing: reads as empty)"
    elif not report["header_ok"]:
        state = "STALE (header missing, foreign or old semantics; " \
                "reads as empty)"
    print(f"{args.path}: {state} — {report['records']} records, "
          f"{report['corrupt']} corrupt, {report['skipped']} skipped")
    return 0 if report["ok"] else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import K2Daemon

    daemon = K2Daemon(args.state,
                      max_job_attempts=args.max_job_attempts,
                      max_concurrent_jobs=args.max_concurrent_jobs,
                      worker_budget=args.worker_budget,
                      peers=args.peer)
    print(f"k2 daemon: state dir {daemon.state_dir}, "
          f"{len(daemon.queue.jobs())} journaled jobs, "
          f"{daemon.max_concurrent_jobs} slots x "
          f"{daemon.worker_budget} workers"
          + (f", {len(daemon.peers)} peers" if daemon.peers else ""),
          flush=True)
    return daemon.serve_forever()


def _client(args: argparse.Namespace):
    from .service import DaemonClient

    return DaemonClient(args.state)


def _cmd_submit(args: argparse.Namespace) -> int:
    program_text = None
    if args.program:
        with open(args.program, "r", encoding="utf-8") as handle:
            program_text = handle.read()
    job_id = api.submit(_search_config(args), benchmark=args.benchmark,
                        program_text=program_text, hook=args.hook,
                        sync_interval=args.sync_interval, state=args.state)
    print(job_id, flush=True)
    if args.follow:
        # Event-driven: every line below was pushed by the daemon over a
        # held-open watch stream — following costs zero status polls.
        job = None
        for event in api.watch(job_id, state=args.state,
                               timeout=args.timeout):
            line = {"event": event.event, "seq": event.seq}
            line.update({key: value for key, value in event.data.items()
                         if key != "job"})
            print(json.dumps(line, sort_keys=True), flush=True)
            if event.final:
                job = (event.data or {}).get("job")
        if job is None:  # stream ended without a terminal record
            job = _client(args).result(job_id)
        print(json.dumps(job, indent=2, sort_keys=True))
        return 0 if job["state"] == "done" else 1
    if args.wait:
        job = api.wait(job_id, state=args.state, timeout=args.timeout)
        print(json.dumps(job, indent=2, sort_keys=True))
        return 0 if job["state"] == "done" else 1
    return 0


def _cmd_job_query(args: argparse.Namespace) -> int:
    client = _client(args)
    if args.command == "status":
        job = client.status(args.job)
    elif args.command == "result":
        job = client.wait(args.job, timeout=args.timeout) if args.wait \
            else client.result(args.job)
    else:  # cancel
        job = client.cancel(args.job)
    print(json.dumps(job, indent=2, sort_keys=True))
    if args.command == "result":
        return 0 if job["state"] == "done" else 1
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    final_state = None
    for event in api.watch(args.job, state=args.state, timeout=args.timeout):
        line = {"event": event.event, "seq": event.seq}
        line.update({key: value for key, value in event.data.items()
                     if key != "job"})
        print(json.dumps(line, sort_keys=True), flush=True)
        if event.final:
            final_state = (event.data or {}).get("state")
    return 0 if final_state == "done" else 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    for job in _client(args).jobs():
        progress = job.get("progress") or {}
        gen = f"{progress.get('generation', '-')}/{progress.get('total', '-')}"
        target = job["spec"].get("benchmark") or "<submitted>"
        print(f"{job['id']}  {job['state']:9s} {gen:>7s}  {target}")
    return 0


def _cmd_shutdown(args: argparse.Namespace) -> int:
    response = _client(args).shutdown()
    print(json.dumps(response, sort_keys=True))
    return 0 if response.get("ok") else 1


def _add_state_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--state", default=".k2d", metavar="DIR",
                        help="daemon state directory: socket, job journal "
                             "and shared verdict store live here "
                             "(default: %(default)s)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="k2", description="K2: synthesize safe and efficient BPF bytecode")
    sub = parser.add_subparsers(dest="command", required=True)

    optimize = sub.add_parser("optimize", help="optimize a BPF assembly file")
    optimize.add_argument("program", nargs="?", help="path to a .s assembly file")
    optimize.add_argument("--benchmark", metavar="NAME",
                          help="optimize a corpus benchmark (see `k2 corpus`) "
                               "instead of an assembly file")
    optimize.add_argument("--hook", default="xdp",
                          choices=[h.value for h in HookType],
                          help="BPF hook the program attaches to "
                               "(default: %(default)s)")
    optimize.add_argument("--goal", default="size", choices=["size", "latency"],
                          help="optimize for fewer instructions (size) or for "
                               "estimated latency (default: %(default)s)")
    optimize.add_argument("--iterations", type=int, default=2000,
                          metavar="N",
                          help="MCMC proposals per Markov chain "
                               "(default: %(default)s)")
    optimize.add_argument("--settings", type=int, default=4, metavar="K",
                          help="number of Table 8 parameter settings, i.e. "
                               "chains, to search (default: %(default)s)")
    optimize.add_argument("--seed", type=int, default=0, metavar="SEED",
                          help="RNG seed; identical seeds reproduce identical "
                               "results (default: %(default)s)")
    optimize.add_argument("--num-workers", type=int, default=1, metavar="N",
                          help="worker processes to run chains in parallel; "
                               "1 keeps the search in-process and sequential "
                               "(default: %(default)s)")
    optimize.add_argument("--executor", default="auto",
                          choices=["auto", "serial", "process", "thread"],
                          help="executor backend for dispatching chains: auto "
                               "picks a process pool when --num-workers > 1 "
                               "and the deterministic serial executor "
                               "otherwise (default: %(default)s)")
    optimize.add_argument("--sync-interval", type=int, default=None,
                          metavar="N",
                          help="iterations between cross-chain sharing points "
                               "(equivalence-cache entries and "
                               "counterexamples); omit to run each chain to "
                               "completion without mid-run sharing")
    optimize.add_argument("--engine", default=DEFAULT_ENGINE_KIND,
                          choices=list(ENGINE_KINDS),
                          help="candidate execution engine: 'batch' runs "
                               "whole test suites in lockstep over "
                               "structure-of-arrays machine images (fastest "
                               "for pooled replay; falls back to fused for "
                               "small batches), 'fused' compiles "
                               "superinstruction traces per basic-block "
                               "region, 'decoded' runs pre-decoded "
                               "micro-ops with a decode cache and reusable "
                               "machine state, 'legacy' is the reference "
                               "per-step interpreter kept for ablation; all "
                               "four produce bit-identical results "
                               "(default: %(default)s)")
    optimize.add_argument("--portfolio", action="store_true",
                          help="portfolio equivalence front end: run the "
                               "incremental solver session and a fresh "
                               "solver per query on a deterministic "
                               "budget-doubling dovetail, first verdict "
                               "wins; bounds the incremental session's "
                               "worst case (Table 4) without giving up its "
                               "common-case speedups")
    optimize.add_argument("--analysis", default="fused",
                          choices=["fused", "legacy"],
                          help="static safety analysis: 'fused' runs the "
                               "unified incremental abstract interpreter "
                               "(provenance x known-bits x intervals, "
                               "per-block memoization across proposals, "
                               "static-safety pipeline pre-stage), 'legacy' "
                               "is the original two-pass analysis kept for "
                               "ablation (default: %(default)s)")
    optimize.add_argument("--windowed", action="store_true",
                          help="windowed segment synthesis: slice the program "
                               "into overlapping windows, search each window "
                               "with its own chains and window-local proposal "
                               "pools, stitch the best rewrites and re-verify "
                               "the stitched program against the source "
                               "through the full tiered pipeline (programs "
                               "no longer than --window-size fall back to "
                               "the whole-program search)")
    optimize.add_argument("--window-size", type=int, default=24, metavar="N",
                          help="instructions per candidate window "
                               "(default: %(default)s)")
    optimize.add_argument("--window-overlap", type=int, default=8, metavar="N",
                          help="instructions shared by consecutive windows "
                               "(default: %(default)s)")
    optimize.add_argument("--store", default=None, metavar="PATH",
                          help="durable verdict store: preseed the "
                               "equivalence cache and analyzer memos from "
                               "PATH before the search and flush new "
                               "verdicts/counterexamples/memos back at every "
                               "generation boundary; verdicts learned in one "
                               "run accelerate every future run on the same "
                               "program, and warm starts are bit-identical "
                               "to cold ones (the file is created on first "
                               "use)")
    optimize.add_argument("--conflict-budget", type=int, default=None,
                          metavar="N",
                          help="per-query solver conflict budget "
                               "(Solver.set_conflict_budget): an SMT query "
                               "that exhausts it degrades to 'unknown' and "
                               "the pipeline escalates, so one pathological "
                               "candidate cannot hang the search; omit for "
                               "the library default")
    optimize.add_argument("--verify-pipeline", default=None, metavar="STAGES",
                          help="comma-separated verification stages to enable, "
                               "in escalation order, from: replay, cache, "
                               "window, full (default: all four); e.g. "
                               "--verify-pipeline cache,full reproduces a "
                               "Table 4 ablation configuration")
    optimize.set_defaults(func=_cmd_optimize)

    check = sub.add_parser("check", help="run the safety and kernel checkers")
    check.add_argument("program", nargs="?", help="path to a .s assembly file")
    check.add_argument("--benchmark", metavar="NAME",
                       help="check a corpus benchmark (see `k2 corpus`) "
                            "instead of an assembly file")
    check.add_argument("--hook", default="xdp",
                       choices=[h.value for h in HookType],
                       help="BPF hook the program attaches to "
                            "(default: %(default)s)")
    check.add_argument("--analysis", default="fused",
                       choices=["fused", "legacy"],
                       help="static analysis implementation for both "
                            "checkers (default: %(default)s)")
    check.set_defaults(func=_cmd_check)

    corpus = sub.add_parser("corpus", help="list the benchmark corpus")
    corpus.set_defaults(func=_cmd_corpus)

    store = sub.add_parser(
        "store", help="inspect or maintain a durable verdict store")
    store.add_argument("path", help="path of the store file")
    store.add_argument("action", choices=["stats", "gc", "verify"],
                       help="stats: summarize contents; gc: compact the "
                            "file (drop corrupt, duplicate and "
                            "foreign-semantics records); verify: integrity "
                            "scan, nonzero exit on corruption")
    store.set_defaults(func=_cmd_store)

    serve = sub.add_parser(
        "serve", help="run the long-lived synthesis job daemon")
    _add_state_arg(serve)
    serve.add_argument("--max-job-attempts", type=int, default=3, metavar="N",
                       help="times a crashing job is retried before it is "
                            "marked failed (default: %(default)s)")
    serve.add_argument("--max-concurrent-jobs", type=int, default=1,
                       metavar="N",
                       help="scheduler slots: jobs running at once "
                            "(default: %(default)s)")
    serve.add_argument("--worker-budget", type=int, default=None, metavar="N",
                       help="daemon-wide worker pool that per-job grants are "
                            "carved from; a job asking for more workers than "
                            "remain is clamped, never skipped (default: "
                            "max(cpu count, --max-concurrent-jobs))")
    serve.add_argument("--peer", action="append", default=[], metavar="DIR",
                       help="state directory of a peer daemon to farm shard "
                            "sub-jobs out to (repeatable); shards with no "
                            "live peer run locally")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit an optimization job to a running daemon")
    _add_state_arg(submit)
    submit.add_argument("program", nargs="?",
                        help="path to a .s assembly file")
    submit.add_argument("--benchmark", metavar="NAME",
                        help="submit a corpus benchmark instead of a file")
    submit.add_argument("--hook", default="xdp",
                        choices=[h.value for h in HookType])
    submit.add_argument("--goal", default="size",
                        choices=["size", "latency"])
    submit.add_argument("--iterations", type=int, default=2000, metavar="N")
    submit.add_argument("--settings", type=int, default=4, metavar="K")
    submit.add_argument("--seed", type=int, default=0, metavar="SEED")
    submit.add_argument("--sync-interval", type=int, default=250,
                        metavar="N",
                        help="generation length; the daemon checkpoints at "
                             "every boundary, so this bounds the work a "
                             "crash can lose (default: %(default)s)")
    submit.add_argument("--num-workers", type=int, default=1, metavar="N")
    submit.add_argument("--executor", default="auto",
                        choices=["auto", "serial", "process", "thread"])
    submit.add_argument("--engine", default=DEFAULT_ENGINE_KIND,
                        choices=list(ENGINE_KINDS))
    submit.add_argument("--analysis", default="fused",
                        choices=["fused", "legacy"])
    submit.add_argument("--windowed", action="store_true")
    submit.add_argument("--window-size", type=int, default=24, metavar="N")
    submit.add_argument("--window-overlap", type=int, default=8, metavar="N")
    submit.add_argument("--conflict-budget", type=int, default=None,
                        metavar="N",
                        help="per-query solver conflict budget; hung SMT "
                             "queries degrade to 'unknown' (default: "
                             "library default)")
    submit.add_argument("--priority", type=int, default=0, metavar="P",
                        help="scheduling priority: higher runs first, FIFO "
                             "within a priority (default: %(default)s)")
    submit.add_argument("--shards", type=int, default=1, metavar="N",
                        help="split the job's chains into N contiguous "
                             "shards farmed out to the daemon's --peer "
                             "daemons and merged deterministically "
                             "(default: %(default)s)")
    submit.add_argument("--no-share-cache", dest="share_cache",
                        action="store_false",
                        help="disable cross-chain equivalence-cache sharing "
                             "(makes a sharded run bit-identical to the "
                             "unsharded one)")
    submit.add_argument("--no-share-counterexamples",
                        dest="share_counterexamples", action="store_false",
                        help="disable cross-chain counterexample sharing")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job is terminal and print its "
                             "result record (event-driven, no polling)")
    submit.add_argument("--follow", action="store_true",
                        help="stream the daemon's pushed job events (state "
                             "changes, per-generation progress, shard "
                             "transitions) as JSON lines until the job is "
                             "terminal, then print its result record; "
                             "costs zero status polls")
    submit.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="give up waiting after SEC seconds (the job "
                             "keeps running)")
    submit.set_defaults(func=_cmd_submit)

    watch = sub.add_parser(
        "watch", help="stream a job's pushed events as JSON lines")
    _add_state_arg(watch)
    watch.add_argument("job", help="job id, e.g. j0001")
    watch.add_argument("--timeout", type=float, default=None, metavar="SEC")
    watch.set_defaults(func=_cmd_watch)

    for name, helptext in (("status", "show a job's queue state"),
                           ("result", "show a job's full record incl. result"),
                           ("cancel", "cancel a queued or running job")):
        query = sub.add_parser(name, help=helptext)
        _add_state_arg(query)
        query.add_argument("job", help="job id, e.g. j0001")
        if name == "result":
            query.add_argument("--wait", action="store_true",
                               help="block until the job is terminal")
            query.add_argument("--timeout", type=float, default=None,
                               metavar="SEC")
        query.set_defaults(func=_cmd_job_query)

    jobs = sub.add_parser("jobs", help="list the daemon's jobs")
    _add_state_arg(jobs)
    jobs.set_defaults(func=_cmd_jobs)

    shutdown = sub.add_parser(
        "shutdown", help="ask the daemon to shut down gracefully")
    _add_state_arg(shutdown)
    shutdown.set_defaults(func=_cmd_shutdown)

    args = parser.parse_args(argv)
    if args.command in ("optimize", "check", "submit") and not args.program \
            and not args.benchmark:
        parser.error("provide a program file or --benchmark NAME")
    if args.command in ("optimize", "submit") and (
            args.window_size < 2
            or not 0 <= args.window_overlap < args.window_size):
        parser.error("--window-size must be >= 2 and --window-overlap must "
                     "be >= 0 and smaller than --window-size")
    if args.command == "optimize" and args.verify_pipeline is not None:
        try:
            EquivalenceOptions.from_stages(args.verify_pipeline)
        except ValueError as exc:
            parser.error(str(exc))
    return _dispatch(args)


def _raise_interrupt(signum, frame):  # pragma: no cover - signal path
    raise KeyboardInterrupt


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected command with interrupt-safe store flushing.

    SIGINT and SIGTERM both land here as :class:`KeyboardInterrupt`: any
    buffered verdict-store records are flushed before exiting 130, so an
    interrupted warm-started run keeps everything it learned.  ``k2 serve``
    installs its own graceful handlers once the daemon starts, which
    supersede this wrapper's.
    """
    try:
        signal.signal(signal.SIGTERM, _raise_interrupt)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    service_commands = ("submit", "status", "result", "cancel", "jobs",
                        "watch", "shutdown")
    try:
        return args.func(args)
    except KeyboardInterrupt:
        from .store import flush_open_stores

        flushed = flush_open_stores()
        note = f" ({flushed} store records flushed)" if flushed else ""
        print(f"k2 {args.command}: interrupted{note}", file=sys.stderr)
        return 130
    except Exception as exc:
        if args.command in service_commands:
            from .service import DaemonUnavailable

            if isinstance(exc, (DaemonUnavailable, ValueError,
                                TimeoutError)):
                print(f"k2 {args.command}: {exc}", file=sys.stderr)
                return 2
        raise


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
