"""Command-line interface: ``k2 optimize``, ``k2 check``, ``k2 bench-list``.

Examples::

    k2 optimize program.s --hook xdp --iterations 2000
    k2 check program.s --hook xdp
    k2 corpus --list
"""

from __future__ import annotations

import argparse
import sys

from .bpf import BpfProgram, HookType, assemble, get_hook
from .bpf.maps import MapEnvironment
from .core import K2Compiler, OptimizationGoal
from .corpus import all_benchmarks, get_benchmark
from .safety import SafetyChecker
from .verifier import KernelChecker

__all__ = ["main"]


def _load_program(path: str, hook_name: str) -> BpfProgram:
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    hook = HookType(hook_name)
    return BpfProgram(instructions=assemble(text), hook=get_hook(hook),
                      maps=MapEnvironment(), name=path)


def _cmd_optimize(args: argparse.Namespace) -> int:
    if args.benchmark:
        program = get_benchmark(args.benchmark).program()
    else:
        program = _load_program(args.program, args.hook)
    goal = OptimizationGoal.LATENCY if args.goal == "latency" \
        else OptimizationGoal.INSTRUCTION_COUNT
    compiler = K2Compiler(goal=goal, iterations_per_chain=args.iterations,
                          num_parameter_settings=args.settings, seed=args.seed)
    result = compiler.optimize(program)
    print(result.summary())
    print()
    print(result.optimized.to_text())
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    if args.benchmark:
        program = get_benchmark(args.benchmark).program()
    else:
        program = _load_program(args.program, args.hook)
    safety = SafetyChecker().check(program)
    verdict = KernelChecker().load(program)
    print(f"safety checker : {'safe' if safety.safe else 'UNSAFE'}")
    for violation in safety.violations:
        print(f"  - {violation}")
    print(f"kernel checker : {'accepted' if verdict else 'REJECTED'} "
          f"({verdict.reason}, {verdict.insns_processed} insns processed)")
    return 0 if safety.safe and verdict.accepted else 1


def _cmd_corpus(args: argparse.Namespace) -> int:
    for bench in all_benchmarks():
        program = bench.program()
        print(f"{bench.paper_index:2d}  {bench.name:20s} {bench.origin:9s} "
              f"{len(program):4d} insns  {bench.description}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="k2", description="K2: synthesize safe and efficient BPF bytecode")
    sub = parser.add_subparsers(dest="command", required=True)

    optimize = sub.add_parser("optimize", help="optimize a BPF assembly file")
    optimize.add_argument("program", nargs="?", help="path to a .s assembly file")
    optimize.add_argument("--benchmark", help="optimize a corpus benchmark instead")
    optimize.add_argument("--hook", default="xdp",
                          choices=[h.value for h in HookType])
    optimize.add_argument("--goal", default="size", choices=["size", "latency"])
    optimize.add_argument("--iterations", type=int, default=2000)
    optimize.add_argument("--settings", type=int, default=4)
    optimize.add_argument("--seed", type=int, default=0)
    optimize.set_defaults(func=_cmd_optimize)

    check = sub.add_parser("check", help="run the safety and kernel checkers")
    check.add_argument("program", nargs="?")
    check.add_argument("--benchmark")
    check.add_argument("--hook", default="xdp",
                       choices=[h.value for h in HookType])
    check.set_defaults(func=_cmd_check)

    corpus = sub.add_parser("corpus", help="list the benchmark corpus")
    corpus.set_defaults(func=_cmd_corpus)

    args = parser.parse_args(argv)
    if args.command in ("optimize", "check") and not args.program \
            and not args.benchmark:
        parser.error("provide a program file or --benchmark NAME")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
