"""The K2 compiler public API."""

from .compiler import CompilationResult, K2Compiler, OptimizationGoal

__all__ = [name for name in dir() if not name.startswith("_")]
