"""The K2 compiler: the library's primary public entry point.

``K2Compiler`` consumes a BPF program (bytecode built with the
:mod:`repro.bpf` builders, assembled from text, or decoded from the kernel's
binary format) and produces a safe, formally-equivalent, more compact or
faster drop-in replacement, exactly as described in §2.3 of the paper.

Typical usage::

    from repro.bpf import BpfProgram, HookType, assemble
    from repro.core import K2Compiler, OptimizationGoal

    program = BpfProgram.create(assemble(source_text), HookType.XDP)
    compiler = K2Compiler(goal=OptimizationGoal.INSTRUCTION_COUNT)
    result = compiler.optimize(program)
    print(result.summary())
    optimized = result.optimized        # a BpfProgram, drop-in replacement
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import List, Optional

from ..bpf.encoder import decode_program, encode_program
from ..bpf.hooks import HookType
from ..bpf.maps import MapEnvironment
from ..bpf.program import BpfProgram
from ..equivalence import EquivalenceOptions
from ..perf.latency_model import DEFAULT_LATENCY_MODEL
from ..synthesis.cost import PerformanceGoal
from ..synthesis.params import ParameterSetting
from ..synthesis.search import SearchOptions, SearchResult, Synthesizer
from ..verification import summarize_verification_stats
from ..verifier import KernelChecker, KernelCheckerVerdict

__all__ = ["OptimizationGoal", "CompilationResult", "K2Compiler"]

#: Re-export with a friendlier name for library users.
OptimizationGoal = PerformanceGoal


@dataclasses.dataclass
class CompilationResult:
    """The outcome of one ``K2Compiler.optimize`` invocation."""

    source: BpfProgram
    optimized: BpfProgram
    search: SearchResult
    kernel_checker_verdict: KernelCheckerVerdict

    # ------------------------------------------------------------------ #
    @property
    def improved(self) -> bool:
        return self.search.best is not None and (
            self.optimized.num_real_instructions
            < self.source.num_real_instructions
            or self.estimated_latency_gain > 0)

    @property
    def instruction_reduction(self) -> int:
        return (self.source.num_real_instructions
                - self.optimized.num_real_instructions)

    @property
    def compression_percent(self) -> float:
        original = self.source.num_real_instructions
        return 100.0 * self.instruction_reduction / original if original else 0.0

    @property
    def estimated_latency_gain(self) -> float:
        return (DEFAULT_LATENCY_MODEL.program_cost(self.source)
                - DEFAULT_LATENCY_MODEL.program_cost(self.optimized))

    @property
    def estimated_latency_gain_percent(self) -> float:
        base = DEFAULT_LATENCY_MODEL.program_cost(self.source)
        return 100.0 * self.estimated_latency_gain / base if base else 0.0

    def to_bytes(self) -> bytes:
        """The optimized program in the kernel's binary instruction format."""
        return encode_program(self.optimized.instructions)

    def summary(self) -> str:
        lines = [
            f"program:       {self.source.name}",
            f"instructions:  {self.source.num_real_instructions} -> "
            f"{self.optimized.num_real_instructions} "
            f"({self.compression_percent:.2f}% smaller)",
            f"est. latency:  {DEFAULT_LATENCY_MODEL.program_cost(self.source):.1f}ns -> "
            f"{DEFAULT_LATENCY_MODEL.program_cost(self.optimized):.1f}ns",
            f"kernel check:  {'accepted' if self.kernel_checker_verdict else 'REJECTED'}",
            f"search:        {self.search.total_iterations()} iterations, "
            f"{self.search.elapsed_seconds:.1f}s "
            f"({len(self.search.chain_results)} chains, "
            f"{self.search.executor_used} executor)",
        ]
        cache = self.search.cache_stats
        if cache:
            lines.append(
                f"eq-cache:      {cache['hits']:.0f} hits / "
                f"{cache['misses']:.0f} misses "
                f"({100.0 * cache['hit_rate']:.0f}% hit rate, "
                f"{cache['cross_chain_hits']:.0f} cross-chain), "
                f"{self.search.counterexamples_shared} counterexamples shared")
        verification = self.search.verification_stats
        if verification:
            lines.append(
                f"verify:        {summarize_verification_stats(verification)}")
        store = self.search.store_stats
        if store:
            lines.append(
                f"store:         {store['path']}: "
                f"{store['preseeded_verdicts']} verdicts + "
                f"{store['preseeded_analysis']} memos preseeded "
                f"({self.search.cache_stats.get('store_hits', 0):.0f} "
                f"cross-run hits), "
                f"{store['flushed_records']} records flushed")
        windows = self.search.window_stats
        if windows:
            adopted = [w for w in windows if w.adopted]
            removed = sum(w.insns_removed for w in adopted)
            if self.search.stitch_verified is None:
                stitch = "unchanged"
            elif not self.search.stitch_verified:
                stitch = "proof FAILED (fell back to source)"
            elif self.search.best is None:
                stitch = "verified, kernel-checker REJECTED " \
                         "(fell back to source)"
            else:
                stitch = "verified"
            lines.append(
                f"windows:       {len(windows)} planned, "
                f"{len(adopted)} adopted, {removed} insns removed, "
                f"stitch {stitch}")
        return "\n".join(lines)


class K2Compiler:
    """Program-synthesis-based optimizing compiler for BPF bytecode."""

    def __init__(self, goal: OptimizationGoal = OptimizationGoal.INSTRUCTION_COUNT,
                 iterations_per_chain: int = 2000,
                 num_parameter_settings: int = 4,
                 top_k: Optional[int] = None,
                 seed: int = 0,
                 time_budget_seconds: Optional[float] = None,
                 num_workers: int = 1,
                 executor: str = "auto",
                 sync_interval: Optional[int] = None,
                 verify_stages: Optional[str] = None,
                 equivalence: Optional[EquivalenceOptions] = None,
                 engine: str = "fused",
                 analysis: str = "fused",
                 portfolio: bool = False,
                 windowed: bool = False,
                 window_size: int = 24,
                 window_overlap: int = 8,
                 store: Optional[str] = None,
                 conflict_budget: Optional[int] = None,
                 options: Optional[SearchOptions] = None):
        if options is not None and (verify_stages is not None
                                    or equivalence is not None or portfolio
                                    or conflict_budget is not None):
            raise ValueError("an explicit SearchOptions already carries its "
                             "EquivalenceOptions; do not combine options with "
                             "verify_stages/equivalence/portfolio")
        if options is not None and (windowed or window_size != 24
                                    or window_overlap != 8):
            raise ValueError("an explicit SearchOptions already carries its "
                             "window_mode/window_size/window_overlap; set "
                             "them on the SearchOptions instead of the "
                             "windowed/window_* kwargs")
        if options is not None and store is not None:
            raise ValueError("an explicit SearchOptions already carries its "
                             "store_path; set it on the SearchOptions "
                             "instead of the store kwarg")
        if options is None:
            # One-release deprecation shim: the keyword sprawl still works,
            # but the stable spelling is a typed ``repro.api.K2Config``
            # (``K2Config(...).compiler()`` or ``repro.api.optimize``).
            warnings.warn(
                "K2Compiler(goal=..., iterations_per_chain=..., ...) is "
                "deprecated; build a repro.api.K2Config and use "
                "repro.api.optimize() (or K2Config.compiler()) instead",
                DeprecationWarning, stacklevel=2)
            if equivalence is None:
                equivalence = EquivalenceOptions.from_stages(verify_stages) \
                    if verify_stages is not None else EquivalenceOptions()
            elif verify_stages is not None:
                raise ValueError(
                    "pass either verify_stages or equivalence, not both")
            if portfolio:
                equivalence.portfolio = True
            if conflict_budget is not None:
                # Per-query solver deadline (Solver.set_conflict_budget): a
                # hung SMT query degrades to `unknown` instead of stalling.
                if conflict_budget <= 0:
                    raise ValueError("conflict_budget must be positive")
                equivalence = dataclasses.replace(
                    equivalence, max_conflicts=int(conflict_budget))
            options = SearchOptions(
                goal=goal,
                iterations_per_chain=iterations_per_chain,
                num_parameter_settings=num_parameter_settings,
                top_k=top_k if top_k is not None else (
                    1 if goal == OptimizationGoal.INSTRUCTION_COUNT else 5),
                seed=seed,
                time_budget_seconds=time_budget_seconds,
                num_workers=num_workers,
                executor=executor,
                sync_interval=sync_interval,
                equivalence=equivalence,
                engine=engine,
                analysis=analysis,
                window_mode=windowed,
                window_size=window_size,
                window_overlap=window_overlap,
                store_path=store)
        self.options = options
        self.kernel_checker = KernelChecker(mode=self.options.analysis)

    # ------------------------------------------------------------------ #
    def optimize(self, program: BpfProgram,
                 settings: Optional[List[ParameterSetting]] = None
                 ) -> CompilationResult:
        """Optimize ``program`` and return the best drop-in replacement.

        The result always contains a program that is safe, equivalent to the
        input and accepted by the kernel-checker model; if the search finds
        nothing better, the original program is returned unchanged.
        """
        program.validate()
        synthesizer = Synthesizer(self.options)
        search = synthesizer.optimize(program, settings=settings)
        optimized = search.best_program
        verdict = self.kernel_checker.load(optimized)
        if not verdict.accepted:
            # Fail-safe post-processing (§6): fall back to the source program,
            # which the user already knows the kernel accepts.
            optimized = program
            verdict = self.kernel_checker.load(program)
        return CompilationResult(source=program, optimized=optimized,
                                 search=search,
                                 kernel_checker_verdict=verdict)

    # ------------------------------------------------------------------ #
    def optimize_bytes(self, raw: bytes,
                       hook_type: HookType = HookType.XDP,
                       maps: Optional[MapEnvironment] = None,
                       name: str = "bpf_prog") -> CompilationResult:
        """Optimize a program given in the kernel's binary instruction format."""
        instructions = decode_program(raw)
        program = BpfProgram.create(instructions, hook_type, maps, name)
        return self.optimize(program)
