"""K2 reproduction: a program-synthesis-based compiler for BPF.

The public API re-exports the pieces a downstream user typically needs:

* :class:`repro.bpf.BpfProgram` and the instruction builders,
* :class:`repro.core.K2Compiler` - the optimizer,
* :class:`repro.interpreter.Interpreter` - the BPF interpreter,
* :class:`repro.equivalence.EquivalenceChecker` and
  :class:`repro.safety.SafetyChecker`.
"""

__version__ = "1.1.0"

__all__ = ["__version__"]
