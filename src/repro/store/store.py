"""The durable content-addressed verdict store (ROADMAP item 1).

K2's equivalence cache eliminates the vast majority of solver calls within
one run (paper §5, optimization V), but every run starts cold: proofs,
counterexamples and safety-analysis memos die with the process.
:class:`VerdictStore` makes that state durable — a build-cache for
equivalence proofs — so verdicts learned in one run accelerate every future
run over the same programs.

Format
------
One append-only JSONL file.  The first line is a header stamping the file
format and the **semantics version** (:data:`SEMANTICS_VERSION`); every
following line is one record carrying its own checksum:

* ``src``  — declares a source program: content digest → full content key;
* ``eq``   — one equivalence verdict: (source digest, canonical candidate
  key) → :class:`~repro.equivalence.EquivalenceResult`;
* ``cex``  — one counterexample test case discovered against a source;
* ``an``   — one safety-analysis memo: program content key →
  :class:`~repro.analysis.AnalysisOutcome`.

Staleness is handled by *versioning the key*, never by trusting mtimes: a
header whose semantics stamp differs from the running code makes the whole
file read as empty (and the next flush or ``gc`` rewrites it), and records
are only ever looked up under exact content keys, so a program edit can
never alias a stale verdict.

Only **conclusive** verdicts are persisted (proofs of equivalence, or
non-equivalence with a concrete counterexample).  "Unknown" results —
solver-budget exhaustion, unencodable candidates — are recomputed fresh
each run: they are cheap to reproduce when deterministic and may flip under
a different solver history when not, and skipping them is what keeps a
warm-started search bit-identical to a cold one.

Durability and concurrency
--------------------------
Appends happen under an exclusive ``flock`` on a sidecar lock file, as a
single buffered write followed by ``fsync``; compaction (``gc``) and
first-write/stale-rewrite paths write a temporary file and ``os.replace``
it into place (atomic rename).  Readers never need the lock: a torn
trailing line fails its JSON parse or checksum and is skipped, costing one
record, not the file.  Within a synthesis run the write path is
single-writer by construction — worker chains buffer their discoveries and
the :class:`~repro.synthesis.parallel.ChainController` merges and flushes
them at generation boundaries.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
import warnings
import weakref
from typing import Dict, List, Optional, Tuple

from ..analysis.analyzer import AnalysisOutcome
from ..bpf.program import BpfProgram
from ..equivalence.checker import EquivalenceResult
from ..interpreter import ProgramInput
from .serialize import (
    decode_key, decode_outcome, decode_result, decode_test, encode_key,
    encode_outcome, encode_result, encode_test, record_checksum,
    source_digest,
)

__all__ = ["SEMANTICS_VERSION", "STORE_FORMAT", "VerdictStore",
           "flush_open_stores"]

#: Version stamp of the executable semantics the persisted verdicts were
#: computed under: the interpreter/engines, the SMT encoding and the fused
#: abstract analyzer.  Bump it whenever any of those change observable
#: behaviour — every existing store then reads as empty (a cold cache)
#: instead of replaying verdicts the new semantics might not reproduce.
SEMANTICS_VERSION = "k2-semantics-1"

#: On-disk container format version (header layout, record framing).
STORE_FORMAT = 1


# ``fcntl`` is resolved once at import time — a mid-flush ImportError on a
# non-POSIX platform would otherwise abort the write and drop the pending
# delta.  Without it, writers degrade to an atomic-create lock file (and,
# past a bounded wait, to no locking at all), with a one-time warning so
# the weaker guarantee is visible rather than silent.
try:
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - platform-dependent
    _fcntl = None

#: Seconds a lock-file writer waits for a competing writer before assuming
#: the lock is stale (a crashed holder) and breaking it.
_LOCKFILE_TIMEOUT = 10.0
_warned_fallback = False


def _warn_lock_fallback(reason: str) -> None:
    global _warned_fallback
    if not _warned_fallback:
        _warned_fallback = True
        warnings.warn(
            f"verdict-store writer lock degraded ({reason}); concurrent "
            "writers on this platform may interleave appends",
            RuntimeWarning, stacklevel=3)


@contextlib.contextmanager
def _lockfile_lock(lock_path: str):
    """Portable fallback: exclusive lock via atomic O_CREAT|O_EXCL.

    A holder that crashes leaves the file behind; waiters break locks older
    than :data:`_LOCKFILE_TIMEOUT` (and locks whose age cannot be read)
    rather than deadlocking — the store's per-record checksums already make
    a torn interleaved append cost one record, not the file.
    """
    deadline = time.monotonic() + _LOCKFILE_TIMEOUT
    acquired = False
    while True:
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(fd)
            acquired = True
            break
        except FileExistsError:
            try:
                stale = (time.time() - os.path.getmtime(lock_path)
                         > _LOCKFILE_TIMEOUT)
            except OSError:
                stale = True
            if stale:
                with contextlib.suppress(OSError):
                    os.unlink(lock_path)
                continue
            if time.monotonic() > deadline:
                _warn_lock_fallback("timed out waiting for lock file")
                break
            time.sleep(0.01)
        except OSError as exc:  # pragma: no cover - exotic filesystems
            _warn_lock_fallback(f"cannot create lock file: {exc}")
            break
    try:
        yield
    finally:
        if acquired:
            with contextlib.suppress(OSError):
                os.unlink(lock_path)


@contextlib.contextmanager
def _file_lock(path: str):
    """Exclusive advisory lock serializing writers of ``path``.

    ``flock`` where available; elsewhere the lock-file fallback above (with
    a one-time warning).  Every writer path — append, stale rewrite and
    ``gc`` compaction — takes this same lock, so maintenance can never race
    an append's view of the file or another rewrite's atomic rename.
    """
    lock_path = path + ".lock"
    if _fcntl is None:  # non-POSIX platform
        _warn_lock_fallback("fcntl unavailable on this platform")
        with _lockfile_lock(lock_path):
            yield
        return
    with open(lock_path, "a", encoding="utf-8") as handle:
        _fcntl.flock(handle, _fcntl.LOCK_EX)
        try:
            yield
        finally:
            _fcntl.flock(handle, _fcntl.LOCK_UN)


#: Every live store, so an interrupt handler (the CLI's SIGINT/SIGTERM
#: path, the daemon's graceful shutdown) can flush buffered deltas that
#: would otherwise die with the process.
_OPEN_STORES: "weakref.WeakSet[VerdictStore]" = weakref.WeakSet()


def flush_open_stores() -> int:
    """Best-effort flush of every live store's buffered records.

    Returns the number of records written.  Exceptions are swallowed per
    store: this runs on interrupt paths where one broken store must not
    keep another store's delta from reaching disk.
    """
    written = 0
    for store in list(_OPEN_STORES):
        with contextlib.suppress(Exception):
            written += store.flush()
    return written


class VerdictStore:
    """Durable, content-addressed store of verdicts, tests and memos."""

    def __init__(self, path, semantics: str = SEMANTICS_VERSION):
        self.path = str(path)
        self.semantics = semantics
        #: source digest → full encoded-then-decoded content key.
        self._sources: Dict[str, Tuple] = {}
        #: digests whose declarations ever disagreed (never served).
        self._collided: set = set()
        self._verdicts: Dict[str, Dict[Tuple, EquivalenceResult]] = {}
        self._tests: Dict[str, List[ProgramInput]] = {}
        self._test_keys: Dict[str, set] = {}
        #: (strict_alignment, content key) → analysis outcome.
        self._analysis: Dict[Tuple, AnalysisOutcome] = {}
        #: job key → (generation, payload): the latest resumable-search
        #: checkpoint per job (see :meth:`record_checkpoint`).
        self._checkpoints: Dict[str, Tuple[int, dict]] = {}
        self._pending: List[str] = []
        self.records_loaded = 0
        self.corrupt_records = 0
        self.skipped_records = 0
        #: Header missing/mismatched: the file reads as empty and the next
        #: flush (or ``gc``) rewrites it under the current stamps.
        self.stale = False
        self.load()
        _OPEN_STORES.add(self)

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def load(self) -> None:
        """(Re)read the backing file, tolerating corruption and staleness."""
        self._sources.clear()
        self._collided.clear()
        self._verdicts.clear()
        self._tests.clear()
        self._test_keys.clear()
        self._analysis.clear()
        self._checkpoints.clear()
        self.records_loaded = 0
        self.corrupt_records = 0
        self.skipped_records = 0
        self.stale = False
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines or not self._header_ok(lines[0]):
            self.stale = True
            return
        for line in lines[1:]:
            if not line.strip():
                continue
            self._load_record(line)

    def _header_ok(self, line: str) -> bool:
        try:
            header = json.loads(line)
        except (ValueError, TypeError):
            return False
        return (isinstance(header, dict)
                and header.get("k2store") == STORE_FORMAT
                and header.get("semantics") == self.semantics)

    def _load_record(self, line: str) -> None:
        try:
            record = json.loads(line)
            if not isinstance(record, dict) \
                    or record.get("c") != record_checksum(record):
                raise ValueError("bad checksum")
            kind = record.get("t")
            if kind == "src":
                self._load_source(record)
            elif kind == "eq":
                self._load_verdict(record)
            elif kind == "cex":
                self._load_counterexample(record)
            elif kind == "an":
                self._load_analysis(record)
            elif kind == "ck":
                self._load_checkpoint(record)
            else:
                # Forward compatibility: a checksum-valid record of an
                # unknown kind was written by newer code — skip it quietly.
                self.skipped_records += 1
                return
        except (ValueError, TypeError, KeyError):
            self.corrupt_records += 1
            return
        self.records_loaded += 1

    def _load_source(self, record: dict) -> None:
        digest = record["id"]
        if source_digest(record["key"]) != digest:
            raise ValueError("source digest mismatch")
        key = decode_key(record["key"])
        known = self._sources.get(digest)
        if known is not None and known != key:
            # Two distinct programs claim one digest: serve neither.
            self._collided.add(digest)
            self._sources.pop(digest, None)
            self._verdicts.pop(digest, None)
            self._tests.pop(digest, None)
            self._test_keys.pop(digest, None)
            return
        if digest not in self._collided:
            self._sources[digest] = key

    def _load_verdict(self, record: dict) -> None:
        digest = record["src"]
        if digest in self._collided:
            return
        result = decode_result(record["r"])
        if result.unknown:
            raise ValueError("unknown verdicts are never persisted")
        self._verdicts.setdefault(digest, {})[decode_key(record["key"])] = result

    def _load_counterexample(self, record: dict) -> None:
        digest = record["src"]
        if digest in self._collided:
            return
        test = decode_test(record["test"])
        keys = self._test_keys.setdefault(digest, set())
        frozen = test.freeze_key()
        if frozen not in keys:
            keys.add(frozen)
            self._tests.setdefault(digest, []).append(test)

    def _load_analysis(self, record: dict) -> None:
        key = (bool(record["strict"]), decode_key(record["key"]))
        self._analysis[key] = decode_outcome(record["r"])

    def _load_checkpoint(self, record: dict) -> None:
        job = str(record["job"])
        if record.get("clear"):
            self._checkpoints.pop(job, None)
            return
        generation = int(record["gen"])
        payload = record["p"]
        if not isinstance(payload, dict):
            raise ValueError("checkpoint payload must be a mapping")
        known = self._checkpoints.get(job)
        # The log is append-only, so later records supersede earlier ones;
        # keep the highest generation as a belt (re-ordered gc output).
        if known is None or generation >= known[0]:
            self._checkpoints[job] = (generation, payload)

    # ------------------------------------------------------------------ #
    # Read API (keyed on exact program content — never on digests alone)
    # ------------------------------------------------------------------ #
    def _digest_for(self, source: BpfProgram) -> str:
        return source_digest(encode_key(source.content_key()))

    def verdicts_for(self, source: BpfProgram
                     ) -> Dict[Tuple, EquivalenceResult]:
        """Every persisted verdict against ``source`` (canonical key → result)."""
        digest = self._digest_for(source)
        if self._sources.get(digest) != source.content_key():
            return {}
        return dict(self._verdicts.get(digest, {}))

    def counterexamples_for(self, source: BpfProgram) -> List[ProgramInput]:
        """Distinguishing inputs discovered against ``source``, oldest first."""
        digest = self._digest_for(source)
        if self._sources.get(digest) != source.content_key():
            return []
        return list(self._tests.get(digest, []))

    def analysis_entries(self, strict_alignment: bool = True
                         ) -> Dict[Tuple, AnalysisOutcome]:
        """Persisted analyzer program memos (content key → outcome)."""
        return {key: outcome
                for (strict, key), outcome in self._analysis.items()
                if strict == strict_alignment}

    # ------------------------------------------------------------------ #
    # Write API (buffered; nothing reaches disk until flush())
    # ------------------------------------------------------------------ #
    def _queue(self, record: dict) -> None:
        record["c"] = record_checksum(record)
        self._pending.append(json.dumps(record, sort_keys=True,
                                        separators=(",", ":")) + "\n")

    def _declare_source(self, source: BpfProgram) -> Optional[str]:
        digest = self._digest_for(source)
        if digest in self._collided:
            return None
        key = source.content_key()
        known = self._sources.get(digest)
        if known is None:
            self._sources[digest] = key
            self._queue({"t": "src", "id": digest,
                         "key": encode_key(key)})
        elif known != key:
            return None
        return digest

    def record_verdict(self, source: BpfProgram, key: Tuple,
                       result: EquivalenceResult) -> bool:
        """Persist one conclusive verdict; returns True when newly adopted."""
        if result.unknown:
            return False
        digest = self._declare_source(source)
        if digest is None:
            return False
        verdicts = self._verdicts.setdefault(digest, {})
        if key in verdicts:
            return False
        verdicts[key] = result
        self._queue({"t": "eq", "src": digest, "key": encode_key(key),
                     "r": encode_result(result)})
        return True

    def record_counterexample(self, source: BpfProgram,
                              test: ProgramInput) -> bool:
        digest = self._declare_source(source)
        if digest is None:
            return False
        keys = self._test_keys.setdefault(digest, set())
        frozen = test.freeze_key()
        if frozen in keys:
            return False
        keys.add(frozen)
        self._tests.setdefault(digest, []).append(test)
        self._queue({"t": "cex", "src": digest, "test": encode_test(test)})
        return True

    def record_analysis(self, content_key: Tuple, outcome: AnalysisOutcome,
                        strict_alignment: bool = True) -> bool:
        key = (bool(strict_alignment), content_key)
        if key in self._analysis:
            return False
        self._analysis[key] = outcome
        self._queue({"t": "an", "strict": bool(strict_alignment),
                     "key": encode_key(content_key),
                     "r": encode_outcome(outcome)})
        return True

    # ------------------------------------------------------------------ #
    # Search checkpoints (crash-recoverable chains; repro.service)
    # ------------------------------------------------------------------ #
    def record_checkpoint(self, job: str, generation: int,
                          payload: dict) -> None:
        """Persist the latest resumable-search checkpoint for ``job``.

        ``payload`` must be plain JSON data (the checkpoint codec in
        :mod:`repro.synthesis.checkpoint` produces it).  Unlike verdicts,
        checkpoints *replace*: only the newest generation per job is served
        (the append-only log keeps history until ``gc`` compacts it).
        """
        self._checkpoints[str(job)] = (int(generation), payload)
        self._queue({"t": "ck", "job": str(job), "gen": int(generation),
                     "p": payload})

    def clear_checkpoint(self, job: str) -> bool:
        """Drop ``job``'s checkpoint (the job completed or was cancelled)."""
        if str(job) not in self._checkpoints:
            return False
        self._checkpoints.pop(str(job), None)
        self._queue({"t": "ck", "job": str(job), "clear": 1})
        return True

    def checkpoint_for(self, job: str) -> Optional[Tuple[int, dict]]:
        """The newest ``(generation, payload)`` checkpoint for ``job``."""
        return self._checkpoints.get(str(job))

    def checkpoint_jobs(self) -> List[str]:
        """Jobs with a live checkpoint (in-flight when last persisted)."""
        return sorted(self._checkpoints)

    # ------------------------------------------------------------------ #
    def flush(self) -> int:
        """Write buffered records to disk; returns the number written.

        Appends under the writer lock when the file is healthy; rewrites
        the whole file atomically when it is missing or stale (wrong or
        corrupt header / old semantics stamp).
        """
        if not self._pending and not self.stale:
            return 0
        written = len(self._pending)
        with _file_lock(self.path):
            # A missing or stale file is normally healed by an atomic full
            # rewrite — but only after re-probing the header *under the
            # lock*: a second writer that loaded the same stale file may
            # have already rewritten it, and rewriting again from our
            # (stale-empty) in-memory state would drop its records.  When
            # another writer healed the file first, downgrade to an append
            # of just our pending records.
            if (self.stale or not os.path.exists(self.path)) \
                    and not self._disk_header_ok():
                self._rewrite_locked()
            elif self._pending:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write("".join(self._pending))
                    handle.flush()
                    os.fsync(handle.fileno())
        self._pending = []
        self.stale = False
        return written

    def _disk_header_ok(self) -> bool:
        """Whether the on-disk file currently has a valid header.

        Re-probed under the writer lock before a stale rewrite; distinct
        from ``self.stale``, which reflects the file as of our last
        :meth:`load`.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                return self._header_ok(handle.readline().rstrip("\n"))
        except OSError:
            return False

    def _snapshot_lines(self) -> List[str]:
        """Header + every in-memory record, in a deterministic order."""
        lines = [json.dumps({"k2store": STORE_FORMAT,
                             "semantics": self.semantics},
                            sort_keys=True, separators=(",", ":")) + "\n"]

        def emit(record: dict) -> None:
            record["c"] = record_checksum(record)
            lines.append(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")

        for digest in sorted(self._sources):
            emit({"t": "src", "id": digest,
                  "key": encode_key(self._sources[digest])})
            for key, result in self._verdicts.get(digest, {}).items():
                emit({"t": "eq", "src": digest, "key": encode_key(key),
                      "r": encode_result(result)})
            for test in self._tests.get(digest, []):
                emit({"t": "cex", "src": digest, "test": encode_test(test)})
        for strict, key in sorted(self._analysis,
                                  key=lambda k: (k[0], repr(k[1]))):
            emit({"t": "an", "strict": strict, "key": encode_key(key),
                  "r": encode_outcome(self._analysis[(strict, key)])})
        # Only the newest checkpoint per job survives a rewrite — this is
        # how gc sheds superseded per-generation checkpoint history.
        for job in sorted(self._checkpoints):
            generation, payload = self._checkpoints[job]
            emit({"t": "ck", "job": job, "gen": generation, "p": payload})
        return lines

    def _rewrite_locked(self) -> None:
        """Atomically replace the file with a clean full snapshot."""
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write("".join(self._snapshot_lines()))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)

    # ------------------------------------------------------------------ #
    # Maintenance (the `k2 store` subcommand)
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        num_verdicts = sum(len(v) for v in self._verdicts.values())
        num_tests = sum(len(t) for t in self._tests.values())
        equivalent = sum(1 for verdicts in self._verdicts.values()
                         for result in verdicts.values() if result.equivalent)
        return {
            "path": self.path,
            "format": STORE_FORMAT,
            "semantics": self.semantics,
            "size_bytes": os.path.getsize(self.path)
            if os.path.exists(self.path) else 0,
            "sources": len(self._sources),
            "verdicts": num_verdicts,
            "verdicts_equivalent": equivalent,
            "verdicts_inequivalent": num_verdicts - equivalent,
            "counterexamples": num_tests,
            "analysis_memos": len(self._analysis),
            "checkpoints": len(self._checkpoints),
            "corrupt_records": self.corrupt_records,
            "stale": self.stale,
            "pending": len(self._pending),
        }

    def gc(self) -> Dict[str, int]:
        """Compact the file: drop corrupt/stale/duplicate records, rewrite.

        Returns how many records were kept and how many lines the rewrite
        shed (corrupt lines, superseded duplicates, foreign-version bulk).
        """
        before = 0
        if os.path.exists(self.path):
            with open(self.path, "r", encoding="utf-8") as handle:
                before = sum(1 for line in handle if line.strip())
        with _file_lock(self.path):
            self._rewrite_locked()
        self._pending = []
        self.stale = False
        after = len(self._snapshot_lines())
        return {"lines_before": before, "lines_after": after,
                "dropped": max(before - after, 0),
                "corrupt_dropped": self.corrupt_records}

    def verify(self) -> Dict[str, object]:
        """Integrity scan of the backing file (no mutation).

        Re-reads the file from disk and reports checksum failures, header
        problems and record counts; ``ok`` is True only for a fully
        healthy, current-semantics file (a missing file is healthy: empty).
        """
        report = {"path": self.path, "exists": os.path.exists(self.path),
                  "header_ok": True, "records": 0, "corrupt": 0,
                  "skipped": 0, "ok": True}
        if not report["exists"]:
            return report
        probe = VerdictStore(self.path, semantics=self.semantics)
        report["header_ok"] = not probe.stale
        report["records"] = probe.records_loaded
        report["corrupt"] = probe.corrupt_records
        report["skipped"] = probe.skipped_records
        report["ok"] = report["header_ok"] and probe.corrupt_records == 0
        return report
