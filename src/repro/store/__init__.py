"""Durable content-addressed persistence of verdicts, tests and memos."""

from .serialize import (
    canonical_json, decode_key, decode_outcome, decode_result, decode_test,
    encode_key, encode_outcome, encode_result, encode_test, record_checksum,
    source_digest,
)
from .store import (
    SEMANTICS_VERSION, STORE_FORMAT, VerdictStore, flush_open_stores,
)

__all__ = ["SEMANTICS_VERSION", "STORE_FORMAT", "VerdictStore",
           "flush_open_stores",
           "canonical_json", "record_checksum", "source_digest",
           "encode_key", "decode_key",
           "encode_test", "decode_test",
           "encode_result", "decode_result",
           "encode_outcome", "decode_outcome"]
