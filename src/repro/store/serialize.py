"""Pickle-free stable serialization for the durable verdict store.

Every value the store persists — cache keys, :class:`EquivalenceResult`
verdicts (including their counterexample test cases),
:class:`AnalysisOutcome` safety memos — round-trips through plain JSON
types: nested lists of ints and strings, with ``bytes`` hex-encoded.  The
encoding is *stable*: encoding the same value always produces the same JSON
text (``canonical_json``), which is what makes per-record checksums and
content digests meaningful across runs, machines and Python versions.

Pickle is deliberately not used: a store file may be written by one version
of the code and read by another, and a verdict store shared between many
submissions must never execute arbitrary payloads on load.
"""

from __future__ import annotations

import hashlib
import json

from ..analysis.analyzer import AnalysisOutcome
from ..analysis.verdicts import SafetyViolation, SafetyViolationKind
from ..equivalence.checker import EquivalenceResult
from ..interpreter import ProgramInput

__all__ = ["canonical_json", "record_checksum", "source_digest",
           "encode_key", "decode_key",
           "encode_test", "decode_test",
           "encode_result", "decode_result",
           "encode_outcome", "decode_outcome"]


def canonical_json(value) -> str:
    """Deterministic JSON text for ``value`` (sorted keys, no whitespace)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def record_checksum(record: dict) -> str:
    """Checksum of a store record, excluding its own ``"c"`` field."""
    body = {field: value for field, value in record.items() if field != "c"}
    digest = hashlib.blake2b(canonical_json(body).encode("utf-8"),
                             digest_size=8)
    return digest.hexdigest()


def source_digest(encoded_key: list) -> str:
    """Compact content address for a source program's encoded content key.

    Verdict and counterexample records reference their source program by
    this digest instead of repeating the full content key per record; the
    store keeps the digest → full-key mapping (one ``src`` record per
    source) and refuses a digest whose declared keys ever disagree, so a
    (cryptographically unlikely) collision degrades to a cold cache rather
    than a wrong verdict.
    """
    digest = hashlib.blake2b(canonical_json(encoded_key).encode("utf-8"),
                             digest_size=16)
    return digest.hexdigest()


# --------------------------------------------------------------------------- #
# Keys: arbitrarily nested tuples of ints / strings / None (structural keys,
# canonical cache keys, program content keys).  ``True``/``False`` are
# normalized to 1/0 — in the original tuples they are already compared as
# ints, and JSON round-tripping must not split one key into two.
# --------------------------------------------------------------------------- #
def encode_key(key):
    if isinstance(key, tuple):
        return [encode_key(part) for part in key]
    if isinstance(key, bool):
        return int(key)
    if key is None or isinstance(key, (int, str)):
        return key
    raise TypeError(f"unsupported key element {type(key).__name__}")


def decode_key(encoded):
    if isinstance(encoded, list):
        return tuple(decode_key(part) for part in encoded)
    if encoded is None or isinstance(encoded, (int, str)):
        return encoded
    raise ValueError(f"bad key element {type(encoded).__name__}")


# --------------------------------------------------------------------------- #
# Test cases (counterexamples embedded in verdicts and pool records).
# --------------------------------------------------------------------------- #
def encode_test(test: ProgramInput) -> dict:
    return {
        "packet": test.packet.hex(),
        "ctx": sorted([name, int(value)] for name, value in test.ctx.items()),
        "maps": sorted(
            [fd, sorted([key.hex(), value.hex()]
                        for key, value in entries.items())]
            for fd, entries in test.map_contents.items()),
        "random": [int(v) for v in test.random_values],
        "time_ns": int(test.time_ns),
        "cpu": int(test.cpu_id),
    }


def decode_test(encoded: dict) -> ProgramInput:
    return ProgramInput(
        packet=bytes.fromhex(encoded["packet"]),
        ctx={name: int(value) for name, value in encoded["ctx"]},
        map_contents={
            int(fd): {bytes.fromhex(key): bytes.fromhex(value)
                      for key, value in entries}
            for fd, entries in encoded["maps"]},
        random_values=[int(v) for v in encoded["random"]],
        time_ns=int(encoded["time_ns"]),
        cpu_id=int(encoded["cpu"]),
    )


# --------------------------------------------------------------------------- #
# Equivalence verdicts.
# --------------------------------------------------------------------------- #
def encode_result(result: EquivalenceResult) -> dict:
    return {
        "eq": bool(result.equivalent),
        "unk": bool(result.unknown),
        "us": bool(result.used_solver),
        "reason": result.reason,
        "cex": None if result.counterexample is None
        else encode_test(result.counterexample),
    }


def decode_result(encoded: dict) -> EquivalenceResult:
    return EquivalenceResult(
        equivalent=bool(encoded["eq"]),
        unknown=bool(encoded["unk"]),
        used_solver=bool(encoded["us"]),
        reason=str(encoded["reason"]),
        counterexample=None if encoded["cex"] is None
        else decode_test(encoded["cex"]),
    )


# --------------------------------------------------------------------------- #
# Analysis memos.
# --------------------------------------------------------------------------- #
def encode_outcome(outcome: AnalysisOutcome) -> dict:
    return {"v": [[violation.kind.value, violation.insn_index,
                   violation.message]
                  for violation in outcome.violations]}


def decode_outcome(encoded: dict) -> AnalysisOutcome:
    violations = tuple(
        SafetyViolation(SafetyViolationKind(kind),
                        None if index is None else int(index), str(message))
        for kind, index, message in encoded["v"])
    return AnalysisOutcome(violations)
