"""Tseitin bit-blasting of bit-vector expressions to CNF.

Every bit-vector expression is translated into a list of CNF literals (least
significant bit first); boolean expressions translate into a single literal.
The translation is the classic one: ripple-carry adders, shift-and-add
multipliers, restoring division, barrel shifters and comparator chains, each
encoded with Tseitin auxiliary variables.
"""

from __future__ import annotations

from typing import Dict, List, Union

from .bitvec import Expr
from .cnf import CNF

__all__ = ["BitBlaster"]

Lits = List[int]


class BitBlaster:
    """Translate expressions into clauses over a shared :class:`CNF`."""

    def __init__(self, cnf: CNF):
        self.cnf = cnf
        self._cache: Dict[Expr, Union[Lits, int]] = {}
        self.var_bits: Dict[str, Lits] = {}
        self.bool_vars: Dict[str, int] = {}
        self._true = cnf.new_var()
        cnf.add_clause([self._true])

    # ------------------------------------------------------------------ #
    # Primitive gates
    # ------------------------------------------------------------------ #
    @property
    def true_lit(self) -> int:
        return self._true

    @property
    def false_lit(self) -> int:
        return -self._true

    def _const_lit(self, value: bool) -> int:
        return self._true if value else -self._true

    def _gate_and(self, a: int, b: int) -> int:
        out = self.cnf.new_var()
        self.cnf.add_clause([-a, -b, out])
        self.cnf.add_clause([a, -out])
        self.cnf.add_clause([b, -out])
        return out

    def _gate_or(self, a: int, b: int) -> int:
        out = self.cnf.new_var()
        self.cnf.add_clause([a, b, -out])
        self.cnf.add_clause([-a, out])
        self.cnf.add_clause([-b, out])
        return out

    def _gate_xor(self, a: int, b: int) -> int:
        out = self.cnf.new_var()
        self.cnf.add_clause([-a, -b, -out])
        self.cnf.add_clause([a, b, -out])
        self.cnf.add_clause([a, -b, out])
        self.cnf.add_clause([-a, b, out])
        return out

    def _gate_mux(self, cond: int, then: int, otherwise: int) -> int:
        """out = cond ? then : otherwise."""
        out = self.cnf.new_var()
        self.cnf.add_clause([-cond, -then, out])
        self.cnf.add_clause([-cond, then, -out])
        self.cnf.add_clause([cond, -otherwise, out])
        self.cnf.add_clause([cond, otherwise, -out])
        return out

    def _gate_and_many(self, lits: Lits) -> int:
        if not lits:
            return self._true
        if len(lits) == 1:
            return lits[0]
        out = self.cnf.new_var()
        for lit in lits:
            self.cnf.add_clause([lit, -out])
        self.cnf.add_clause([-lit for lit in lits] + [out])
        return out

    def _gate_or_many(self, lits: Lits) -> int:
        if not lits:
            return -self._true
        if len(lits) == 1:
            return lits[0]
        out = self.cnf.new_var()
        for lit in lits:
            self.cnf.add_clause([-lit, out])
        self.cnf.add_clause(list(lits) + [-out])
        return out

    # ------------------------------------------------------------------ #
    # Word-level circuits
    # ------------------------------------------------------------------ #
    def _adder(self, a: Lits, b: Lits, carry_in: int) -> tuple[Lits, int]:
        """Ripple-carry addition; returns (sum bits, carry out)."""
        result = []
        carry = carry_in
        for bit_a, bit_b in zip(a, b):
            axb = self._gate_xor(bit_a, bit_b)
            result.append(self._gate_xor(axb, carry))
            carry = self._gate_or(self._gate_and(bit_a, bit_b),
                                  self._gate_and(axb, carry))
        return result, carry

    def _negate_bits(self, a: Lits) -> Lits:
        return [-bit for bit in a]

    def _subtract(self, a: Lits, b: Lits) -> tuple[Lits, int]:
        """a - b; the returned carry-out is 1 iff a >= b (no borrow)."""
        return self._adder(a, self._negate_bits(b), self._true)

    def _unsigned_less_than(self, a: Lits, b: Lits) -> int:
        """Lexicographic comparator: a < b unsigned.

        Encoded most-significant-bit first with a chain of "prefix equal so
        far" variables; this propagates better in the CDCL solver than the
        borrow-chain encoding.
        """
        less = self.false_lit
        for bit_a, bit_b in zip(a, b):  # LSB first: fold from the bottom up
            bit_lt = self._gate_and(-bit_a, bit_b)
            bit_eq = -self._gate_xor(bit_a, bit_b)
            less = self._gate_or(bit_lt, self._gate_and(bit_eq, less))
        return less

    def _equal(self, a: Lits, b: Lits) -> int:
        xnors = [-self._gate_xor(x, y) for x, y in zip(a, b)]
        return self._gate_and_many(xnors)

    def _mux_word(self, cond: int, then: Lits, otherwise: Lits) -> Lits:
        return [self._gate_mux(cond, t, o) for t, o in zip(then, otherwise)]

    def _shift_left_const(self, a: Lits, amount: int) -> Lits:
        width = len(a)
        return [self.false_lit] * min(amount, width) + a[:max(width - amount, 0)]

    def _shift_right_const(self, a: Lits, amount: int, fill: int) -> Lits:
        width = len(a)
        if amount >= width:
            return [fill] * width
        return a[amount:] + [fill] * amount

    def _barrel_shift(self, a: Lits, shamt: Lits, direction: str) -> Lits:
        """Variable shift via a logarithmic barrel shifter.

        Semantics follow SMT-LIB: shifting by >= width yields zero (or the
        sign fill for arithmetic right shifts).  The symbolic executor masks
        BPF shift amounts before calling this, so the overflow path is only a
        safety net.
        """
        width = len(a)
        fill = a[-1] if direction == "ashr" else self.false_lit
        stages = max(1, (width - 1).bit_length())
        result = list(a)
        for stage in range(stages):
            amount = 1 << stage
            if direction == "shl":
                shifted = self._shift_left_const(result, amount)
            else:
                shifted = self._shift_right_const(result, amount, fill)
            result = self._mux_word(shamt[stage], shifted, result)
        overflow = self._gate_or_many(shamt[stages:]) if len(shamt) > stages \
            else self.false_lit
        return self._mux_word(overflow, [fill] * width, result)

    def _multiplier(self, a: Lits, b: Lits) -> Lits:
        width = len(a)
        accumulator = [self.false_lit] * width
        for index in range(width):
            shifted = self._shift_left_const(a, index)
            added, _ = self._adder(accumulator, shifted, self.false_lit)
            accumulator = self._mux_word(b[index], added, accumulator)
        return accumulator

    def _divider(self, a: Lits, b: Lits) -> tuple[Lits, Lits]:
        """Restoring division; returns (quotient, remainder).

        The caller wraps the results with the BPF divide-by-zero semantics.
        """
        width = len(a)
        remainder = [self.false_lit] * width
        quotient = [self.false_lit] * width
        for index in range(width - 1, -1, -1):
            remainder = [a[index]] + remainder[:-1]
            difference, no_borrow = self._subtract(remainder, b)
            remainder = self._mux_word(no_borrow, difference, remainder)
            quotient[index] = no_borrow
        return quotient, remainder

    # ------------------------------------------------------------------ #
    # Expression translation
    # ------------------------------------------------------------------ #
    def blast_bv(self, expr: Expr) -> Lits:
        """Translate a bit-vector expression, returning its bit literals."""
        cached = self._cache.get(expr)
        if cached is not None:
            return cached  # type: ignore[return-value]
        op = expr.op
        if op == "bvconst":
            bits = [self._const_lit(bool((expr.value >> i) & 1))
                    for i in range(expr.width)]
        elif op == "bvvar":
            bits = self.var_bits.get(expr.name)
            if bits is None:
                bits = [self.cnf.new_var() for _ in range(expr.width)]
                self.var_bits[expr.name] = bits
        elif op == "bvadd":
            bits, _ = self._adder(self.blast_bv(expr.args[0]),
                                  self.blast_bv(expr.args[1]), self.false_lit)
        elif op == "bvsub":
            bits, _ = self._subtract(self.blast_bv(expr.args[0]),
                                     self.blast_bv(expr.args[1]))
        elif op == "bvmul":
            bits = self._multiplier(self.blast_bv(expr.args[0]),
                                    self.blast_bv(expr.args[1]))
        elif op in ("bvudiv", "bvurem"):
            a = self.blast_bv(expr.args[0])
            b = self.blast_bv(expr.args[1])
            quotient, remainder = self._divider(a, b)
            divisor_is_zero = self._equal(b, [self.false_lit] * len(b))
            if op == "bvudiv":
                # BPF: x / 0 == 0.
                bits = self._mux_word(divisor_is_zero,
                                      [self.false_lit] * len(a), quotient)
            else:
                # BPF: x % 0 == x.
                bits = self._mux_word(divisor_is_zero, a, remainder)
        elif op == "bvand":
            bits = [self._gate_and(x, y)
                    for x, y in zip(self.blast_bv(expr.args[0]),
                                    self.blast_bv(expr.args[1]))]
        elif op == "bvor":
            bits = [self._gate_or(x, y)
                    for x, y in zip(self.blast_bv(expr.args[0]),
                                    self.blast_bv(expr.args[1]))]
        elif op == "bvxor":
            bits = [self._gate_xor(x, y)
                    for x, y in zip(self.blast_bv(expr.args[0]),
                                    self.blast_bv(expr.args[1]))]
        elif op == "bvnot":
            bits = self._negate_bits(self.blast_bv(expr.args[0]))
        elif op in ("bvshl", "bvlshr", "bvashr"):
            a = self.blast_bv(expr.args[0])
            shamt_expr = expr.args[1]
            direction = {"bvshl": "shl", "bvlshr": "lshr", "bvashr": "ashr"}[op]
            if shamt_expr.op == "bvconst":
                amount = shamt_expr.value
                if direction == "shl":
                    bits = self._shift_left_const(a, min(amount, len(a)))
                else:
                    fill = a[-1] if direction == "ashr" else self.false_lit
                    bits = self._shift_right_const(a, min(amount, len(a)), fill)
            else:
                bits = self._barrel_shift(a, self.blast_bv(shamt_expr), direction)
        elif op == "bvconcat":
            high, low = expr.args
            bits = self.blast_bv(low) + self.blast_bv(high)
        elif op == "bvextract":
            hi = expr.value >> 16
            lo = expr.value & 0xFFFF
            bits = self.blast_bv(expr.args[0])[lo:hi + 1]
        elif op == "bvzext":
            inner = self.blast_bv(expr.args[0])
            bits = inner + [self.false_lit] * (expr.width - len(inner))
        elif op == "bvsext":
            inner = self.blast_bv(expr.args[0])
            bits = inner + [inner[-1]] * (expr.width - len(inner))
        elif op == "bvite":
            cond = self.blast_bool(expr.args[0])
            bits = self._mux_word(cond, self.blast_bv(expr.args[1]),
                                  self.blast_bv(expr.args[2]))
        else:
            raise ValueError(f"cannot bit-blast bit-vector op {op!r}")
        if len(bits) != expr.width:
            raise AssertionError(
                f"blasted width {len(bits)} != expression width {expr.width} for {op}")
        self._cache[expr] = bits
        return bits

    def blast_bool(self, expr: Expr) -> int:
        """Translate a boolean expression, returning a single literal."""
        cached = self._cache.get(expr)
        if cached is not None:
            return cached  # type: ignore[return-value]
        op = expr.op
        if op == "boolconst":
            lit = self._const_lit(bool(expr.value))
        elif op == "boolvar":
            lit = self.bool_vars.get(expr.name)
            if lit is None:
                lit = self.cnf.new_var()
                self.bool_vars[expr.name] = lit
        elif op == "boolnot":
            lit = -self.blast_bool(expr.args[0])
        elif op == "booland":
            lit = self._gate_and_many([self.blast_bool(arg) for arg in expr.args])
        elif op == "boolor":
            lit = self._gate_or_many([self.blast_bool(arg) for arg in expr.args])
        elif op == "boolxor":
            lit = self._gate_xor(self.blast_bool(expr.args[0]),
                                 self.blast_bool(expr.args[1]))
        elif op == "bveq":
            lit = self._equal(self.blast_bv(expr.args[0]),
                              self.blast_bv(expr.args[1]))
        elif op == "bvult":
            lit = self._unsigned_less_than(self.blast_bv(expr.args[0]),
                                           self.blast_bv(expr.args[1]))
        elif op == "bvule":
            lit = -self._unsigned_less_than(self.blast_bv(expr.args[1]),
                                            self.blast_bv(expr.args[0]))
        elif op in ("bvslt", "bvsle"):
            a = self.blast_bv(expr.args[0])
            b = self.blast_bv(expr.args[1])
            a_sign, b_sign = a[-1], b[-1]
            if op == "bvslt":
                unsigned = self._unsigned_less_than(a, b)
            else:
                unsigned = -self._unsigned_less_than(b, a)
            signs_differ = self._gate_xor(a_sign, b_sign)
            # If the signs differ, a < b iff a is negative.
            lit = self._gate_mux(signs_differ, a_sign, unsigned)
        else:
            raise ValueError(f"cannot bit-blast boolean op {op!r}")
        self._cache[expr] = lit
        return lit

    # ------------------------------------------------------------------ #
    def assert_expr(self, expr: Expr) -> None:
        """Assert a boolean expression (add it as a unit constraint)."""
        self.cnf.add_clause([self.blast_bool(expr)])

    def extract_value(self, name: str, model: Dict[int, bool]) -> int:
        """Read back the value of a bit-vector variable from a SAT model."""
        bits = self.var_bits.get(name)
        if bits is None:
            return 0
        value = 0
        for index, lit in enumerate(bits):
            assigned = model.get(abs(lit), False)
            bit = assigned if lit > 0 else not assigned
            if bit:
                value |= 1 << index
        return value
