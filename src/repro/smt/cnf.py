"""CNF formula container used between the bit-blaster and the SAT solver.

Literals use the DIMACS convention: variables are positive integers, a
negative integer denotes the negation of the corresponding variable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["CNF"]


class CNF:
    """A clause database plus a variable allocator."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[List[int]] = []

    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: Sequence[int]) -> None:
        """Add one clause (a disjunction of literals)."""
        clause = []
        seen = set()
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            if abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} references an unallocated variable")
            if -lit in seen:
                return  # tautology, skip
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def __len__(self) -> int:
        return len(self.clauses)

    def to_dimacs(self) -> str:
        """Render the formula in DIMACS format (useful for debugging)."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(map(str, clause)) + " 0")
        return "\n".join(lines)
