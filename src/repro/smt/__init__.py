"""A from-scratch QF_BV decision procedure (the reproduction's Z3 substitute)."""

from .bitvec import (
    Expr, TRUE, FALSE,
    bv_const, bv_var, bool_const, bool_var,
    bv_add, bv_sub, bv_mul, bv_udiv, bv_urem, bv_neg,
    bv_and, bv_or, bv_xor, bv_not,
    bv_shl, bv_lshr, bv_ashr,
    bv_concat, bv_extract, bv_zero_extend, bv_sign_extend,
    bv_ite, bv_eq, bv_ne, bv_ult, bv_ule, bv_ugt, bv_uge,
    bv_slt, bv_sle, bv_sgt, bv_sge,
    bool_and, bool_or, bool_not, bool_implies, bool_ite, bool_xor,
)
from .simplify import evaluate, substitute, collect_vars
from .cnf import CNF
from .sat import IncrementalSatSolver, SatSolver, SatResult, solve_cnf
from .bitblast import BitBlaster
from .solver import Solver, CheckResult, Model, SolverStats

__all__ = [name for name in dir() if not name.startswith("_")]
