"""Bit-vector and boolean expression DAG.

This is the reproduction's stand-in for Z3's expression layer (paper §7 uses
Z3 as the internal logic solver).  Expressions are immutable, hash-consed and
eagerly simplified at construction time: constant folding and the algebraic
identities below collapse most verification conditions produced for
structurally-similar candidate programs before the SAT solver is ever invoked.

Expression sorts:

* ``bv`` — fixed-width bit vectors (the theory of paper §4),
* ``bool`` — propositional connectives and bit-vector predicates.

Constructor functions (``bv_add``, ``bv_ult``, ``bool_and``...) are the public
API; the :class:`Expr` class also overloads the natural Python operators for
readability in the symbolic executor.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = [
    "Expr", "bv_const", "bv_var", "bool_const", "bool_var",
    "bv_add", "bv_sub", "bv_mul", "bv_udiv", "bv_urem", "bv_neg",
    "bv_and", "bv_or", "bv_xor", "bv_not",
    "bv_shl", "bv_lshr", "bv_ashr",
    "bv_concat", "bv_extract", "bv_zero_extend", "bv_sign_extend",
    "bv_ite", "bv_eq", "bv_ne", "bv_ult", "bv_ule", "bv_ugt", "bv_uge",
    "bv_slt", "bv_sle", "bv_sgt", "bv_sge",
    "bool_and", "bool_or", "bool_not", "bool_implies", "bool_ite", "bool_xor",
    "TRUE", "FALSE",
]

# ----------------------------------------------------------------------------- #
# Expression node
# ----------------------------------------------------------------------------- #
_INTERN: Dict[tuple, "Expr"] = {}


class Expr:
    """An immutable, interned expression node."""

    __slots__ = ("op", "args", "width", "value", "name", "_hash")

    def __init__(self, op: str, args: Tuple["Expr", ...] = (),
                 width: int = 0, value: Optional[int] = None,
                 name: Optional[str] = None):
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "width", width)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash",
                           hash((op, args, width, value, name)))

    # Interning ---------------------------------------------------------- #
    @staticmethod
    def make(op: str, args: Tuple["Expr", ...] = (), width: int = 0,
             value: Optional[int] = None, name: Optional[str] = None) -> "Expr":
        key = (op, args, width, value, name)
        cached = _INTERN.get(key)
        if cached is None:
            cached = Expr(op, args, width, value, name)
            _INTERN[key] = cached
        return cached

    def __setattr__(self, key, value):  # pragma: no cover - immutability guard
        raise AttributeError("Expr is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if not isinstance(other, Expr):
            return NotImplemented
        return (self.op == other.op and self.args == other.args
                and self.width == other.width and self.value == other.value
                and self.name == other.name)

    # Introspection -------------------------------------------------------- #
    @property
    def is_bool(self) -> bool:
        return self.width == 0

    @property
    def is_const(self) -> bool:
        return self.op in ("bvconst", "boolconst")

    @property
    def is_var(self) -> bool:
        return self.op in ("bvvar", "boolvar")

    def __repr__(self) -> str:
        if self.op == "bvconst":
            return f"bv{self.width}({self.value:#x})"
        if self.op == "boolconst":
            return "true" if self.value else "false"
        if self.is_var:
            return f"{self.name}:{self.width or 'bool'}"
        return f"({self.op} {' '.join(map(repr, self.args))})"

    # Operator sugar (bit vectors) ----------------------------------------- #
    def __add__(self, other):
        return bv_add(self, _coerce(other, self.width))

    def __sub__(self, other):
        return bv_sub(self, _coerce(other, self.width))

    def __mul__(self, other):
        return bv_mul(self, _coerce(other, self.width))

    def __and__(self, other):
        if self.is_bool:
            return bool_and(self, other)
        return bv_and(self, _coerce(other, self.width))

    def __or__(self, other):
        if self.is_bool:
            return bool_or(self, other)
        return bv_or(self, _coerce(other, self.width))

    def __xor__(self, other):
        if self.is_bool:
            return bool_xor(self, other)
        return bv_xor(self, _coerce(other, self.width))

    def __invert__(self):
        if self.is_bool:
            return bool_not(self)
        return bv_not(self)

    def __lshift__(self, other):
        return bv_shl(self, _coerce(other, self.width))

    def __rshift__(self, other):
        return bv_lshr(self, _coerce(other, self.width))

    def eq(self, other):
        return bv_eq(self, _coerce(other, self.width))

    def ne(self, other):
        return bv_ne(self, _coerce(other, self.width))


def _coerce(value, width: int) -> Expr:
    if isinstance(value, Expr):
        return value
    return bv_const(value, width)


def _mask(width: int) -> int:
    return (1 << width) - 1


# ----------------------------------------------------------------------------- #
# Leaves
# ----------------------------------------------------------------------------- #
def bv_const(value: int, width: int) -> Expr:
    """A bit-vector literal of the given width."""
    if width <= 0:
        raise ValueError("bit-vector width must be positive")
    return Expr.make("bvconst", width=width, value=value & _mask(width))


def bv_var(name: str, width: int) -> Expr:
    """A free bit-vector variable."""
    if width <= 0:
        raise ValueError("bit-vector width must be positive")
    return Expr.make("bvvar", width=width, name=name)


def bool_const(value: bool) -> Expr:
    return Expr.make("boolconst", value=1 if value else 0)


def bool_var(name: str) -> Expr:
    return Expr.make("boolvar", name=name)


TRUE = bool_const(True)
FALSE = bool_const(False)


# ----------------------------------------------------------------------------- #
# Bit-vector arithmetic
# ----------------------------------------------------------------------------- #
def _binop_const(a: Expr, b: Expr):
    if a.op == "bvconst" and b.op == "bvconst":
        return a.value, b.value
    return None


def bv_add(a: Expr, b: Expr) -> Expr:
    _check_same_width(a, b)
    consts = _binop_const(a, b)
    if consts is not None:
        return bv_const(consts[0] + consts[1], a.width)
    if b.op == "bvconst" and b.value == 0:
        return a
    if a.op == "bvconst" and a.value == 0:
        return b
    # Normalize constant to the right for better structural sharing.
    if a.op == "bvconst":
        a, b = b, a
    # (x + c1) + c2  ->  x + (c1 + c2)
    if b.op == "bvconst" and a.op == "bvadd" and a.args[1].op == "bvconst":
        return bv_add(a.args[0], bv_const(a.args[1].value + b.value, a.width))
    return Expr.make("bvadd", (a, b), width=a.width)


def bv_sub(a: Expr, b: Expr) -> Expr:
    _check_same_width(a, b)
    consts = _binop_const(a, b)
    if consts is not None:
        return bv_const(consts[0] - consts[1], a.width)
    if b.op == "bvconst" and b.value == 0:
        return a
    if a == b:
        return bv_const(0, a.width)
    if b.op == "bvconst":
        return bv_add(a, bv_const(-b.value, a.width))
    return Expr.make("bvsub", (a, b), width=a.width)


def bv_mul(a: Expr, b: Expr) -> Expr:
    _check_same_width(a, b)
    consts = _binop_const(a, b)
    if consts is not None:
        return bv_const(consts[0] * consts[1], a.width)
    if a.op == "bvconst":
        a, b = b, a
    if b.op == "bvconst":
        if b.value == 0:
            return bv_const(0, a.width)
        if b.value == 1:
            return a
        if b.value & (b.value - 1) == 0:  # power of two -> shift
            return bv_shl(a, bv_const(b.value.bit_length() - 1, a.width))
    return Expr.make("bvmul", (a, b), width=a.width)


def bv_udiv(a: Expr, b: Expr) -> Expr:
    _check_same_width(a, b)
    consts = _binop_const(a, b)
    if consts is not None:
        # BPF semantics: division by zero yields zero.
        return bv_const(0 if consts[1] == 0 else consts[0] // consts[1], a.width)
    if b.op == "bvconst" and b.value == 1:
        return a
    if b.op == "bvconst" and b.value != 0 and b.value & (b.value - 1) == 0:
        return bv_lshr(a, bv_const(b.value.bit_length() - 1, a.width))
    return Expr.make("bvudiv", (a, b), width=a.width)


def bv_urem(a: Expr, b: Expr) -> Expr:
    _check_same_width(a, b)
    consts = _binop_const(a, b)
    if consts is not None:
        # BPF semantics: modulo by zero leaves the dividend unchanged.
        return bv_const(consts[0] if consts[1] == 0 else consts[0] % consts[1],
                        a.width)
    if b.op == "bvconst" and b.value != 0 and b.value & (b.value - 1) == 0:
        return bv_and(a, bv_const(b.value - 1, a.width))
    return Expr.make("bvurem", (a, b), width=a.width)


def bv_neg(a: Expr) -> Expr:
    if a.op == "bvconst":
        return bv_const(-a.value, a.width)
    return bv_sub(bv_const(0, a.width), a)


# ----------------------------------------------------------------------------- #
# Bit-vector logic
# ----------------------------------------------------------------------------- #
def bv_and(a: Expr, b: Expr) -> Expr:
    _check_same_width(a, b)
    consts = _binop_const(a, b)
    if consts is not None:
        return bv_const(consts[0] & consts[1], a.width)
    if a.op == "bvconst":
        a, b = b, a
    if b.op == "bvconst":
        if b.value == 0:
            return bv_const(0, a.width)
        if b.value == _mask(a.width):
            return a
    if a == b:
        return a
    return Expr.make("bvand", (a, b), width=a.width)


def bv_or(a: Expr, b: Expr) -> Expr:
    _check_same_width(a, b)
    consts = _binop_const(a, b)
    if consts is not None:
        return bv_const(consts[0] | consts[1], a.width)
    if a.op == "bvconst":
        a, b = b, a
    if b.op == "bvconst":
        if b.value == 0:
            return a
        if b.value == _mask(a.width):
            return bv_const(_mask(a.width), a.width)
    if a == b:
        return a
    return Expr.make("bvor", (a, b), width=a.width)


def bv_xor(a: Expr, b: Expr) -> Expr:
    _check_same_width(a, b)
    consts = _binop_const(a, b)
    if consts is not None:
        return bv_const(consts[0] ^ consts[1], a.width)
    if a.op == "bvconst":
        a, b = b, a
    if b.op == "bvconst" and b.value == 0:
        return a
    if a == b:
        return bv_const(0, a.width)
    return Expr.make("bvxor", (a, b), width=a.width)


def bv_not(a: Expr) -> Expr:
    if a.op == "bvconst":
        return bv_const(~a.value, a.width)
    if a.op == "bvnot":
        return a.args[0]
    return Expr.make("bvnot", (a,), width=a.width)


# ----------------------------------------------------------------------------- #
# Shifts
# ----------------------------------------------------------------------------- #
def bv_shl(a: Expr, b: Expr) -> Expr:
    _check_same_width(a, b)
    if b.op == "bvconst":
        shift = b.value % a.width if b.value >= a.width else b.value
        if a.op == "bvconst":
            return bv_const(a.value << shift, a.width)
        if shift == 0:
            return a
    return Expr.make("bvshl", (a, b), width=a.width)


def bv_lshr(a: Expr, b: Expr) -> Expr:
    _check_same_width(a, b)
    if b.op == "bvconst":
        shift = b.value % a.width if b.value >= a.width else b.value
        if a.op == "bvconst":
            return bv_const(a.value >> shift, a.width)
        if shift == 0:
            return a
    return Expr.make("bvlshr", (a, b), width=a.width)


def bv_ashr(a: Expr, b: Expr) -> Expr:
    _check_same_width(a, b)
    if b.op == "bvconst":
        shift = b.value % a.width if b.value >= a.width else b.value
        if a.op == "bvconst":
            signed = a.value - (1 << a.width) if a.value >> (a.width - 1) else a.value
            return bv_const(signed >> shift, a.width)
        if shift == 0:
            return a
    return Expr.make("bvashr", (a, b), width=a.width)


# ----------------------------------------------------------------------------- #
# Structure: concat / extract / extension / ite
# ----------------------------------------------------------------------------- #
def bv_concat(high: Expr, low: Expr) -> Expr:
    """Concatenate; ``high`` occupies the most significant bits."""
    if high.op == "bvconst" and low.op == "bvconst":
        return bv_const((high.value << low.width) | low.value,
                        high.width + low.width)
    return Expr.make("bvconcat", (high, low), width=high.width + low.width)


def bv_extract(a: Expr, hi: int, lo: int) -> Expr:
    """Bits ``hi..lo`` (inclusive) of ``a``."""
    if not (0 <= lo <= hi < a.width):
        raise ValueError(f"bad extract range [{hi}:{lo}] for width {a.width}")
    width = hi - lo + 1
    if width == a.width:
        return a
    if a.op == "bvconst":
        return bv_const(a.value >> lo, width)
    if a.op == "bvconcat":
        high, low = a.args
        if hi < low.width:
            return bv_extract(low, hi, lo)
        if lo >= low.width:
            return bv_extract(high, hi - low.width, lo - low.width)
    if a.op == "bvzext" and hi < a.args[0].width:
        return bv_extract(a.args[0], hi, lo)
    if a.op == "bvzext" and lo >= a.args[0].width:
        return bv_const(0, width)
    return Expr.make("bvextract", (a,), width=width, value=(hi << 16) | lo)


def _extract_bounds(expr: Expr) -> tuple[int, int]:
    hi = expr.value >> 16
    lo = expr.value & 0xFFFF
    return hi, lo


def bv_zero_extend(a: Expr, extra_bits: int) -> Expr:
    if extra_bits == 0:
        return a
    if a.op == "bvconst":
        return bv_const(a.value, a.width + extra_bits)
    return Expr.make("bvzext", (a,), width=a.width + extra_bits)


def bv_sign_extend(a: Expr, extra_bits: int) -> Expr:
    if extra_bits == 0:
        return a
    if a.op == "bvconst":
        signed = a.value - (1 << a.width) if a.value >> (a.width - 1) else a.value
        return bv_const(signed, a.width + extra_bits)
    return Expr.make("bvsext", (a,), width=a.width + extra_bits)


def bv_ite(cond: Expr, then: Expr, otherwise: Expr) -> Expr:
    _check_same_width(then, otherwise)
    if cond.op == "boolconst":
        return then if cond.value else otherwise
    if then == otherwise:
        return then
    return Expr.make("bvite", (cond, then, otherwise), width=then.width)


# ----------------------------------------------------------------------------- #
# Predicates
# ----------------------------------------------------------------------------- #
def bv_eq(a: Expr, b: Expr) -> Expr:
    _check_same_width(a, b)
    if a == b:
        return TRUE
    consts = _binop_const(a, b)
    if consts is not None:
        return bool_const(consts[0] == consts[1])
    if a.op == "bvconst":
        a, b = b, a
    return Expr.make("bveq", (a, b))


def bv_ne(a: Expr, b: Expr) -> Expr:
    return bool_not(bv_eq(a, b))


def bv_ult(a: Expr, b: Expr) -> Expr:
    _check_same_width(a, b)
    consts = _binop_const(a, b)
    if consts is not None:
        return bool_const(consts[0] < consts[1])
    if a == b:
        return FALSE
    if b.op == "bvconst" and b.value == 0:
        return FALSE
    return Expr.make("bvult", (a, b))


def bv_ule(a: Expr, b: Expr) -> Expr:
    _check_same_width(a, b)
    consts = _binop_const(a, b)
    if consts is not None:
        return bool_const(consts[0] <= consts[1])
    if a == b:
        return TRUE
    return Expr.make("bvule", (a, b))


def bv_ugt(a: Expr, b: Expr) -> Expr:
    return bv_ult(b, a)


def bv_uge(a: Expr, b: Expr) -> Expr:
    return bv_ule(b, a)


def _signed(value: int, width: int) -> int:
    return value - (1 << width) if value >> (width - 1) else value


def bv_slt(a: Expr, b: Expr) -> Expr:
    _check_same_width(a, b)
    consts = _binop_const(a, b)
    if consts is not None:
        return bool_const(_signed(consts[0], a.width) < _signed(consts[1], b.width))
    if a == b:
        return FALSE
    return Expr.make("bvslt", (a, b))


def bv_sle(a: Expr, b: Expr) -> Expr:
    _check_same_width(a, b)
    consts = _binop_const(a, b)
    if consts is not None:
        return bool_const(_signed(consts[0], a.width) <= _signed(consts[1], b.width))
    if a == b:
        return TRUE
    return Expr.make("bvsle", (a, b))


def bv_sgt(a: Expr, b: Expr) -> Expr:
    return bv_slt(b, a)


def bv_sge(a: Expr, b: Expr) -> Expr:
    return bv_sle(b, a)


# ----------------------------------------------------------------------------- #
# Boolean connectives
# ----------------------------------------------------------------------------- #
def bool_and(*args: Expr) -> Expr:
    flat = []
    for arg in args:
        if arg.op == "booland":
            flat.extend(arg.args)
        else:
            flat.append(arg)
    result = []
    for arg in flat:
        if arg.op == "boolconst":
            if not arg.value:
                return FALSE
            continue
        if arg not in result:
            result.append(arg)
    if not result:
        return TRUE
    if len(result) == 1:
        return result[0]
    return Expr.make("booland", tuple(result))


def bool_or(*args: Expr) -> Expr:
    flat = []
    for arg in args:
        if arg.op == "boolor":
            flat.extend(arg.args)
        else:
            flat.append(arg)
    result = []
    for arg in flat:
        if arg.op == "boolconst":
            if arg.value:
                return TRUE
            continue
        if arg not in result:
            result.append(arg)
    if not result:
        return FALSE
    if len(result) == 1:
        return result[0]
    return Expr.make("boolor", tuple(result))


def bool_not(a: Expr) -> Expr:
    if a.op == "boolconst":
        return bool_const(not a.value)
    if a.op == "boolnot":
        return a.args[0]
    return Expr.make("boolnot", (a,))


def bool_implies(a: Expr, b: Expr) -> Expr:
    return bool_or(bool_not(a), b)


def bool_xor(a: Expr, b: Expr) -> Expr:
    if a.op == "boolconst":
        return b if a.value == 0 else bool_not(b)
    if b.op == "boolconst":
        return a if b.value == 0 else bool_not(a)
    if a == b:
        return FALSE
    return Expr.make("boolxor", (a, b))


def bool_ite(cond: Expr, then: Expr, otherwise: Expr) -> Expr:
    if cond.op == "boolconst":
        return then if cond.value else otherwise
    if then == otherwise:
        return then
    return bool_or(bool_and(cond, then), bool_and(bool_not(cond), otherwise))


# ----------------------------------------------------------------------------- #
def _check_same_width(a: Expr, b: Expr) -> None:
    if a.width != b.width:
        raise ValueError(f"width mismatch: {a.width} vs {b.width} "
                         f"({a!r} vs {b!r})")
