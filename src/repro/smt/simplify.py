"""Expression utilities: evaluation, substitution, variable collection.

The constructors in :mod:`repro.smt.bitvec` already perform eager
simplification; this module adds the supporting operations the rest of the
system needs:

* :func:`evaluate` — interpret an expression under a concrete assignment
  (used to validate SAT models and to differential-test the bit-blaster),
* :func:`substitute` — replace variables by expressions,
* :func:`collect_vars` — the free variables of an expression.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Union

from .bitvec import (
    Expr, bool_and, bool_not, bool_or, bool_xor, bv_add, bv_and, bv_ashr,
    bv_concat, bv_eq, bv_extract, bv_ite, bv_lshr, bv_mul, bv_not, bv_or,
    bv_shl, bv_sign_extend, bv_sle, bv_slt, bv_sub, bv_udiv, bv_ule, bv_ult,
    bv_urem, bv_xor, bv_zero_extend,
)

__all__ = ["evaluate", "substitute", "collect_vars"]

Assignment = Dict[str, int]


def _signed(value: int, width: int) -> int:
    return value - (1 << width) if value >> (width - 1) else value


def evaluate(expr: Expr, assignment: Assignment) -> Union[int, bool]:
    """Evaluate ``expr`` under ``assignment`` (variable name -> value).

    Missing variables default to zero / False, matching how the solver treats
    don't-care variables in extracted models.
    """
    cache: Dict[Expr, Union[int, bool]] = {}

    def walk(node: Expr) -> Union[int, bool]:
        if node in cache:
            return cache[node]
        op = node.op
        args = node.args
        if op == "bvconst":
            result: Union[int, bool] = node.value
        elif op == "bvvar":
            result = assignment.get(node.name, 0) & ((1 << node.width) - 1)
        elif op == "boolconst":
            result = bool(node.value)
        elif op == "boolvar":
            result = bool(assignment.get(node.name, 0))
        elif op == "bvadd":
            result = (walk(args[0]) + walk(args[1])) & ((1 << node.width) - 1)
        elif op == "bvsub":
            result = (walk(args[0]) - walk(args[1])) & ((1 << node.width) - 1)
        elif op == "bvmul":
            result = (walk(args[0]) * walk(args[1])) & ((1 << node.width) - 1)
        elif op == "bvudiv":
            a, b = walk(args[0]), walk(args[1])
            result = 0 if b == 0 else a // b
        elif op == "bvurem":
            a, b = walk(args[0]), walk(args[1])
            result = a if b == 0 else a % b
        elif op == "bvand":
            result = walk(args[0]) & walk(args[1])
        elif op == "bvor":
            result = walk(args[0]) | walk(args[1])
        elif op == "bvxor":
            result = walk(args[0]) ^ walk(args[1])
        elif op == "bvnot":
            result = ~walk(args[0]) & ((1 << node.width) - 1)
        elif op == "bvshl":
            a, b = walk(args[0]), walk(args[1])
            result = 0 if b >= node.width else (a << b) & ((1 << node.width) - 1)
        elif op == "bvlshr":
            a, b = walk(args[0]), walk(args[1])
            result = 0 if b >= node.width else a >> b
        elif op == "bvashr":
            a, b = walk(args[0]), walk(args[1])
            signed = _signed(a, node.width)
            shift = min(b, node.width - 1) if b >= node.width else b
            result = (signed >> shift) & ((1 << node.width) - 1)
        elif op == "bvconcat":
            high, low = args
            result = (walk(high) << low.width) | walk(low)
        elif op == "bvextract":
            hi = node.value >> 16
            lo = node.value & 0xFFFF
            result = (walk(args[0]) >> lo) & ((1 << (hi - lo + 1)) - 1)
        elif op == "bvzext":
            result = walk(args[0])
        elif op == "bvsext":
            inner = args[0]
            result = _signed(walk(inner), inner.width) & ((1 << node.width) - 1)
        elif op == "bvite":
            result = walk(args[1]) if walk(args[0]) else walk(args[2])
        elif op == "bveq":
            result = walk(args[0]) == walk(args[1])
        elif op == "bvult":
            result = walk(args[0]) < walk(args[1])
        elif op == "bvule":
            result = walk(args[0]) <= walk(args[1])
        elif op == "bvslt":
            result = _signed(walk(args[0]), args[0].width) < _signed(walk(args[1]), args[1].width)
        elif op == "bvsle":
            result = _signed(walk(args[0]), args[0].width) <= _signed(walk(args[1]), args[1].width)
        elif op == "booland":
            result = all(walk(arg) for arg in args)
        elif op == "boolor":
            result = any(walk(arg) for arg in args)
        elif op == "boolnot":
            result = not walk(args[0])
        elif op == "boolxor":
            result = bool(walk(args[0])) != bool(walk(args[1]))
        else:
            raise ValueError(f"cannot evaluate op {op!r}")
        cache[node] = result
        return result

    return walk(expr)


_REBUILDERS = {
    "bvadd": bv_add, "bvsub": bv_sub, "bvmul": bv_mul, "bvudiv": bv_udiv,
    "bvurem": bv_urem, "bvand": bv_and, "bvor": bv_or, "bvxor": bv_xor,
    "bvshl": bv_shl, "bvlshr": bv_lshr, "bvashr": bv_ashr,
    "bvconcat": bv_concat, "bveq": bv_eq, "bvult": bv_ult, "bvule": bv_ule,
    "bvslt": bv_slt, "bvsle": bv_sle, "boolxor": bool_xor,
}


def substitute(expr: Expr, mapping: Dict[Expr, Expr]) -> Expr:
    """Replace occurrences of the keys of ``mapping`` (typically variables)."""
    cache: Dict[Expr, Expr] = {}

    def walk(node: Expr) -> Expr:
        if node in mapping:
            return mapping[node]
        if node in cache:
            return cache[node]
        if not node.args:
            return node
        new_args = tuple(walk(arg) for arg in node.args)
        if new_args == node.args:
            result = node
        else:
            op = node.op
            if op in _REBUILDERS:
                result = _REBUILDERS[op](*new_args)
            elif op == "bvnot":
                result = bv_not(new_args[0])
            elif op == "bvextract":
                hi = node.value >> 16
                lo = node.value & 0xFFFF
                result = bv_extract(new_args[0], hi, lo)
            elif op == "bvzext":
                result = bv_zero_extend(new_args[0], node.width - new_args[0].width)
            elif op == "bvsext":
                result = bv_sign_extend(new_args[0], node.width - new_args[0].width)
            elif op == "bvite":
                result = bv_ite(*new_args)
            elif op == "booland":
                result = bool_and(*new_args)
            elif op == "boolor":
                result = bool_or(*new_args)
            elif op == "boolnot":
                result = bool_not(new_args[0])
            else:
                raise ValueError(f"cannot substitute inside op {node.op!r}")
        cache[node] = result
        return result

    return walk(expr)


def collect_vars(exprs: Union[Expr, Iterable[Expr]]) -> Set[Expr]:
    """Return the set of free variables occurring in the expression(s)."""
    if isinstance(exprs, Expr):
        exprs = [exprs]
    seen: Set[Expr] = set()
    variables: Set[Expr] = set()
    stack = list(exprs)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if node.is_var:
            variables.add(node)
        stack.extend(node.args)
    return variables
