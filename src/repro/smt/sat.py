"""A CDCL SAT solver.

This is the decision procedure underneath the bit-vector solver, standing in
for Z3's SAT core.  It implements the standard conflict-driven clause
learning loop:

* unit propagation with two watched literals,
* first-UIP conflict analysis with clause learning and non-chronological
  backjumping,
* VSIDS-style variable activities with exponential decay,
* Luby-sequence restarts,
* phase saving.

The implementation favours clarity over raw speed; the word-level
simplifications and the domain-specific concretizations in
:mod:`repro.equivalence` keep the CNF instances small enough that this is
sufficient for the programs in the benchmark corpus.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .cnf import CNF

__all__ = ["SatSolver", "SatResult"]


class SatResult:
    """Outcome of a satisfiability check."""

    def __init__(self, satisfiable: bool, model: Optional[Dict[int, bool]] = None,
                 conflicts: int = 0, decisions: int = 0):
        self.satisfiable = satisfiable
        self.model = model or {}
        self.conflicts = conflicts
        self.decisions = decisions

    def __bool__(self) -> bool:
        return self.satisfiable

    def __repr__(self) -> str:
        return (f"SatResult(sat={self.satisfiable}, conflicts={self.conflicts}, "
                f"decisions={self.decisions})")


def _luby(index: int) -> int:
    """The Luby restart sequence (0-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    size, seq = 1, 0
    while size < index + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        seq -= 1
        index %= size
    return 1 << seq


class SatSolver:
    """CDCL solver over a :class:`CNF` formula."""

    def __init__(self, cnf: CNF, max_conflicts: Optional[int] = None):
        self.num_vars = cnf.num_vars
        self.max_conflicts = max_conflicts
        # value[v] is None (unassigned), True or False.
        self.value: List[Optional[bool]] = [None] * (self.num_vars + 1)
        self.level: List[int] = [0] * (self.num_vars + 1)
        self.reason: List[Optional[List[int]]] = [None] * (self.num_vars + 1)
        self.activity: List[float] = [0.0] * (self.num_vars + 1)
        self.phase: List[bool] = [False] * (self.num_vars + 1)
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.propagate_head = 0
        self.clauses: List[List[int]] = []
        self.learned: List[List[int]] = []
        # watches[lit] is a list of clauses currently watching lit.
        self.watches: Dict[int, List[List[int]]] = {}
        self.conflicts = 0
        self.decisions = 0
        self._contradiction = False
        for clause in cnf.clauses:
            self._add_clause(list(clause), learned=False)
        # Seed the branching activities with literal occurrence counts so the
        # first decisions target heavily-constrained variables.
        for clause in cnf.clauses:
            for lit in clause:
                self.activity[abs(lit)] += 1.0 / max(1, len(clause))

    # ------------------------------------------------------------------ #
    # Clause management
    # ------------------------------------------------------------------ #
    def _add_clause(self, clause: List[int], learned: bool) -> None:
        if not clause:
            self._contradiction = True
            return
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._contradiction = True
            return
        if learned:
            self.learned.append(clause)
        else:
            self.clauses.append(clause)
        self._watch(clause[0], clause)
        self._watch(clause[1], clause)

    def _watch(self, lit: int, clause: List[int]) -> None:
        self.watches.setdefault(lit, []).append(clause)

    # ------------------------------------------------------------------ #
    # Assignment handling
    # ------------------------------------------------------------------ #
    def _lit_value(self, lit: int) -> Optional[bool]:
        value = self.value[abs(lit)]
        if value is None:
            return None
        return value if lit > 0 else not value

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> bool:
        current = self._lit_value(lit)
        if current is not None:
            return current
        var = abs(lit)
        self.value[var] = lit > 0
        self.phase[var] = lit > 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    # ------------------------------------------------------------------ #
    # Unit propagation (two watched literals)
    # ------------------------------------------------------------------ #
    def _propagate(self) -> Optional[List[int]]:
        while self.propagate_head < len(self.trail):
            lit = self.trail[self.propagate_head]
            self.propagate_head += 1
            false_lit = -lit
            watching = self.watches.get(false_lit, [])
            new_watching: List[List[int]] = []
            index = 0
            conflict = None
            while index < len(watching):
                clause = watching[index]
                index += 1
                # Ensure the false literal is in position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) is True:
                    new_watching.append(clause)
                    continue
                # Look for a replacement watch.
                found = False
                for position in range(2, len(clause)):
                    candidate = clause[position]
                    if self._lit_value(candidate) is not False:
                        clause[1], clause[position] = clause[position], clause[1]
                        self._watch(clause[1], clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                new_watching.append(clause)
                if self._lit_value(first) is False:
                    # Conflict: keep remaining watches and report.
                    new_watching.extend(watching[index:])
                    conflict = clause
                    break
                self._enqueue(first, clause)
            self.watches[false_lit] = new_watching
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------ #
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------ #
    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for index in range(1, self.num_vars + 1):
                self.activity[index] *= 1e-100
            self.var_inc *= 1e-100

    def _analyze(self, conflict: List[int]) -> tuple[List[int], int]:
        learnt: List[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = None
        clause = conflict
        trail_index = len(self.trail) - 1
        current_level = self._decision_level()

        while True:
            for other in clause:
                # Skip the literal we are resolving on (the implied literal
                # of the reason clause).
                if lit is not None and other == lit:
                    continue
                var = abs(other)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(other)
            # Pick the next literal to resolve on from the trail.
            while not seen[abs(self.trail[trail_index])]:
                trail_index -= 1
            lit = self.trail[trail_index]
            trail_index -= 1
            var = abs(lit)
            seen[var] = False
            counter -= 1
            if counter == 0:
                learnt.insert(0, -lit)
                break
            clause = self.reason[var] or []

        if len(learnt) == 1:
            backjump_level = 0
        else:
            backjump_level = max(self.level[abs(l)] for l in learnt[1:])
            # Move the literal with the backjump level to position 1.
            for position in range(1, len(learnt)):
                if self.level[abs(learnt[position])] == backjump_level:
                    learnt[1], learnt[position] = learnt[position], learnt[1]
                    break
        return learnt, backjump_level

    def _backjump(self, target_level: int) -> None:
        while self._decision_level() > target_level:
            boundary = self.trail_lim.pop()
            for lit in reversed(self.trail[boundary:]):
                var = abs(lit)
                self.value[var] = None
                self.reason[var] = None
            del self.trail[boundary:]
        self.propagate_head = min(self.propagate_head, len(self.trail))

    # ------------------------------------------------------------------ #
    # Decisions
    # ------------------------------------------------------------------ #
    def _pick_branch_variable(self) -> Optional[int]:
        best_var = None
        best_activity = -1.0
        for var in range(1, self.num_vars + 1):
            if self.value[var] is None and self.activity[var] > best_activity:
                best_var = var
                best_activity = self.activity[var]
        return best_var

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def solve(self) -> SatResult:
        if self._contradiction:
            return SatResult(False, conflicts=self.conflicts,
                             decisions=self.decisions)
        conflict = self._propagate()
        if conflict is not None:
            return SatResult(False, conflicts=self.conflicts,
                             decisions=self.decisions)

        restart_count = 0
        conflicts_until_restart = _luby(restart_count) * 128

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                if self.max_conflicts is not None and self.conflicts > self.max_conflicts:
                    raise TimeoutError(
                        f"SAT solver exceeded {self.max_conflicts} conflicts")
                if self._decision_level() == 0:
                    return SatResult(False, conflicts=self.conflicts,
                                     decisions=self.decisions)
                learnt, backjump_level = self._analyze(conflict)
                self._backjump(backjump_level)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], None)
                else:
                    self.learned.append(learnt)
                    self._watch(learnt[0], learnt)
                    self._watch(learnt[1], learnt)
                    self._enqueue(learnt[0], learnt)
                self.var_inc /= self.var_decay
                conflicts_until_restart -= 1
                if conflicts_until_restart <= 0:
                    restart_count += 1
                    conflicts_until_restart = _luby(restart_count) * 128
                    self._backjump(0)
                continue

            variable = self._pick_branch_variable()
            if variable is None:
                model = {var: bool(self.value[var])
                         for var in range(1, self.num_vars + 1)}
                return SatResult(True, model=model, conflicts=self.conflicts,
                                 decisions=self.decisions)
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            polarity = self.phase[variable]
            self._enqueue(variable if polarity else -variable, None)


def solve_cnf(cnf: CNF, max_conflicts: Optional[int] = None) -> SatResult:
    """Convenience wrapper: solve a CNF formula from scratch."""
    return SatSolver(cnf, max_conflicts=max_conflicts).solve()
