"""A CDCL SAT solver with incremental solving under assumptions.

This is the decision procedure underneath the bit-vector solver, standing in
for Z3's SAT core.  It implements the standard conflict-driven clause
learning loop:

* unit propagation with two watched literals,
* first-UIP conflict analysis with clause learning and non-chronological
  backjumping,
* VSIDS-style variable activities with exponential decay,
* Luby-sequence restarts,
* phase saving.

Two entry points exist:

* :class:`SatSolver` — the classic one-shot interface: load a :class:`CNF`,
  call :meth:`~IncrementalSatSolver.solve` once.
* :class:`IncrementalSatSolver` — the incremental interface used by the
  scoped :class:`repro.smt.Solver`: variables and clauses may be added
  between ``solve()`` calls, each ``solve()`` may carry *assumption
  literals* (Minisat-style: assumptions are enqueued as the first
  decisions), and learned clauses, variable activities and saved phases
  persist across calls.  Learned clauses are derived by resolution from the
  clause database alone, never from the assumptions, so reusing them across
  queries with different assumptions is sound.

The implementation favours clarity over raw speed; the word-level
simplifications and the domain-specific concretizations in
:mod:`repro.equivalence` keep the CNF instances small enough that this is
sufficient for the programs in the benchmark corpus.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence

from .cnf import CNF

__all__ = ["IncrementalSatSolver", "SatSolver", "SatResult", "solve_cnf"]


class SatResult:
    """Outcome of a satisfiability check."""

    def __init__(self, satisfiable: bool, model: Optional[Dict[int, bool]] = None,
                 conflicts: int = 0, decisions: int = 0,
                 assumption_failed: bool = False):
        self.satisfiable = satisfiable
        self.model = model or {}
        self.conflicts = conflicts
        self.decisions = decisions
        #: True when UNSAT was caused by the assumptions directly conflicting
        #: with the level-0 consequences of the clause database.
        self.assumption_failed = assumption_failed

    def __bool__(self) -> bool:
        return self.satisfiable

    def __repr__(self) -> str:
        return (f"SatResult(sat={self.satisfiable}, conflicts={self.conflicts}, "
                f"decisions={self.decisions})")


def _luby(index: int) -> int:
    """The Luby restart sequence (0-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    size, seq = 1, 0
    while size < index + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        seq -= 1
        index %= size
    return 1 << seq


class IncrementalSatSolver:
    """CDCL solver whose clause database grows across ``solve()`` calls.

    The class duck-types the :class:`CNF` interface (``new_var``,
    ``add_clause``, ``num_vars``) so the bit-blaster can emit clauses
    directly into the live solver.  Clauses must be added while the solver
    is at decision level 0, which is guaranteed because ``solve()`` always
    backtracks fully before returning (including on timeout).
    """

    def __init__(self, max_conflicts: Optional[int] = None):
        self.num_vars = 0
        #: Conflict budget applied to each individual ``solve()`` call.
        self.max_conflicts = max_conflicts
        # value[v] is None (unassigned), True or False.
        self.value: List[Optional[bool]] = [None]
        self.level: List[int] = [0]
        self.reason: List[Optional[List[int]]] = [None]
        self.activity: List[float] = [0.0]
        self.phase: List[bool] = [False]
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.propagate_head = 0
        self.clauses: List[List[int]] = []
        self.learned: List[List[int]] = []
        # watches[lit] is a list of clauses currently watching lit.
        self.watches: Dict[int, List[List[int]]] = {}
        self.conflicts = 0
        self.decisions = 0
        self.num_solves = 0
        self._contradiction = False
        # Lazy VSIDS order: a heap of (-activity, var) entries, possibly
        # stale.  Every unassigned variable always has at least one entry
        # (pushed on allocation, on bump and on unassignment), so popping
        # until an unassigned variable appears is a correct O(log n)
        # replacement for a full scan — essential once queries accumulate
        # variables in the incremental setting.
        self._order: List[tuple] = []

    # ------------------------------------------------------------------ #
    # CNF-compatible construction interface
    # ------------------------------------------------------------------ #
    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self.num_vars += 1
        self.value.append(None)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        self.phase.append(False)
        heapq.heappush(self._order, (0.0, self.num_vars))
        return self.num_vars

    def add_clause(self, literals: Sequence[int]) -> None:
        """Add one clause (a disjunction of literals) at decision level 0.

        The clause is simplified against the permanent (level-0) assignment:
        satisfied clauses are dropped, false literals are removed.  This
        keeps the two-watched-literal invariant intact for clauses added
        after earlier ``solve()`` calls have fixed variables at level 0.
        """
        if self._contradiction:
            return
        clause: List[int] = []
        seen = set()
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            if abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} references an unallocated variable")
            if -lit in seen:
                return  # tautology, skip
            if lit in seen:
                continue
            seen.add(lit)
            value = self._lit_value(lit)
            if value is True:
                return  # satisfied at level 0, permanently true
            if value is False:
                continue  # falsified at level 0, drop the literal
            clause.append(lit)
        # Seed the branching activities with literal occurrence counts so the
        # first decisions target heavily-constrained variables.
        for lit in clause:
            var = abs(lit)
            self.activity[var] += 1.0 / max(1, len(clause))
            heapq.heappush(self._order, (-self.activity[var], var))
        self._add_clause(clause, learned=False)

    def add_clauses(self, clauses) -> None:
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------ #
    # Clause management
    # ------------------------------------------------------------------ #
    def _add_clause(self, clause: List[int], learned: bool) -> None:
        if not clause:
            self._contradiction = True
            return
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._contradiction = True
            return
        if learned:
            self.learned.append(clause)
        else:
            self.clauses.append(clause)
        self._watch(clause[0], clause)
        self._watch(clause[1], clause)

    def _watch(self, lit: int, clause: List[int]) -> None:
        self.watches.setdefault(lit, []).append(clause)

    # ------------------------------------------------------------------ #
    # Assignment handling
    # ------------------------------------------------------------------ #
    def _lit_value(self, lit: int) -> Optional[bool]:
        value = self.value[abs(lit)]
        if value is None:
            return None
        return value if lit > 0 else not value

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> bool:
        current = self._lit_value(lit)
        if current is not None:
            return current
        var = abs(lit)
        self.value[var] = lit > 0
        self.phase[var] = lit > 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    # ------------------------------------------------------------------ #
    # Unit propagation (two watched literals)
    # ------------------------------------------------------------------ #
    def _propagate(self) -> Optional[List[int]]:
        while self.propagate_head < len(self.trail):
            lit = self.trail[self.propagate_head]
            self.propagate_head += 1
            false_lit = -lit
            watching = self.watches.get(false_lit, [])
            new_watching: List[List[int]] = []
            index = 0
            conflict = None
            while index < len(watching):
                clause = watching[index]
                index += 1
                # Ensure the false literal is in position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) is True:
                    # Satisfied at level 0 (e.g. a retired scope guard):
                    # permanently true — drop it from this watch list so
                    # finished queries stop taxing propagation.
                    if self.level[abs(first)] > 0:
                        new_watching.append(clause)
                    continue
                # Look for a replacement watch.
                found = False
                for position in range(2, len(clause)):
                    candidate = clause[position]
                    if self._lit_value(candidate) is not False:
                        clause[1], clause[position] = clause[position], clause[1]
                        self._watch(clause[1], clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                new_watching.append(clause)
                if self._lit_value(first) is False:
                    # Conflict: keep remaining watches and report.
                    new_watching.extend(watching[index:])
                    conflict = clause
                    break
                self._enqueue(first, clause)
            self.watches[false_lit] = new_watching
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------ #
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------ #
    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for index in range(1, self.num_vars + 1):
                self.activity[index] *= 1e-100
            self.var_inc *= 1e-100
            self._rebuild_order()
        else:
            heapq.heappush(self._order, (-self.activity[var], var))

    def _rebuild_order(self) -> None:
        self._order = [(-self.activity[var], var)
                       for var in range(1, self.num_vars + 1)
                       if self.value[var] is None]
        heapq.heapify(self._order)

    def _analyze(self, conflict: List[int]) -> tuple[List[int], int]:
        learnt: List[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = None
        clause = conflict
        trail_index = len(self.trail) - 1
        current_level = self._decision_level()

        while True:
            for other in clause:
                # Skip the literal we are resolving on (the implied literal
                # of the reason clause).
                if lit is not None and other == lit:
                    continue
                var = abs(other)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(other)
            # Pick the next literal to resolve on from the trail.
            while not seen[abs(self.trail[trail_index])]:
                trail_index -= 1
            lit = self.trail[trail_index]
            trail_index -= 1
            var = abs(lit)
            seen[var] = False
            counter -= 1
            if counter == 0:
                learnt.insert(0, -lit)
                break
            clause = self.reason[var] or []

        if len(learnt) == 1:
            backjump_level = 0
        else:
            backjump_level = max(self.level[abs(l)] for l in learnt[1:])
            # Move the literal with the backjump level to position 1.
            for position in range(1, len(learnt)):
                if self.level[abs(learnt[position])] == backjump_level:
                    learnt[1], learnt[position] = learnt[position], learnt[1]
                    break
        return learnt, backjump_level

    def _backjump(self, target_level: int) -> None:
        while self._decision_level() > target_level:
            boundary = self.trail_lim.pop()
            for lit in reversed(self.trail[boundary:]):
                var = abs(lit)
                self.value[var] = None
                self.reason[var] = None
                heapq.heappush(self._order, (-self.activity[var], var))
            del self.trail[boundary:]
        self.propagate_head = min(self.propagate_head, len(self.trail))

    # ------------------------------------------------------------------ #
    # Decisions
    # ------------------------------------------------------------------ #
    def _pick_branch_variable(self) -> Optional[int]:
        # Pop until an unassigned variable surfaces.  Entries may be stale
        # (the variable was assigned, or its activity has changed since the
        # entry was pushed); an unassigned variable is acceptable even under
        # a stale priority because a fresher entry would have sorted first.
        if len(self._order) > max(4096, 8 * self.num_vars):
            self._rebuild_order()
        order = self._order
        while order:
            _, var = heapq.heappop(order)
            if self.value[var] is None:
                return var
        return None

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def solve(self, assumptions: Sequence[int] = ()) -> SatResult:
        """Decide satisfiability of the clause database under ``assumptions``.

        Assumptions are enqueued as the first decisions (one decision level
        each); a conflict that cannot be resolved below the assumption
        levels means the database is UNSAT *under these assumptions* and is
        reported with ``assumption_failed=True``.  The solver always
        backtracks to level 0 before returning, so the caller may add more
        clauses and solve again — learned clauses, activities and phases
        are kept.
        """
        self.num_solves += 1
        try:
            return self._solve(list(assumptions))
        finally:
            self._backjump(0)

    def _solve(self, assumptions: List[int]) -> SatResult:
        def result(satisfiable: bool, model=None, failed=False) -> SatResult:
            return SatResult(satisfiable, model=model, conflicts=self.conflicts,
                             decisions=self.decisions, assumption_failed=failed)

        if self._contradiction:
            return result(False)
        self._backjump(0)
        if self._propagate() is not None:
            self._contradiction = True
            return result(False)

        restart_count = 0
        conflicts_until_restart = _luby(restart_count) * 128
        conflict_budget = None if self.max_conflicts is None \
            else self.conflicts + self.max_conflicts

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                if conflict_budget is not None and self.conflicts > conflict_budget:
                    raise TimeoutError(
                        f"SAT solver exceeded {self.max_conflicts} conflicts")
                if self._decision_level() == 0:
                    self._contradiction = True
                    return result(False)
                learnt, backjump_level = self._analyze(conflict)
                self._backjump(backjump_level)
                if len(learnt) == 1:
                    self._enqueue_learnt_unit(learnt[0])
                else:
                    self.learned.append(learnt)
                    self._watch(learnt[0], learnt)
                    self._watch(learnt[1], learnt)
                    self._enqueue(learnt[0], learnt)
                self.var_inc /= self.var_decay
                conflicts_until_restart -= 1
                if conflicts_until_restart <= 0:
                    restart_count += 1
                    conflicts_until_restart = _luby(restart_count) * 128
                    self._backjump(0)
                continue

            if self._decision_level() < len(assumptions):
                # Extend the assumption prefix by one decision level.
                lit = assumptions[self._decision_level()]
                value = self._lit_value(lit)
                if value is False:
                    return result(False, failed=True)
                self.trail_lim.append(len(self.trail))
                if value is None:
                    self._enqueue(lit, None)
                continue

            variable = self._pick_branch_variable()
            if variable is None:
                model = {var: bool(self.value[var])
                         for var in range(1, self.num_vars + 1)}
                return result(True, model=model)
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            polarity = self.phase[variable]
            self._enqueue(variable if polarity else -variable, None)

    def _enqueue_learnt_unit(self, lit: int) -> None:
        if not self._enqueue(lit, None):
            self._contradiction = True


class SatSolver(IncrementalSatSolver):
    """One-shot CDCL solver over a :class:`CNF` formula (legacy interface)."""

    def __init__(self, cnf: CNF, max_conflicts: Optional[int] = None):
        super().__init__(max_conflicts=max_conflicts)
        for _ in range(cnf.num_vars):
            self.new_var()
        for clause in cnf.clauses:
            self._add_clause(list(clause), learned=False)
        # Seed the branching activities with literal occurrence counts so the
        # first decisions target heavily-constrained variables (the original
        # one-shot seeding, over the unsimplified clause list).
        for clause in cnf.clauses:
            for lit in clause:
                self.activity[abs(lit)] += 1.0 / max(1, len(clause))
        self._rebuild_order()


def solve_cnf(cnf: CNF, max_conflicts: Optional[int] = None) -> SatResult:
    """Convenience wrapper: solve a CNF formula from scratch."""
    return SatSolver(cnf, max_conflicts=max_conflicts).solve()
