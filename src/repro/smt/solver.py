"""Solver facade: the reproduction's replacement for the Z3 API surface K2 uses.

Typical usage::

    solver = Solver()
    solver.add(bv_eq(x, y))
    solver.add(bv_ult(x, bv_const(10, 64)))
    if solver.check() == CheckResult.SAT:
        model = solver.model()
        print(model[x])

The solver applies three layers before touching the SAT core:

1. eager word-level simplification (performed by the expression constructors),
2. a trivial-decision pass (assertions that simplified to ``true``/``false``),
3. Tseitin bit-blasting followed by CDCL search.

Unlike the original one-shot design, the facade is **incremental**:

* One :class:`~repro.smt.bitblast.BitBlaster` and one
  :class:`~repro.smt.sat.IncrementalSatSolver` live for the lifetime of the
  ``Solver``.  Because expressions are hash-consed, the blaster's structural
  cache makes every shared subexpression — across the two programs of one
  equivalence query *and* across successive queries — blast to CNF exactly
  once.
* :meth:`push`/:meth:`pop` create *scopes* guarded by fresh **assumption
  literals**: an assertion made inside a scope becomes the guarded clause
  ``¬act ∨ assertion`` and :meth:`check` solves under the assumption
  ``act``.  Popping a scope retires its guard with the unit clause
  ``¬act``, which permanently disables the scope's clauses while keeping
  the blasted CNF and every learned clause for the next query.
* Learned clauses are consequences of the clause database alone (never of
  the assumptions), so they remain sound across pops — this is what makes
  re-checking a structurally similar candidate much cheaper than the first
  check.
"""

from __future__ import annotations

import enum
import time
from typing import Dict, List, Optional, Sequence

from .bitblast import BitBlaster
from .bitvec import Expr, FALSE, TRUE
from .sat import IncrementalSatSolver
from .simplify import collect_vars, evaluate

__all__ = ["CheckResult", "Model", "Solver", "SolverStats"]


class CheckResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class Model:
    """A satisfying assignment, addressable by variable expression or name."""

    def __init__(self, values: Dict[str, int]):
        self._values = values

    def __getitem__(self, key) -> int:
        name = key.name if isinstance(key, Expr) else key
        return self._values.get(name, 0)

    def get(self, key, default: int = 0) -> int:
        name = key.name if isinstance(key, Expr) else key
        return self._values.get(name, default)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._values)

    def evaluate(self, expr: Expr):
        """Evaluate an arbitrary expression under this model."""
        return evaluate(expr, self._values)

    def __repr__(self) -> str:
        return f"Model({self._values!r})"


class SolverStats:
    """Bookkeeping for the equivalence-checking benchmarks (Table 4 / 6)."""

    def __init__(self) -> None:
        self.num_checks = 0
        self.num_sat = 0
        self.num_unsat = 0
        self.num_trivial = 0
        self.total_time = 0.0
        #: Clauses / variables added to the shared CNF (cumulative; with the
        #: incremental core, re-checked structure contributes nothing here).
        self.num_clauses = 0
        self.num_variables = 0

    def __repr__(self) -> str:
        return (f"SolverStats(checks={self.num_checks}, trivial={self.num_trivial}, "
                f"sat={self.num_sat}, unsat={self.num_unsat}, "
                f"time={self.total_time:.3f}s)")


class _Scope:
    """One push/pop scope: a guard literal plus its pending assertions."""

    __slots__ = ("guard", "assertions", "blasted")

    def __init__(self, guard: int):
        self.guard = guard
        self.assertions: List[Expr] = []
        self.blasted = 0  # watermark: assertions already turned into clauses


class Solver:
    """Check satisfiability of conjunctions of boolean bit-vector formulas.

    Scoped usage (incremental)::

        solver.add(base_fact)          # base level: permanent unit clauses
        token = solver.push()          # open a scope with a fresh guard
        solver.add(query_specific)     # guarded: ¬act ∨ query_specific
        solver.check()                 # solves under assumption act
        solver.pop(token)              # retires act; CNF + learned kept
    """

    def __init__(self, max_conflicts: Optional[int] = 2_000_000):
        self._max_conflicts = max_conflicts
        self.stats = SolverStats()
        self._reset_core()

    def _reset_core(self) -> None:
        self._sat = IncrementalSatSolver(max_conflicts=self._max_conflicts)
        self._blaster = BitBlaster(self._sat)
        self._base: List[Expr] = []
        self._base_blasted = 0
        self._scopes: List[_Scope] = []
        self._model: Optional[Model] = None

    # ------------------------------------------------------------------ #
    def add(self, expr: Expr) -> None:
        """Assert a boolean expression in the current scope."""
        if not expr.is_bool:
            raise ValueError("assertions must be boolean expressions")
        if self._scopes:
            self._scopes[-1].assertions.append(expr)
        else:
            self._base.append(expr)
        self._model = None

    def push(self) -> int:
        """Open a new scope; returns a token for :meth:`pop`."""
        token = len(self._scopes)
        self._scopes.append(_Scope(self._sat.new_var()))
        return token

    def pop(self, token: int) -> None:
        """Retire every scope opened after ``token`` was taken."""
        while len(self._scopes) > token:
            scope = self._scopes.pop()
            # Permanently disable the scope's guarded clauses.  The blasted
            # structure and any clauses learned from it stay — they are
            # consequences of the database, sound for every later query.
            self._sat.add_clause([-scope.guard])
        self._model = None

    def reset(self) -> None:
        self._reset_core()

    def set_conflict_budget(self, max_conflicts: Optional[int]) -> None:
        """Change the per-:meth:`check` conflict budget on the live core.

        Takes effect on the next :meth:`check`; the clause database, the
        blasted structure and every learned clause are untouched, so a
        query re-run under a larger budget resumes from an already-warm
        solver.  ``None`` removes the budget entirely.
        """
        self._max_conflicts = max_conflicts
        self._sat.max_conflicts = max_conflicts

    @property
    def conflict_budget(self) -> Optional[int]:
        return self._max_conflicts

    @property
    def conflicts(self) -> int:
        """Total CDCL conflicts this core has resolved (deterministic)."""
        return self._sat.conflicts

    @property
    def assertions(self) -> List[Expr]:
        exprs = list(self._base)
        for scope in self._scopes:
            exprs.extend(scope.assertions)
        return exprs

    @property
    def num_clauses(self) -> int:
        """Size of the live clause database (original + learned)."""
        return len(self._sat.clauses) + len(self._sat.learned)

    # ------------------------------------------------------------------ #
    def check(self, assumptions: Sequence[Expr] = ()) -> CheckResult:
        """Decide satisfiability of the active assertions.

        ``assumptions`` are extra boolean expressions assumed *for this call
        only* — they are blasted to literals and handed to the SAT core as
        assumptions, leaving no trace in the clause database's semantics.
        """
        started = time.perf_counter()
        self.stats.num_checks += 1
        self._model = None

        active = self.assertions + list(assumptions)
        try:
            if any(expr == FALSE for expr in active):
                self.stats.num_trivial += 1
                self.stats.num_unsat += 1
                return CheckResult.UNSAT
            if all(expr == TRUE for expr in active):
                self.stats.num_trivial += 1
                self.stats.num_sat += 1
                self._model = Model({})
                return CheckResult.SAT

            assumption_lits = self._blast_pending(assumptions)
            try:
                result = self._sat.solve(assumption_lits)
            except TimeoutError:
                return CheckResult.UNKNOWN

            if result.satisfiable:
                self._model = self._extract_model(active, result.model)
                self.stats.num_sat += 1
                return CheckResult.SAT
            self.stats.num_unsat += 1
            return CheckResult.UNSAT
        finally:
            self.stats.total_time += time.perf_counter() - started

    # ------------------------------------------------------------------ #
    def _blast_pending(self, assumptions: Sequence[Expr]) -> List[int]:
        """Blast new assertions into the live CNF; return assumption lits."""
        clauses_before = self._sat_clause_total()
        vars_before = self._sat.num_vars

        while self._base_blasted < len(self._base):
            expr = self._base[self._base_blasted]
            self._base_blasted += 1
            if expr == TRUE:
                continue
            self._blaster.assert_expr(expr)
        for scope in self._scopes:
            while scope.blasted < len(scope.assertions):
                expr = scope.assertions[scope.blasted]
                scope.blasted += 1
                if expr == TRUE:
                    continue
                self._sat.add_clause([-scope.guard,
                                      self._blaster.blast_bool(expr)])

        assumption_lits = [scope.guard for scope in self._scopes]
        for expr in assumptions:
            if expr == TRUE:
                continue
            assumption_lits.append(self._blaster.blast_bool(expr))

        self.stats.num_clauses += self._sat_clause_total() - clauses_before
        self.stats.num_variables += self._sat.num_vars - vars_before
        return assumption_lits

    def _sat_clause_total(self) -> int:
        return len(self._sat.clauses) + len(self._sat.learned)

    def _extract_model(self, active: List[Expr],
                       sat_model: Dict[int, bool]) -> Model:
        values: Dict[str, int] = {}
        for expr in active:
            for variable in collect_vars(expr):
                if variable.name in values:
                    continue
                if variable.op == "bvvar":
                    values[variable.name] = self._blaster.extract_value(
                        variable.name, sat_model)
                else:
                    lit = self._blaster.bool_vars.get(variable.name)
                    values[variable.name] = int(sat_model.get(lit, False)) \
                        if lit is not None else 0
        return Model(values)

    def model(self) -> Model:
        """The model found by the last :meth:`check` (SAT results only)."""
        if self._model is None:
            raise RuntimeError("no model available; call check() first")
        return self._model
