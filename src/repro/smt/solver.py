"""Solver facade: the reproduction's replacement for the Z3 API surface K2 uses.

Typical usage::

    solver = Solver()
    solver.add(bv_eq(x, y))
    solver.add(bv_ult(x, bv_const(10, 64)))
    if solver.check() == CheckResult.SAT:
        model = solver.model()
        print(model[x])

The solver applies three layers before touching the SAT core:

1. eager word-level simplification (performed by the expression constructors),
2. a trivial-decision pass (assertions that simplified to ``true``/``false``),
3. Tseitin bit-blasting followed by CDCL search.
"""

from __future__ import annotations

import enum
import time
from typing import Dict, List, Optional

from .bitblast import BitBlaster
from .bitvec import Expr, FALSE, TRUE, bool_and
from .cnf import CNF
from .sat import SatSolver
from .simplify import collect_vars, evaluate

__all__ = ["CheckResult", "Model", "Solver", "SolverStats"]


class CheckResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class Model:
    """A satisfying assignment, addressable by variable expression or name."""

    def __init__(self, values: Dict[str, int]):
        self._values = values

    def __getitem__(self, key) -> int:
        name = key.name if isinstance(key, Expr) else key
        return self._values.get(name, 0)

    def get(self, key, default: int = 0) -> int:
        name = key.name if isinstance(key, Expr) else key
        return self._values.get(name, default)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._values)

    def evaluate(self, expr: Expr):
        """Evaluate an arbitrary expression under this model."""
        return evaluate(expr, self._values)

    def __repr__(self) -> str:
        return f"Model({self._values!r})"


class SolverStats:
    """Bookkeeping for the equivalence-checking benchmarks (Table 4 / 6)."""

    def __init__(self) -> None:
        self.num_checks = 0
        self.num_sat = 0
        self.num_unsat = 0
        self.num_trivial = 0
        self.total_time = 0.0
        self.num_clauses = 0
        self.num_variables = 0

    def __repr__(self) -> str:
        return (f"SolverStats(checks={self.num_checks}, trivial={self.num_trivial}, "
                f"sat={self.num_sat}, unsat={self.num_unsat}, "
                f"time={self.total_time:.3f}s)")


class Solver:
    """Check satisfiability of conjunctions of boolean bit-vector formulas."""

    def __init__(self, max_conflicts: Optional[int] = 2_000_000):
        self._assertions: List[Expr] = []
        self._model: Optional[Model] = None
        self._max_conflicts = max_conflicts
        self.stats = SolverStats()

    # ------------------------------------------------------------------ #
    def add(self, expr: Expr) -> None:
        """Assert a boolean expression."""
        if not expr.is_bool:
            raise ValueError("assertions must be boolean expressions")
        self._assertions.append(expr)

    def push(self) -> int:
        """Return a checkpoint token for :meth:`pop`."""
        return len(self._assertions)

    def pop(self, token: int) -> None:
        del self._assertions[token:]

    def reset(self) -> None:
        self._assertions.clear()
        self._model = None

    @property
    def assertions(self) -> List[Expr]:
        return list(self._assertions)

    # ------------------------------------------------------------------ #
    def check(self) -> CheckResult:
        """Decide satisfiability of the conjunction of the assertions."""
        started = time.perf_counter()
        self.stats.num_checks += 1
        self._model = None

        combined = bool_and(*self._assertions) if self._assertions else TRUE
        if combined == FALSE:
            self.stats.num_trivial += 1
            self.stats.num_unsat += 1
            self.stats.total_time += time.perf_counter() - started
            return CheckResult.UNSAT
        if combined == TRUE:
            self.stats.num_trivial += 1
            self.stats.num_sat += 1
            self._model = Model({})
            self.stats.total_time += time.perf_counter() - started
            return CheckResult.SAT

        cnf = CNF()
        blaster = BitBlaster(cnf)
        blaster.assert_expr(combined)
        self.stats.num_clauses += len(cnf.clauses)
        self.stats.num_variables += cnf.num_vars

        try:
            result = SatSolver(cnf, max_conflicts=self._max_conflicts).solve()
        except TimeoutError:
            self.stats.total_time += time.perf_counter() - started
            return CheckResult.UNKNOWN

        if result.satisfiable:
            values: Dict[str, int] = {}
            for variable in collect_vars(combined):
                if variable.op == "bvvar":
                    values[variable.name] = blaster.extract_value(
                        variable.name, result.model)
                else:
                    lit = blaster.bool_vars.get(variable.name)
                    values[variable.name] = int(result.model.get(lit, False)) \
                        if lit is not None else 0
            self._model = Model(values)
            self.stats.num_sat += 1
            self.stats.total_time += time.perf_counter() - started
            return CheckResult.SAT

        self.stats.num_unsat += 1
        self.stats.total_time += time.perf_counter() - started
        return CheckResult.UNSAT

    def model(self) -> Model:
        """The model found by the last :meth:`check` (SAT results only)."""
        if self._model is None:
            raise RuntimeError("no model available; call check() first")
        return self._model
