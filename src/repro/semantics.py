"""Shared concrete semantics of BPF ALU and jump operations.

K2 generates both its interpreter and its verification-condition generator
from a single declarative specification of each instruction's semantics
(paper §7), which avoids the interpreter and the first-order-logic encoding
drifting apart.  This module plays that role for the reproduction: the
interpreter calls these functions directly, and the symbolic encoder's output
is differentially tested against them (``tests/test_equivalence_soundness.py``).

All values are Python integers interpreted as unsigned 64-bit words.
"""

from __future__ import annotations

from .bpf.opcodes import AluOp, JmpOp

__all__ = ["alu_op_concrete", "jump_taken_concrete", "byteswap", "to_signed",
           "to_unsigned"]

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1


def to_signed(value: int, bits: int = 64) -> int:
    """Reinterpret an unsigned ``bits``-wide value as signed."""
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        return value - (1 << bits)
    return value


def to_unsigned(value: int, bits: int = 64) -> int:
    """Reinterpret a signed value as unsigned ``bits``-wide."""
    return value & ((1 << bits) - 1)


def byteswap(value: int, width_bits: int) -> int:
    """The ``END`` (endianness conversion) primitive shared by both engines."""
    width_bytes = width_bits // 8
    data = (value & ((1 << width_bits) - 1)).to_bytes(width_bytes, "little")
    return int.from_bytes(data, "big")


def alu_op_concrete(op: AluOp, dst: int, src: int, is64: bool) -> int:
    """Evaluate one ALU operation.

    32-bit operations consume the low halves of their operands and
    zero-extend the 32-bit result into the destination, matching the
    ``bpf_add32`` example in paper §4.1.

    Division and modulo follow the BPF runtime semantics: ``x / 0 == 0`` and
    ``x % 0 == x`` (the kernel checker additionally rejects unguarded
    divisions, but the runtime value is defined).
    """
    width = 64 if is64 else 32
    mask = _U64 if is64 else _U32
    shift_mask = width - 1
    a = dst & mask
    b = src & mask

    if op == AluOp.ADD:
        result = a + b
    elif op == AluOp.SUB:
        result = a - b
    elif op == AluOp.MUL:
        result = a * b
    elif op == AluOp.DIV:
        result = 0 if b == 0 else a // b
    elif op == AluOp.MOD:
        result = a if b == 0 else a % b
    elif op == AluOp.OR:
        result = a | b
    elif op == AluOp.AND:
        result = a & b
    elif op == AluOp.XOR:
        result = a ^ b
    elif op == AluOp.LSH:
        result = a << (b & shift_mask)
    elif op == AluOp.RSH:
        result = a >> (b & shift_mask)
    elif op == AluOp.ARSH:
        result = to_signed(a, width) >> (b & shift_mask)
    elif op == AluOp.MOV:
        result = b
    elif op == AluOp.NEG:
        result = -a
    else:
        raise ValueError(f"unsupported ALU op {op!r}")
    return result & mask


def jump_taken_concrete(op: JmpOp, dst: int, src: int, is64: bool = True) -> bool:
    """Evaluate the predicate of a conditional jump."""
    width = 64 if is64 else 32
    mask = (1 << width) - 1
    a = dst & mask
    b = src & mask
    sa = to_signed(a, width)
    sb = to_signed(b, width)

    if op == JmpOp.JEQ:
        return a == b
    if op == JmpOp.JNE:
        return a != b
    if op == JmpOp.JGT:
        return a > b
    if op == JmpOp.JGE:
        return a >= b
    if op == JmpOp.JLT:
        return a < b
    if op == JmpOp.JLE:
        return a <= b
    if op == JmpOp.JSGT:
        return sa > sb
    if op == JmpOp.JSGE:
        return sa >= sb
    if op == JmpOp.JSLT:
        return sa < sb
    if op == JmpOp.JSLE:
        return sa <= sb
    if op == JmpOp.JSET:
        return (a & b) != 0
    if op == JmpOp.JA:
        return True
    raise ValueError(f"unsupported jump op {op!r}")
