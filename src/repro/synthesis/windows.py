"""Windowed segment synthesis: scaling the search to long programs.

Whole-program stochastic search degrades superlinearly with program length:
the proposal distribution spreads over every instruction, so the expected
time to visit any particular optimization site grows with the program, and
every solver query pays full-program encoding cost.  K2 localizes both
costs with windows (paper §5 IV); this module applies the same idea to the
*search itself*:

1. **Plan** — slice the source into overlapping candidate windows
   (:func:`plan_windows`) using the CFG and liveness passes of
   :mod:`repro.bpf.cfg` / :mod:`repro.bpf.liveness`.  Each
   :class:`SegmentWindow` carries its computed interface: live-in/live-out
   registers, the live stack bytes observable after the window, the basic
   blocks it spans and whether it contains helper calls.
2. **Search** — run the existing MCMC chains *per window* through the
   parallel :class:`~repro.synthesis.parallel.ChainController`, with
   proposals restricted to the window span and operand pools harvested from
   the window body (window-local pools).  Candidates are still verified as
   full programs by each chain's tiered pipeline, so every adopted rewrite
   is formally equivalent to the program it rewrote.
3. **Stitch** — adopt each window's best verified rewrite into the working
   program (candidates keep their NOP padding, so instruction indices stay
   stable across windows) and hand the next window the stitched result;
   two adjacent windows that both changed therefore compose by
   construction.  One master equivalence cache is threaded through every
   window's controller: all search bases are formally equivalent to the
   original source, so cached verdicts transfer soundly between windows.
4. **Re-verify** — compact the NOPs out of the final stitched program and
   prove it equivalent to the *original* source through a fresh full tiered
   verification pipeline before it is ever reported as a candidate.  If the
   proof does not conclude, the scheduler falls back to the source program.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..analysis import AbstractAnalyzer, resolve_analysis_kind
from ..bpf.cfg import build_cfg
from ..bpf.liveness import compute_liveness
from ..bpf.program import BpfProgram
from ..bpf.transforms import remove_nops
from ..engine import create_engine
from ..equivalence import EquivalenceCache, Window, WindowEquivalenceChecker
from ..perf.latency_model import DEFAULT_LATENCY_MODEL
from ..store import VerdictStore
from ..verification import PipelineStats, VerificationPipeline
from .cost import performance_cost
from .mcmc import ChainResult, VerifiedCandidate
from .params import ParameterSetting, all_parameter_settings
from .parallel import ChainController

__all__ = ["SegmentWindow", "WindowStats", "WindowedScheduler",
           "plan_windows", "split_budget"]


@dataclasses.dataclass(frozen=True)
class SegmentWindow:
    """One candidate window ``[start, end)`` with its computed interface."""

    start: int
    end: int
    #: Registers live into the window (the window precondition).
    live_in: FrozenSet[int]
    #: Registers live out of the window (the window postcondition).
    live_out: FrozenSet[int]
    #: Indices of the basic blocks the window intersects, in order.
    blocks: Tuple[int, ...]
    #: The window body contains at least one helper call.
    contains_call: bool
    #: Stack byte offsets that may be read after the window (``None`` when a
    #: post-window stack read could not be bounded — every byte observable).
    live_stack_out: Optional[FrozenSet[int]]

    def __len__(self) -> int:
        return self.end - self.start

    @property
    def span(self) -> Tuple[int, int]:
        return (self.start, self.end)

    @property
    def spans_blocks(self) -> bool:
        """True when the window crosses at least one basic-block boundary."""
        return len(self.blocks) > 1


@dataclasses.dataclass
class WindowStats:
    """What the scheduler did with one window (CLI / bench reporting)."""

    index: int
    start: int
    end: int
    spans_blocks: bool
    contains_call: bool
    iterations: int = 0
    verified_candidates: int = 0
    adopted: bool = False
    #: Best candidate's performance cost relative to the window's search
    #: base (negative = improvement); 0.0 when nothing was adopted.
    perf_gain: float = 0.0
    #: Real (non-NOP) instructions removed by the adopted rewrite.  Clamped
    #: at zero: a latency-goal adoption may trade instruction count for
    #: estimated latency (``perf_gain`` carries the true improvement).
    insns_removed: int = 0

    def as_dict(self) -> Dict[str, float]:
        return dataclasses.asdict(self)


def plan_windows(program: BpfProgram, window_size: int = 24,
                 overlap: int = 8) -> List[SegmentWindow]:
    """Slice ``program`` into overlapping windows with computed interfaces.

    Windows are ``window_size`` instructions long (the last one may be
    shorter), consecutive windows share ``overlap`` instructions, and every
    instruction is covered by at least one window.  Unlike the solver-side
    :func:`repro.equivalence.window.select_windows`, planning windows may
    span basic-block boundaries and contain helper calls — the per-window
    search verifies candidates as full programs, so the window body is not
    restricted to straight-line code.
    """
    if window_size < 2:
        raise ValueError("window_size must be at least 2")
    if not 0 <= overlap < window_size:
        raise ValueError("overlap must satisfy 0 <= overlap < window_size")
    instructions = program.instructions
    n = len(instructions)
    if n == 0:
        return []
    cfg = build_cfg(instructions)
    liveness = compute_liveness(instructions, cfg)
    stride = window_size - overlap

    windows: List[SegmentWindow] = []
    start = 0
    while start < n:
        end = min(start + window_size, n)
        block_indices = sorted({cfg.block_of_insn[i] for i in range(start, end)})
        live_stack = WindowEquivalenceChecker._live_stack_offsets(
            program, Window(start, end))
        windows.append(SegmentWindow(
            start=start,
            end=end,
            live_in=liveness.live_in_at(start),
            live_out=liveness.live_out_at(end - 1),
            blocks=tuple(block_indices),
            contains_call=any(instructions[i].is_call
                              for i in range(start, end)),
            live_stack_out=None if live_stack is None
            else frozenset(live_stack)))
        if end >= n:
            break
        start += stride
    return windows


def split_budget(iterations: int, num_windows: int) -> List[int]:
    """Split one chain's iteration budget evenly across the windows.

    The windowed and whole-program searches spend the *same* total number
    of proposals per chain — the fairness basis of the windowed bench.
    Remainder iterations go to the earliest windows; with fewer iterations
    than windows, trailing windows receive zero and are skipped.
    """
    if num_windows <= 0:
        return []
    base, remainder = divmod(max(iterations, 0), num_windows)
    return [base + (1 if index < remainder else 0)
            for index in range(num_windows)]


class WindowedScheduler:
    """Per-window MCMC search with stitching and full re-verification."""

    def __init__(self, options, kernel_checker=None):
        self.options = options
        # Lazily constructed only for the post-processing filter, mirroring
        # Synthesizer; the caller usually hands its own checker over.
        self.kernel_checker = kernel_checker

    # ------------------------------------------------------------------ #
    def optimize(self, source: BpfProgram,
                 settings: Optional[List[ParameterSetting]] = None):
        from .search import SearchResult  # circular at import time
        from ..verifier import KernelChecker

        options = self.options
        started = time.perf_counter()
        source.validate()
        if settings is None:
            settings = all_parameter_settings(options.goal)[
                :options.num_parameter_settings]
        if self.kernel_checker is None:
            self.kernel_checker = KernelChecker(mode=options.analysis)

        plan = plan_windows(source, options.window_size,
                            options.window_overlap)
        budgets = split_budget(options.iterations_per_chain, len(plan))

        current = source
        # One durable store shared by every window's controller: each
        # controller preseeds from it (keyed on its own search base) and
        # flushes its discoveries back, so the file is read once per window
        # base, written by one controller at a time, and a re-run warm-starts
        # every window.
        store = VerdictStore(options.store_path) \
            if getattr(options, "store_path", None) else None
        store_stats: Optional[Dict[str, object]] = None
        master_cache = EquivalenceCache()
        #: Distinct counterexamples discovered by any window, replayed into
        #: every later window's controller (valid for every search base:
        #: all bases are equivalent to the source).
        master_pool: List = []
        master_pool_keys: set = set()
        chain_results: List[ChainResult] = []
        window_stats: List[WindowStats] = []
        verification: Dict[str, Dict[str, float]] = {}
        rejected = 0
        num_generations = 0
        executor_used = "serial"

        for index, (window, budget) in enumerate(zip(plan, budgets)):
            stats = WindowStats(index=index, start=window.start,
                                end=window.end,
                                spans_blocks=window.spans_blocks,
                                contains_call=window.contains_call)
            window_stats.append(stats)
            if budget <= 0:
                continue
            # Each window gets its own checkpoint sub-key: a restarted
            # windowed job re-runs completed windows cold (bit-identical —
            # the shared store replays their verdicts) and resumes the
            # window that was in flight from its last generation.
            base_key = getattr(options, "checkpoint_key", None)
            # The caller's progress listener sees every window's generations
            # tagged with the window index/span, so a streaming consumer
            # (the serve daemon's watch events) can attribute progress.
            listener = getattr(options, "progress_listener", None)
            if listener is not None:
                def window_listener(info, _listener=listener, _index=index,
                                    _span=window.span):
                    _listener(dict(info, window=_index,
                                   window_span=list(_span)))
            else:
                window_listener = None
            window_options = dataclasses.replace(
                options, iterations_per_chain=budget, window_mode=False,
                progress_listener=window_listener,
                checkpoint_key=f"{base_key}/w{index}" if base_key else None)
            controller = ChainController(current, settings, window_options,
                                         proposal_region=window.span,
                                         keep_nops=True,
                                         collect_all_counterexamples=True,
                                         store=store)
            controller.preseed_cache(master_cache.export_entries())
            controller.preseed_counterexamples(master_pool)
            results = controller.run()
            if controller.store_summary is not None:
                if store_stats is None:
                    store_stats = dict(controller.store_summary)
                else:
                    for field, value in controller.store_summary.items():
                        if isinstance(value, int):
                            store_stats[field] += value
            master_cache.merge(controller.shared_cache, include_counters=True)
            for test in controller.pool_entries():
                key = test.freeze_key()
                if key not in master_pool_keys:
                    master_pool_keys.add(key)
                    master_pool.append(test)
            chain_results.extend(results)
            num_generations += controller.num_generations
            executor_used = controller.executor_kind
            for result in results:
                PipelineStats.merge_dicts(verification,
                                          result.statistics.verification)
                stats.iterations += result.statistics.iterations
                stats.verified_candidates += \
                    result.statistics.verified_candidates

            best, newly_rejected = self._best_candidate(results)
            rejected += newly_rejected
            if best is not None and best.perf_cost < 0:
                stats.adopted = True
                stats.perf_gain = best.perf_cost
                stats.insns_removed = max(
                    current.num_real_instructions
                    - best.program.num_real_instructions, 0)
                # Candidates keep their NOP padding (keep_nops=True), so
                # the adopted program has the same length as the source and
                # later windows' spans remain valid.
                current = best.program

        stitched = current.with_instructions(
            remove_nops(current.instructions))
        best_candidate, stitch_verified, kernel_rejected = self._finalize(
            source, stitched, settings, verification,
            total_iterations=sum(r.statistics.iterations
                                 for r in chain_results),
            elapsed=time.perf_counter() - started)
        rejected += kernel_rejected

        return SearchResult(
            source=source,
            best=best_candidate,
            top_candidates=[best_candidate] if best_candidate else [],
            chain_results=chain_results,
            settings_used=settings,
            elapsed_seconds=time.perf_counter() - started,
            rejected_by_kernel_checker=rejected,
            cache_stats=master_cache.stats(),
            counterexamples_shared=len(master_pool),
            num_generations=num_generations,
            executor_used=executor_used,
            verification_stats=verification,
            window_stats=window_stats,
            stitch_verified=stitch_verified,
            store_stats=store_stats)

    # ------------------------------------------------------------------ #
    def _best_candidate(self, results: List[ChainResult]
                        ) -> Tuple[Optional[VerifiedCandidate], int]:
        """Best kernel-checker-accepted candidate across one window's chains.

        Only the best candidate is ever adopted, so the (path-sensitive,
        expensive) kernel-checker filter scans the perf-sorted list and
        stops at the first accepted candidate instead of analysing all of
        them the way ``Synthesizer`` must for its top-k output.
        """
        candidates = [candidate
                      for result in results
                      for candidate in result.candidates]
        candidates.sort(key=lambda c: (c.perf_cost, c.instruction_count))
        if not self.options.kernel_checker_filter:
            return (candidates[0] if candidates else None), 0
        rejected = 0
        for candidate in candidates:
            if self.kernel_checker.load(candidate.program).accepted:
                return candidate, rejected
            rejected += 1
        return None, rejected

    # ------------------------------------------------------------------ #
    def _finalize(self, source: BpfProgram, stitched: BpfProgram,
                  settings: List[ParameterSetting],
                  verification: Dict[str, Dict[str, float]],
                  total_iterations: int, elapsed: float
                  ) -> Tuple[Optional[VerifiedCandidate], Optional[bool], int]:
        """Re-verify the stitched program against the original source.

        Every adopted rewrite was already proven equivalent to the program
        it rewrote, so equivalence to the source holds transitively — but
        the stitched program is only ever *reported* after the full tiered
        pipeline has proven it directly against the source (with a fresh
        cache, so the verdict is a proof, not a lookup).  An inconclusive
        proof or a kernel-checker rejection falls back to the source.
        """
        options = self.options
        if stitched.same_instructions(source):
            return None, None, 0

        analyzer = AbstractAnalyzer() \
            if resolve_analysis_kind(options.analysis) == "fused" else None
        pipeline = VerificationPipeline(options=options.equivalence,
                                        engine=create_engine(options.engine),
                                        analyzer=analyzer)
        outcome = pipeline.verify(source, stitched)
        PipelineStats.merge_dicts(verification, pipeline.stats.as_dict())
        if not outcome.result.equivalent:
            return None, False, 0
        # The proof concluded: stitch_verified stays True even when the
        # kernel-checker filter rejects the program afterwards (a distinct
        # outcome, reported separately via rejected_by_kernel_checker).
        if options.kernel_checker_filter \
                and not self.kernel_checker.load(stitched).accepted:
            return None, True, 1

        cost_settings = settings[0].cost if settings else None
        perf = performance_cost(source, stitched, cost_settings) \
            if cost_settings is not None else float(
                stitched.num_real_instructions
                - source.num_real_instructions)
        return VerifiedCandidate(
            program=stitched,
            perf_cost=perf,
            instruction_count=stitched.num_real_instructions,
            estimated_latency=DEFAULT_LATENCY_MODEL.program_cost(stitched),
            found_at_iteration=total_iterations,
            found_at_seconds=elapsed), True, 0
