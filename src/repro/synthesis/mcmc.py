"""The Metropolis-Hastings search over BPF programs (paper §3).

One :class:`MarkovChain` runs the loop of Fig. 1: propose a rewrite (§3.1),
evaluate its cost (§3.2) using the test suite, the safety checker and — when
every test passes — the tiered verification pipeline
(:class:`repro.verification.VerificationPipeline`: interpreter replay →
cache → window check → full symbolic equivalence), then accept or reject the
proposal (§3.3).  Equivalence and safety counterexamples feed back into the
test suite so similar candidates are pruned without further solver calls.
"""

from __future__ import annotations

import dataclasses
import math
import random
import time
from typing import Dict, List, Optional

from ..analysis import AbstractAnalyzer, resolve_analysis_kind
from ..bpf.program import BpfProgram
from ..engine import create_engine
from ..equivalence import EquivalenceCache, EquivalenceOptions, EquivalenceResult
from ..perf.latency_model import DEFAULT_LATENCY_MODEL, OpcodeLatencyModel
from ..safety import SafetyChecker
from ..verification import VerificationPipeline
from .cost import (
    CostSettings, ERR_MAX, error_cost, performance_cost, total_cost,
)
from .proposals import ProposalGenerator, RewriteRuleProbabilities
from .testcases import TestSuite

__all__ = ["ChainStatistics", "VerifiedCandidate", "ChainResult", "MarkovChain"]


@dataclasses.dataclass
class ChainStatistics:
    """Counters describing one chain's run (feed Tables 1, 6 and 9).

    ``elapsed_seconds`` is the chain's cumulative wall clock: repeated
    :meth:`MarkovChain.run` calls (the parallel engine runs each chain in
    several *generations*) accumulate rather than overwrite it.
    """

    iterations: int = 0
    proposals_accepted: int = 0
    proposals_unsafe: int = 0
    test_failures: int = 0
    equivalence_checks: int = 0
    equivalence_cache_hits: int = 0
    counterexamples_added: int = 0
    verified_candidates: int = 0
    best_found_at_iteration: Optional[int] = None
    best_found_at_seconds: Optional[float] = None
    elapsed_seconds: float = 0.0
    #: Cache hits on entries discovered by *another* chain (parallel engine).
    cross_chain_cache_hits: int = 0
    #: Cache hits on entries preseeded from the durable verdict store —
    #: verdicts computed by a *previous run* (cross-run warm start).
    cross_run_cache_hits: int = 0
    #: Counterexamples received from other chains via the shared pool.
    counterexamples_received: int = 0
    #: Number of ``run()`` calls (generations) this chain has executed.
    generations: int = 0
    #: Generations of this chain re-dispatched because a pool worker died
    #: (the controller rebuilds the pool and replays the seeded unit, so
    #: retries change wall clock and this counter, never the results).
    worker_retries: int = 0
    #: Per-stage verification-pipeline counters (attempts/accepts/rejects/
    #: escalations/skips/seconds per stage), snapshotted from the pipeline.
    verification: Dict[str, Dict[str, float]] = dataclasses.field(
        default_factory=dict)
    #: Instruction span ``[window_start, window_end)`` this chain was
    #: restricted to by the windowed scheduler; ``None`` for whole-program
    #: chains.  Surfaced so per-window statistics survive into SearchResult.
    window_start: Optional[int] = None
    window_end: Optional[int] = None


@dataclasses.dataclass
class VerifiedCandidate:
    """A safe candidate formally proven equivalent to the source program."""

    program: BpfProgram
    perf_cost: float
    instruction_count: int
    estimated_latency: float
    found_at_iteration: int
    found_at_seconds: float


@dataclasses.dataclass
class ChainResult:
    """Outcome of running one Markov chain."""

    best: Optional[VerifiedCandidate]
    candidates: List[VerifiedCandidate]
    statistics: ChainStatistics


class MarkovChain:
    """One MCMC chain with a fixed cost configuration (one Table 8 column)."""

    def __init__(self, source: BpfProgram,
                 cost_settings: Optional[CostSettings] = None,
                 probabilities: Optional[RewriteRuleProbabilities] = None,
                 seed: int = 0,
                 test_suite: Optional[TestSuite] = None,
                 beta_anneal: float = 1.0,
                 equivalence_options: Optional[EquivalenceOptions] = None,
                 latency_model: OpcodeLatencyModel = DEFAULT_LATENCY_MODEL,
                 cache: Optional[EquivalenceCache] = None,
                 lazy_safety: bool = True,
                 pipeline: Optional[VerificationPipeline] = None,
                 engine=None,
                 analysis: Optional[str] = None,
                 proposal_region: Optional[tuple] = None,
                 keep_nops: bool = False):
        source.validate()
        self.source = source
        self.settings = cost_settings or CostSettings()
        self.rng = random.Random(seed)
        # ``proposal_region`` restricts every rewrite to one instruction span
        # (windowed segment synthesis); ``keep_nops`` reports verified
        # candidates at full padded length so the windowed scheduler can
        # stitch them positionally before the final NOP compaction.
        self.proposer = ProposalGenerator(source, self.rng, probabilities,
                                          region=proposal_region)
        self.keep_nops = keep_nops
        # One long-lived execution engine per chain, shared by the test
        # suite and the verification pipeline's replay stage so the current
        # program and its proposals are decoded once for both.  ``engine``
        # accepts an engine kind string (``legacy``/``decoded``) or a ready
        # engine instance.
        if engine is None or isinstance(engine, str):
            engine = create_engine(engine)
        self.engine = engine
        self.tests = test_suite or TestSuite(source, seed=seed, engine=engine)
        # One fused abstract analyzer per chain, shared by the safety
        # checker and the pipeline's static-safety pre-stage so both hit
        # one per-block/program memo (the static-analysis analogue of the
        # shared decode cache above).  ``--analysis legacy`` selects the
        # original two-pass implementation and drops the pre-stage.
        self.analysis = resolve_analysis_kind(analysis)
        analyzer = AbstractAnalyzer() if self.analysis == "fused" else None
        self.safety = SafetyChecker(mode=self.analysis, analyzer=analyzer)
        # The verification pipeline owns the equivalence options and the
        # cache; the ``equivalence_options``/``cache`` kwargs are kept for
        # backwards compatibility and feed the pipeline it builds.
        if pipeline is None:
            pipeline = VerificationPipeline(
                options=equivalence_options or EquivalenceOptions(),
                cache=cache, engine=engine, analyzer=analyzer)
        elif equivalence_options is not None or cache is not None:
            raise ValueError("pass either a pipeline or the deprecated "
                             "equivalence_options/cache kwargs, not both")
        self.pipeline = pipeline
        self.latency_model = latency_model
        self.beta_anneal = beta_anneal
        self.lazy_safety = lazy_safety
        self.stats = ChainStatistics()
        if proposal_region is not None:
            self.stats.window_start, self.stats.window_end = proposal_region
        self.verified: List[VerifiedCandidate] = []
        #: Counterexamples this chain discovered itself (drained by the
        #: parallel controller to share with sibling chains).
        self.discovered_counterexamples: List = []

        self._current = list(source.instructions)
        self._current_cost = self._evaluate(self.source)[0]

    # ------------------------------------------------------------------ #
    # Deprecated accessors, delegating to the pipeline (single options
    # object; see EquivalenceOptions docstring).
    @property
    def equivalence_options(self) -> EquivalenceOptions:
        return self.pipeline.options

    @property
    def cache(self) -> EquivalenceCache:
        return self.pipeline.cache

    @property
    def equivalence(self):
        return self.pipeline.checker

    @property
    def window_equivalence(self):
        return self.pipeline.window_checker

    # ------------------------------------------------------------------ #
    def run(self, iterations: int,
            time_budget_seconds: Optional[float] = None) -> ChainResult:
        """Run the chain for ``iterations`` proposals (or until the budget).

        ``run`` may be called repeatedly: the chain resumes from its current
        program, RNG state, test suite and cache, and the returned
        :class:`ChainResult` is cumulative over every call so far.  The
        parallel engine relies on this to run chains in generations.
        """
        started = time.perf_counter()
        # Solver sessions never cross a generation boundary: process pools
        # drop them in pickling, so serial and thread runs drop them too —
        # every backend traverses the same solver history.
        self.pipeline.begin_generation()
        for _ in range(iterations):
            if time_budget_seconds is not None and \
                    time.perf_counter() - started > time_budget_seconds:
                break
            self.step(started)
        self.stats.elapsed_seconds += time.perf_counter() - started
        self.stats.generations += 1
        self.stats.cross_chain_cache_hits = self.cache.cross_chain_hits
        self.stats.cross_run_cache_hits = self.cache.store_hits
        self.stats.verification = self.pipeline.stats.as_dict()
        ordered = sorted(self.verified, key=lambda c: c.perf_cost)
        return ChainResult(best=ordered[0] if ordered else None,
                           candidates=ordered, statistics=self.stats)

    # ------------------------------------------------------------------ #
    def receive_counterexamples(self, tests) -> int:
        """Adopt counterexamples found by other chains (shared pool).

        Duplicates already in the suite are ignored.  Returns the number of
        tests actually added.
        """
        added = 0
        for test in tests:
            if self.tests.add_counterexample(test):
                added += 1
        self.stats.counterexamples_received += added
        return added

    def drain_discovered_counterexamples(self) -> List:
        """Hand the chain's own new counterexamples to the controller."""
        drained = self.discovered_counterexamples
        self.discovered_counterexamples = []
        return drained

    # ------------------------------------------------------------------ #
    def step(self, started: Optional[float] = None) -> None:
        """One Metropolis-Hastings step (§3.3)."""
        self.stats.iterations += 1
        proposal_insns = self.proposer.propose(self._current)
        candidate = self.source.with_instructions(proposal_insns)
        candidate_cost, _ = self._evaluate(
            candidate, started=started)

        accept_probability = 1.0 if candidate_cost <= self._current_cost else \
            math.exp(-self.beta_anneal * (candidate_cost - self._current_cost))
        if self.rng.random() < accept_probability:
            self._current = proposal_insns
            self._current_cost = candidate_cost
            self.stats.proposals_accepted += 1

    # ------------------------------------------------------------------ #
    def _evaluate(self, candidate: BpfProgram,
                  started: Optional[float] = None):
        """Compute the total cost of a candidate (Fig. 1 pipeline)."""
        settings = self.settings

        # Test-case execution (cheap pruning before any static analysis).
        candidate_outputs = self.tests.run_candidate(candidate)
        source_outputs = self.tests.source_outputs
        tests_pass = all(
            s.observable() == c.observable()
            for s, c in zip(source_outputs, candidate_outputs))

        # Safety checking (§6).  With ``lazy_safety`` the full static analysis
        # only runs for candidates that survive the test suite: candidates
        # that already fail tests carry a large error cost, so the additional
        # ERR_MAX term would not change the search's behaviour for them.
        safety_result = None
        safe_cost = 0.0
        if tests_pass or not self.lazy_safety:
            safety_result = self.safety.check(candidate)
            safe_cost = 0.0 if safety_result.safe else ERR_MAX
            if not safety_result.safe:
                self.stats.proposals_unsafe += 1
                # Feed back *every* safety counterexample (an earlier version
                # sliced to the first one): the suite deduplicates, and every
                # genuinely new input also enters the cross-chain shared pool
                # via discovered_counterexamples.
                for counterexample in safety_result.counterexamples:
                    if self.tests.add_counterexample(counterexample):
                        self.stats.counterexamples_added += 1
                        self.discovered_counterexamples.append(counterexample)

        # Formal equivalence checking only when every test passes (§3.2) and
        # the candidate is structurally sound enough to encode.
        unequal = 1
        if tests_pass and (safety_result is None or safety_result.safe):
            equivalence = self._check_equivalence(candidate)
            unequal = 0 if equivalence.equivalent else 1
            if equivalence.counterexample is not None:
                if self.tests.add_counterexample(equivalence.counterexample):
                    self.stats.counterexamples_added += 1
                    self.discovered_counterexamples.append(
                        equivalence.counterexample)
                    candidate_outputs = self.tests.run_candidate(candidate)
                    source_outputs = self.tests.source_outputs
            if equivalence.equivalent and safety_result is not None \
                    and safety_result.safe:
                self._record_verified(candidate, started)
        else:
            self.stats.test_failures += 1

        error = error_cost(source_outputs, candidate_outputs, settings, unequal)
        perf = performance_cost(self.source, candidate, settings,
                                self.latency_model)
        return total_cost(error, perf, safe_cost, settings), unequal

    # ------------------------------------------------------------------ #
    def _check_equivalence(self, candidate: BpfProgram) -> EquivalenceResult:
        outcome = self.pipeline.verify(self.source, candidate)
        if outcome.cache_hit:
            self.stats.equivalence_cache_hits += 1
        else:
            self.stats.equivalence_checks += 1
        return outcome.result

    # ------------------------------------------------------------------ #
    def _record_verified(self, candidate: BpfProgram,
                         started: Optional[float]) -> None:
        from ..bpf.transforms import remove_nops

        perf = performance_cost(self.source, candidate, self.settings,
                                self.latency_model)
        # Cumulative wall clock: prior generations plus the current run().
        elapsed = self.stats.elapsed_seconds + (
            (time.perf_counter() - started) if started else 0.0)
        reported = candidate if self.keep_nops else \
            candidate.with_instructions(remove_nops(candidate.instructions))
        entry = VerifiedCandidate(
            program=reported,
            perf_cost=perf,
            instruction_count=candidate.num_real_instructions,
            estimated_latency=self.latency_model.program_cost(candidate),
            found_at_iteration=self.stats.iterations,
            found_at_seconds=elapsed)
        self.stats.verified_candidates += 1
        if not self.verified or perf < min(c.perf_cost for c in self.verified):
            self.stats.best_found_at_iteration = self.stats.iterations
            self.stats.best_found_at_seconds = elapsed
        self.verified.append(entry)
        # Keep the list bounded: retain the best 16 candidates.
        self.verified.sort(key=lambda c: c.perf_cost)
        del self.verified[16:]
