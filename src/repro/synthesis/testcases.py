"""Test-case generation and management for the synthesis loop.

K2 evaluates each proposal against a suite of automatically-generated test
cases to prune programs that are not equivalent to the source (Fig. 1).  The
suite starts from randomly-generated inputs appropriate for the program's
hook and grows with every counterexample returned by the equivalence checker
or the safety checker.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..bpf.hooks import CtxFieldKind
from ..bpf.program import BpfProgram
from ..engine import create_engine
from ..interpreter import Interpreter, ProgramInput, ProgramOutput

__all__ = ["TestCaseGenerator", "TestSuite"]


def _ethernet_ipv4_packet(rng: random.Random, length: int) -> bytes:
    """A loosely-structured Ethernet+IPv4+UDP packet, padded to ``length``."""
    length = max(length, 42)
    packet = bytearray(rng.randrange(256) for _ in range(length))
    packet[0:6] = bytes(rng.randrange(256) for _ in range(6))      # dst MAC
    packet[6:12] = bytes(rng.randrange(256) for _ in range(6))     # src MAC
    packet[12:14] = (0x0800).to_bytes(2, "big")                    # IPv4
    packet[14] = 0x45                                              # IHL=5
    packet[23] = rng.choice([6, 17])                               # TCP/UDP
    packet[26:30] = bytes(rng.randrange(256) for _ in range(4))    # src IP
    packet[30:34] = bytes(rng.randrange(256) for _ in range(4))    # dst IP
    packet[16:18] = (length - 14).to_bytes(2, "big")               # tot_len
    return bytes(packet)


class TestCaseGenerator:
    """Generates random, hook-appropriate program inputs."""

    def __init__(self, program: BpfProgram, seed: int = 0):
        self.program = program
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------ #
    def generate(self, count: int) -> List[ProgramInput]:
        return [self.generate_one() for _ in range(count)]

    def generate_one(self) -> ProgramInput:
        rng = self.rng
        hook = self.program.hook
        if hook.has_packet:
            style = rng.random()
            if style < 0.6:
                packet = _ethernet_ipv4_packet(rng, rng.choice([60, 64, 128, 256]))
            elif style < 0.85:
                packet = bytes(rng.randrange(256)
                               for _ in range(rng.randrange(0, 96)))
            else:
                packet = bytes(rng.randrange(0, 2) * 255
                               for _ in range(rng.choice([14, 34, 64])))
        else:
            packet = b""

        ctx: Dict[str, int] = {}
        for field in hook.fields:
            if field.kind != CtxFieldKind.SCALAR:
                continue
            ctx[field.name] = rng.randrange(0, 1 << min(8 * field.size, 32))

        map_contents: Dict[int, Dict[bytes, bytes]] = {}
        for definition in self.program.maps.definitions():
            entries: Dict[bytes, bytes] = {}
            for _ in range(rng.randrange(0, min(4, definition.max_entries) + 1)):
                if definition.map_type.value in ("array", "percpu_array",
                                                 "devmap", "cpumap"):
                    key_int = rng.randrange(definition.max_entries)
                    key = key_int.to_bytes(definition.key_size, "little")
                else:
                    key = bytes(rng.randrange(256)
                                for _ in range(definition.key_size))
                value = bytes(rng.randrange(256)
                              for _ in range(definition.value_size))
                entries[key] = value
            if entries:
                map_contents[definition.fd] = entries

        return ProgramInput(
            packet=packet, ctx=ctx, map_contents=map_contents,
            random_values=[rng.randrange(1 << 32) for _ in range(4)],
            time_ns=rng.randrange(1 << 48),
            cpu_id=rng.randrange(8))


class TestSuite:
    """The growing set of tests shared by one synthesis run (Fig. 1)."""

    def __init__(self, source: BpfProgram, num_initial: int = 24, seed: int = 0,
                 interpreter: Optional[Interpreter] = None,
                 engine=None):
        self.source = source
        # One long-lived engine per suite: its decode cache persists across
        # every candidate evaluation of the owning chain.  ``interpreter`` is
        # the pre-engine name for the same slot, kept for compatibility.
        self.engine = engine if engine is not None \
            else (interpreter or create_engine())
        self.interpreter = self.engine
        self.generator = TestCaseGenerator(source, seed=seed)
        #: How many leading tests are seed-generated (everything after them
        #: is an accumulated counterexample — the part a checkpoint stores;
        #: the prefix is regenerated from the seed on restore).
        self.num_initial = num_initial
        self.tests: List[ProgramInput] = self.generator.generate(num_initial)
        self._seen = {test.freeze_key() for test in self.tests}
        self._source_outputs: Optional[List[ProgramOutput]] = None

    # ------------------------------------------------------------------ #
    @property
    def source_outputs(self) -> List[ProgramOutput]:
        if self._source_outputs is None or \
                len(self._source_outputs) != len(self.tests):
            self._source_outputs = self.engine.run_batch(self.source,
                                                         self.tests)
        return self._source_outputs

    def run_candidate(self, candidate: BpfProgram) -> List[ProgramOutput]:
        return self.engine.run_batch(candidate, self.tests)

    def add_counterexample(self, test: ProgramInput) -> bool:
        """Add a counterexample returned by a checker; dedup by content."""
        key = test.freeze_key()
        if key in self._seen:
            return False
        self._seen.add(key)
        self.tests.append(test)
        self._source_outputs = None
        return True

    def __len__(self) -> int:
        return len(self.tests)
