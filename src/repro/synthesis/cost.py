"""Cost functions for the stochastic search (paper §3.2).

The total cost of a candidate is::

    f(p) = alpha * err(p) + beta * perf(p) + gamma * safe(p)

* ``err(p)`` measures how far the candidate's outputs are from the source
  program's outputs over the test suite, plus an ``unequal * num_tests`` term
  driven by formal equivalence checking.  Eight variants exist (2 diff
  functions x 2 normalizations x 2 num_tests interpretations); all eight are
  exercised by the parameter sweep of Table 8/9.
* ``perf(p)`` is either the extra instruction count (compactness goal) or the
  extra estimated latency (latency goal) relative to the source.
* ``safe(p)`` is 0 for safe candidates and ``ERR_MAX`` for unsafe ones — the
  candidate is not discarded outright because the path to a better safe
  program may pass through unsafe ones.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Sequence

from ..bpf.program import BpfProgram
from ..interpreter import ProgramOutput
from ..perf.latency_model import OpcodeLatencyModel, DEFAULT_LATENCY_MODEL

__all__ = ["DiffKind", "NumTestsVariant", "PerformanceGoal", "CostSettings",
           "ERR_MAX", "output_distance", "error_cost", "performance_cost",
           "total_cost"]

#: Penalty assigned to unsafe candidates (paper: "a large value ERR_MAX").
ERR_MAX = 100_000.0

#: Penalty contributed by a test case on which the candidate faulted.
_FAULT_PENALTY = 256.0


class DiffKind(enum.Enum):
    """How the distance between two output values is measured."""

    POPCOUNT = "pop"    # number of differing bits (STOKE's choice)
    ABSOLUTE = "abs"    # absolute numerical difference (for counters etc.)


class NumTestsVariant(enum.Enum):
    """Interpretation of the ``num_tests`` factor in the error cost."""

    INCORRECT = "incorrect"   # number of tests the candidate got wrong
    CORRECT = "correct"       # number of tests the candidate got right


class PerformanceGoal(enum.Enum):
    """What the search optimizes (paper §8 setup)."""

    INSTRUCTION_COUNT = "inst"
    LATENCY = "latency"


@dataclasses.dataclass(frozen=True)
class CostSettings:
    """One point in the cost-function configuration space (Table 8)."""

    diff_kind: DiffKind = DiffKind.ABSOLUTE
    normalize_by_tests: bool = False
    num_tests_variant: NumTestsVariant = NumTestsVariant.INCORRECT
    alpha: float = 0.5      # weight of the error cost
    beta: float = 5.0       # weight of the performance cost
    gamma: float = 1.0      # weight of the safety cost
    goal: PerformanceGoal = PerformanceGoal.INSTRUCTION_COUNT


def _popcount_distance(a: int, b: int) -> float:
    return float(bin((a ^ b) & ((1 << 64) - 1)).count("1"))


def _absolute_distance(a: int, b: int) -> float:
    return float(abs(a - b))


def output_distance(source: ProgramOutput, candidate: ProgramOutput,
                    diff_kind: DiffKind) -> float:
    """Distance between two observable outputs on one test case (diff())."""
    if candidate.faulted and source.faulted:
        return 0.0
    if candidate.faulted != source.faulted:
        return _FAULT_PENALTY

    diff = _popcount_distance if diff_kind == DiffKind.POPCOUNT \
        else _absolute_distance
    distance = diff(source.return_value or 0, candidate.return_value or 0)

    # Packet contents: byte-wise distance plus a length mismatch penalty.
    if len(source.packet) != len(candidate.packet):
        distance += 8.0 * abs(len(source.packet) - len(candidate.packet))
    for a, b in zip(source.packet, candidate.packet):
        if a != b:
            distance += diff(a, b)

    # Map contents: keys present in one but not the other, then value bytes.
    for fd in set(source.maps) | set(candidate.maps):
        source_entries = source.maps.get(fd, {})
        candidate_entries = candidate.maps.get(fd, {})
        for key in set(source_entries) | set(candidate_entries):
            left = source_entries.get(key)
            right = candidate_entries.get(key)
            if left is None or right is None:
                distance += 64.0
                continue
            left_value = int.from_bytes(left, "little")
            right_value = int.from_bytes(right, "little")
            distance += diff(left_value, right_value)
    return distance


def error_cost(source_outputs: Sequence[ProgramOutput],
               candidate_outputs: Sequence[ProgramOutput],
               settings: CostSettings,
               unequal: int = 0) -> float:
    """The error component err(p) of the cost function (equation (1))."""
    if not source_outputs:
        return float(unequal)
    per_test = [output_distance(s, c, settings.diff_kind)
                for s, c in zip(source_outputs, candidate_outputs)]
    weight = 1.0 / len(per_test) if settings.normalize_by_tests else 1.0
    total = weight * sum(per_test)

    num_wrong = sum(1 for d in per_test if d > 0)
    if settings.num_tests_variant == NumTestsVariant.INCORRECT:
        num_tests = num_wrong
    else:
        num_tests = len(per_test) - num_wrong
    return total + unequal * num_tests


def performance_cost(source: BpfProgram, candidate: BpfProgram,
                     settings: CostSettings,
                     latency_model: OpcodeLatencyModel = DEFAULT_LATENCY_MODEL
                     ) -> float:
    """perf(p): extra instructions or extra estimated latency vs. the source."""
    if settings.goal == PerformanceGoal.INSTRUCTION_COUNT:
        return float(candidate.num_real_instructions
                     - source.num_real_instructions)
    return latency_model.program_cost(candidate) - latency_model.program_cost(source)


def total_cost(error: float, perf: float, safe: float,
               settings: CostSettings) -> float:
    """Combine the three components with the chain's (alpha, beta, gamma)."""
    return (settings.alpha * error
            + settings.beta * perf
            + settings.gamma * safe)
