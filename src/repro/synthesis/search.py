"""Multi-chain search orchestration (paper §8 "how K2 is set up").

K2 launches several Markov chains, one per parameter setting of Table 8,
and returns the top-k best safe, formally-equivalent programs found across
all of them.  The reproduction runs the chains sequentially (MCMC convergence
depends on the number of proposals evaluated, not on wall-clock parallelism)
and bounds each chain by an iteration count instead of a timeout so results
are reproducible.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional

from ..bpf.program import BpfProgram
from ..equivalence import EquivalenceOptions
from ..verifier import KernelChecker
from .cost import PerformanceGoal
from .mcmc import ChainResult, MarkovChain, VerifiedCandidate
from .params import ParameterSetting, all_parameter_settings
from .testcases import TestSuite

__all__ = ["SearchOptions", "SearchResult", "Synthesizer"]


@dataclasses.dataclass
class SearchOptions:
    """Knobs for one synthesis run."""

    goal: PerformanceGoal = PerformanceGoal.INSTRUCTION_COUNT
    iterations_per_chain: int = 2000
    num_parameter_settings: int = 4
    top_k: int = 1
    seed: int = 0
    num_initial_tests: int = 24
    time_budget_seconds: Optional[float] = None
    equivalence: EquivalenceOptions = dataclasses.field(
        default_factory=EquivalenceOptions)
    #: Remove outputs rejected by the kernel-checker model (post-processing).
    kernel_checker_filter: bool = True


@dataclasses.dataclass
class SearchResult:
    """Everything a caller (or a benchmark table) needs about one run."""

    source: BpfProgram
    best: Optional[VerifiedCandidate]
    top_candidates: List[VerifiedCandidate]
    chain_results: List[ChainResult]
    settings_used: List[ParameterSetting]
    elapsed_seconds: float
    rejected_by_kernel_checker: int = 0

    @property
    def best_program(self) -> BpfProgram:
        return self.best.program if self.best else self.source

    @property
    def compression(self) -> float:
        """Fractional reduction in instruction count vs. the source program."""
        if not self.best:
            return 0.0
        original = self.source.num_real_instructions
        return (original - self.best.instruction_count) / original

    def total_iterations(self) -> int:
        return sum(result.statistics.iterations for result in self.chain_results)


class Synthesizer:
    """Run the full K2 search: several chains plus kernel-checker filtering."""

    def __init__(self, options: Optional[SearchOptions] = None):
        self.options = options or SearchOptions()
        self.kernel_checker = KernelChecker()

    # ------------------------------------------------------------------ #
    def optimize(self, source: BpfProgram,
                 settings: Optional[List[ParameterSetting]] = None
                 ) -> SearchResult:
        options = self.options
        started = time.perf_counter()
        if settings is None:
            settings = all_parameter_settings(options.goal)[
                :options.num_parameter_settings]

        chain_results: List[ChainResult] = []
        for index, setting in enumerate(settings):
            suite = TestSuite(source, num_initial=options.num_initial_tests,
                              seed=options.seed + index)
            chain = MarkovChain(
                source,
                cost_settings=setting.cost,
                probabilities=setting.probabilities,
                seed=options.seed * 1009 + index,
                test_suite=suite,
                equivalence_options=options.equivalence)
            budget = None
            if options.time_budget_seconds is not None:
                budget = options.time_budget_seconds / len(settings)
            chain_results.append(chain.run(options.iterations_per_chain,
                                           time_budget_seconds=budget))

        candidates = [candidate
                      for result in chain_results
                      for candidate in result.candidates]
        candidates.sort(key=lambda c: (c.perf_cost, c.instruction_count))

        rejected = 0
        if options.kernel_checker_filter:
            accepted = []
            for candidate in candidates:
                if self.kernel_checker.load(candidate.program).accepted:
                    accepted.append(candidate)
                else:
                    rejected += 1
            candidates = accepted

        top = self._deduplicate(candidates)[:max(options.top_k, 1)]
        return SearchResult(
            source=source,
            best=top[0] if top else None,
            top_candidates=top,
            chain_results=chain_results,
            settings_used=settings,
            elapsed_seconds=time.perf_counter() - started,
            rejected_by_kernel_checker=rejected)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _deduplicate(candidates: List[VerifiedCandidate]) -> List[VerifiedCandidate]:
        seen = set()
        unique = []
        for candidate in candidates:
            key = candidate.program.structural_key()
            if key in seen:
                continue
            seen.add(key)
            unique.append(candidate)
        return unique
