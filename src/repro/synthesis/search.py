"""Multi-chain search orchestration (paper §8 "how K2 is set up").

K2 launches several Markov chains, one per parameter setting of Table 8,
and returns the top-k best safe, formally-equivalent programs found across
all of them.  The chains run as independent, seeded work units dispatched
over a :mod:`concurrent.futures` executor by the
:class:`~repro.synthesis.parallel.ChainController` — a process pool when
``num_workers > 1``, a deterministic in-process serial executor otherwise —
and share discoveries through a cross-chain equivalence cache and a
counterexample pool (see :mod:`repro.synthesis.parallel` for the
determinism model).  Each chain is bounded by an iteration count instead of
a timeout so results are reproducible.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional

from ..bpf.program import BpfProgram
from ..equivalence import EquivalenceOptions
from ..verification import PipelineStats
from ..verifier import KernelChecker
from .cost import PerformanceGoal
from .mcmc import ChainResult, VerifiedCandidate
from .params import ParameterSetting, all_parameter_settings
from .parallel import ChainController

__all__ = ["SearchOptions", "SearchResult", "Synthesizer",
           "assemble_search_result", "deduplicate_candidates"]


@dataclasses.dataclass
class SearchOptions:
    """Knobs for one synthesis run."""

    goal: PerformanceGoal = PerformanceGoal.INSTRUCTION_COUNT
    iterations_per_chain: int = 2000
    num_parameter_settings: int = 4
    top_k: int = 1
    seed: int = 0
    num_initial_tests: int = 24
    time_budget_seconds: Optional[float] = None
    equivalence: EquivalenceOptions = dataclasses.field(
        default_factory=EquivalenceOptions)
    #: Remove outputs rejected by the kernel-checker model (post-processing).
    kernel_checker_filter: bool = True
    #: Worker processes/threads to dispatch chains over.  ``1`` keeps the
    #: search in-process (serial executor) and fully sequential.
    num_workers: int = 1
    #: Executor backend: ``auto`` (process pool when ``num_workers > 1``,
    #: serial otherwise), ``serial``, ``process`` or ``thread``.
    executor: str = "auto"
    #: Iterations per generation between cross-chain synchronisation points.
    #: ``None`` (or any non-positive value) runs each chain to completion in
    #: a single generation (no mid-run sharing — the original sequential
    #: behaviour).
    sync_interval: Optional[int] = None
    #: Share equivalence-cache entries across chains at generation boundaries.
    share_cache: bool = True
    #: Share discovered counterexamples across chains at generation boundaries.
    share_counterexamples: bool = True
    #: Execution engine for candidate evaluation: ``batch`` (lockstep
    #: vectorized tier over SoA machine images, falling back to fused for
    #: small batches), ``fused`` (superinstruction traces compiled per
    #: basic-block region), ``decoded`` (decode-once micro-op engine) or
    #: ``legacy`` (the reference interpreter) — the ablation knob behind
    #: the CLI's ``--engine``.  All four produce bit-identical search
    #: results; only throughput differs.
    engine: str = "batch"
    #: Static safety analysis implementation: ``fused`` (the unified
    #: incremental abstract interpreter of :mod:`repro.analysis`, shared by
    #: the safety checker, the pipeline pre-stage and the kernel-checker
    #: filter) or ``legacy`` (the original two-pass analysis) — the
    #: ablation knob behind the CLI's ``--analysis``.
    analysis: str = "fused"
    #: Windowed segment synthesis (the CLI's ``--windowed``): slice the
    #: source into overlapping windows (:mod:`repro.synthesis.windows`), run
    #: the chains per window with window-local proposals, stitch the best
    #: rewrites and re-verify the stitched program through the full tiered
    #: pipeline.  Programs no longer than ``window_size`` fall back to the
    #: whole-program search.
    window_mode: bool = False
    #: Instructions per candidate window.
    window_size: int = 24
    #: Instructions shared by two consecutive windows.
    window_overlap: int = 8
    #: Path of the durable cross-run verdict store (the CLI's ``--store``).
    #: ``None`` keeps the run fully in-memory.  With a store the controller
    #: preseeds the shared cache and analyzer memos from disk before the
    #: first generation and flushes fresh discoveries back at every
    #: generation boundary; stored verdicts replay exactly what the solver
    #: would recompute, so warm starts are bit-identical to cold runs.
    store_path: Optional[str] = None
    #: Also preseed stored counterexamples into every chain's test suite.
    #: Off by default: extra suite entries change the error cost and hence
    #: the search trajectory (legitimately — more pruning before any solver
    #: call — but no longer bit-identical to a cold run).
    store_preseed_counterexamples: bool = False
    #: Stable identifier for checkpointed, resumable searches (requires
    #: ``store_path``): the controller persists its full state to the store
    #: under this key after every generation, and a later run with the same
    #: key, source and options resumes bit-identically from the last
    #: completed generation.  ``None`` disables checkpointing.  Windowed
    #: runs derive one sub-key per window (``<key>/w<index>``).
    checkpoint_key: Optional[str] = None
    #: Called after each generation boundary (checkpoint already written)
    #: as ``hook(completed, total)``; returning ``False`` interrupts the
    #: search with :class:`~repro.synthesis.parallel.SearchInterrupted` at
    #: that resumable point.  The serve daemon uses this for progress
    #: reporting, cancellation and graceful shutdown.  Never shipped to
    #: workers (the controller calls it in-process), so it need not pickle.
    generation_hook: Optional[Callable[[int, int], Optional[bool]]] = None
    #: Called after each generation boundary with a progress payload
    #: (``{"completed", "total", "checkpoint", "chains": [...]}`` — see
    #: :meth:`~repro.synthesis.parallel.ChainController._notify_generation`)
    #: *before* ``generation_hook``.  Purely observational: its return value
    #: is ignored and it can never perturb the search.  The serve daemon
    #: uses it to push streaming ``watch`` events.  Like the hook it runs
    #: in-process only and need not pickle.
    progress_listener: Optional[Callable[[Dict], None]] = None
    #: Global index of this run's first chain.  A sharded job slices its
    #: parameter settings into contiguous shards and runs each slice in its
    #: own controller; the offset keeps every chain's seeds derived from its
    #: *global* index, so shard-local chain ``i`` is bit-identical to chain
    #: ``offset + i`` of the unsharded run (see ``repro.service.shards``).
    chain_index_offset: int = 0
    #: Generations re-dispatched after a dying process-pool worker before
    #: the failure is propagated (process executor only; serial/thread
    #: failures are never retried — their units share the parent's chains).
    max_worker_retries: int = 3
    #: Base of the exponential backoff between pool rebuilds.
    worker_retry_backoff_seconds: float = 0.05


@dataclasses.dataclass
class SearchResult:
    """Everything a caller (or a benchmark table) needs about one run."""

    source: BpfProgram
    best: Optional[VerifiedCandidate]
    top_candidates: List[VerifiedCandidate]
    chain_results: List[ChainResult]
    settings_used: List[ParameterSetting]
    elapsed_seconds: float
    rejected_by_kernel_checker: int = 0
    #: Aggregate equivalence-cache statistics across every chain, with
    #: hits/misses accumulated coherently through the merge path.
    cache_stats: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: Distinct counterexamples that entered the cross-chain pool.
    counterexamples_shared: int = 0
    #: Generations the controller ran (1 unless ``sync_interval`` was set).
    num_generations: int = 1
    #: Concrete executor backend the controller used.
    executor_used: str = "serial"
    #: Per-stage verification-pipeline counters summed over every chain:
    #: ``{stage: {attempts, accepts, rejects, escalations, skips, seconds}}``
    #: plus a ``_pipeline`` bucket with ``queries``/``inconclusive``.
    verification_stats: Dict[str, Dict[str, float]] = dataclasses.field(
        default_factory=dict)
    #: Per-window scheduling statistics (windowed runs only, in window
    #: order); see :class:`repro.synthesis.windows.WindowStats`.
    window_stats: List = dataclasses.field(default_factory=list)
    #: Whether the stitched program was re-proven equivalent to the source
    #: by the full tiered pipeline (``None`` for whole-program runs and for
    #: windowed runs whose stitch equals the source).  A verified stitch can
    #: still be withheld by the kernel-checker filter, in which case
    #: ``best`` is None and ``rejected_by_kernel_checker`` records it.
    stitch_verified: Optional[bool] = None
    #: Durable verdict-store accounting (``None`` when no store was used):
    #: path plus preseeded/flushed verdict, counterexample, analysis-memo
    #: and record counts.
    store_stats: Optional[Dict[str, object]] = None

    @property
    def best_program(self) -> BpfProgram:
        return self.best.program if self.best else self.source

    @property
    def compression(self) -> float:
        """Fractional reduction in instruction count vs. the source program.

        Robust to degenerate runs: a source with no real instructions (all
        NOPs) or a best candidate no smaller than the source yields ``0.0``
        instead of dividing by zero / going negative.
        """
        if not self.best:
            return 0.0
        original = self.source.num_real_instructions
        if original <= 0:
            return 0.0
        return max(original - self.best.instruction_count, 0) / original

    @property
    def per_chain_seconds(self) -> List[float]:
        """Wall clock spent inside each chain, in settings order."""
        return [result.statistics.elapsed_seconds
                for result in self.chain_results]

    def total_iterations(self) -> int:
        return sum(result.statistics.iterations for result in self.chain_results)

    @property
    def worker_retries(self) -> int:
        """Generations re-dispatched after a worker death, over all chains."""
        return sum(result.statistics.worker_retries
                   for result in self.chain_results)


def deduplicate_candidates(candidates: List[VerifiedCandidate]
                           ) -> List[VerifiedCandidate]:
    """Drop structurally-identical candidates, keeping the first of each."""
    seen = set()
    unique = []
    for candidate in candidates:
        key = candidate.program.structural_key()
        if key in seen:
            continue
        seen.add(key)
        unique.append(candidate)
    return unique


def assemble_search_result(source: BpfProgram,
                           chain_results: List[ChainResult],
                           settings: List[ParameterSetting],
                           options: SearchOptions,
                           kernel_checker: Optional[KernelChecker] = None,
                           *,
                           elapsed_seconds: float = 0.0,
                           cache_stats: Optional[Dict[str, float]] = None,
                           counterexamples_shared: int = 0,
                           num_generations: int = 1,
                           executor_used: str = "serial",
                           store_stats: Optional[Dict[str, object]] = None
                           ) -> SearchResult:
    """Post-process raw chain results into a :class:`SearchResult`.

    This is the single assembly path for whole-program runs *and* for the
    shard-merge path in :mod:`repro.service.shards`: candidates are sorted
    by ``(perf_cost, instruction_count)``, optionally filtered through the
    kernel-checker model, deduplicated structurally and cut to ``top_k`` —
    all deterministic given ``chain_results`` in chain-index order, which
    is what makes a merged sharded run bit-identical to an unsharded one.
    """
    candidates = [candidate
                  for result in chain_results
                  for candidate in result.candidates]
    candidates.sort(key=lambda c: (c.perf_cost, c.instruction_count))

    rejected = 0
    if options.kernel_checker_filter:
        if kernel_checker is None:
            kernel_checker = KernelChecker(mode=options.analysis)
        accepted = []
        for candidate in candidates:
            if kernel_checker.load(candidate.program).accepted:
                accepted.append(candidate)
            else:
                rejected += 1
        candidates = accepted

    verification: Dict[str, Dict[str, float]] = {}
    for result in chain_results:
        PipelineStats.merge_dicts(verification,
                                  result.statistics.verification)

    top = deduplicate_candidates(candidates)[:max(options.top_k, 1)]
    return SearchResult(
        source=source,
        best=top[0] if top else None,
        top_candidates=top,
        chain_results=chain_results,
        settings_used=settings,
        elapsed_seconds=elapsed_seconds,
        rejected_by_kernel_checker=rejected,
        cache_stats=dict(cache_stats or {}),
        counterexamples_shared=counterexamples_shared,
        num_generations=num_generations,
        executor_used=executor_used,
        verification_stats=verification,
        store_stats=store_stats)


class Synthesizer:
    """Run the full K2 search: several chains plus kernel-checker filtering."""

    def __init__(self, options: Optional[SearchOptions] = None):
        self.options = options or SearchOptions()
        self.kernel_checker = KernelChecker(mode=self.options.analysis)

    # ------------------------------------------------------------------ #
    def optimize(self, source: BpfProgram,
                 settings: Optional[List[ParameterSetting]] = None
                 ) -> SearchResult:
        options = self.options
        if options.window_mode \
                and len(source.instructions) > options.window_size:
            from .windows import WindowedScheduler

            scheduler = WindowedScheduler(options,
                                          kernel_checker=self.kernel_checker)
            return scheduler.optimize(source, settings=settings)
        started = time.perf_counter()
        if settings is None:
            settings = all_parameter_settings(options.goal)[
                :options.num_parameter_settings]

        controller = ChainController(source, settings, options)
        chain_results = controller.run()

        return assemble_search_result(
            source, chain_results, settings, options, self.kernel_checker,
            elapsed_seconds=time.perf_counter() - started,
            cache_stats=controller.shared_cache.stats(),
            counterexamples_shared=controller.counterexamples_shared,
            num_generations=controller.num_generations,
            executor_used=controller.executor_kind,
            store_stats=controller.store_summary)
