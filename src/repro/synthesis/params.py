"""The Markov-chain parameter settings K2 explores in parallel (Table 8).

K2 launches its search with 16 different parameter sets, each combining a
variant of the error cost function with a set of rewrite-rule probabilities,
and returns the best programs found across all of them (paper §8, Appendix
F.1).  The five best-performing settings are reproduced verbatim from
Table 8; the remaining eleven fill out the cross-product of the cost-function
variants so the parameter sweep of Table 9 has the full 16 columns.
"""

from __future__ import annotations

import dataclasses
from typing import List

from .cost import CostSettings, DiffKind, NumTestsVariant, PerformanceGoal
from .proposals import RewriteRuleProbabilities

__all__ = ["ParameterSetting", "TABLE8_SETTINGS", "all_parameter_settings",
           "best_parameter_settings"]


@dataclasses.dataclass(frozen=True)
class ParameterSetting:
    """One column of Table 8: a cost configuration plus rewrite probabilities."""

    setting_id: int
    cost: CostSettings
    probabilities: RewriteRuleProbabilities

    def describe(self) -> dict:
        return {
            "id": self.setting_id,
            "error cost": self.cost.diff_kind.value.upper(),
            "avg by #tests": "Yes" if self.cost.normalize_by_tests else "No",
            "alpha": self.cost.alpha,
            "beta": self.cost.beta,
            "prob_ir": self.probabilities.instruction_replacement,
            "prob_or": self.probabilities.operand_replacement,
            "prob_nr": self.probabilities.nop_replacement,
            "prob_me1": self.probabilities.memory_exchange_1,
            "prob_me2": self.probabilities.memory_exchange_2,
            "prob_cir": self.probabilities.contiguous_replacement,
        }


_PROBS_A = RewriteRuleProbabilities(0.2, 0.4, 0.15, 0.2, 0.0, 0.05)
_PROBS_B = RewriteRuleProbabilities(0.17, 0.33, 0.15, 0.17, 0.0, 0.18)
_PROBS_C = RewriteRuleProbabilities(0.17, 0.33, 0.15, 0.0, 0.17, 0.18)

#: The five best-performing settings, copied from Table 8 of the paper.
TABLE8_SETTINGS: List[ParameterSetting] = [
    ParameterSetting(1, CostSettings(DiffKind.ABSOLUTE, False,
                                     NumTestsVariant.INCORRECT, 0.5, 5.0), _PROBS_A),
    ParameterSetting(2, CostSettings(DiffKind.POPCOUNT, False,
                                     NumTestsVariant.INCORRECT, 0.5, 5.0), _PROBS_B),
    ParameterSetting(3, CostSettings(DiffKind.POPCOUNT, False,
                                     NumTestsVariant.CORRECT, 0.5, 5.0), _PROBS_A),
    ParameterSetting(4, CostSettings(DiffKind.ABSOLUTE, False,
                                     NumTestsVariant.INCORRECT, 0.5, 5.0), _PROBS_C),
    ParameterSetting(5, CostSettings(DiffKind.ABSOLUTE, True,
                                     NumTestsVariant.INCORRECT, 0.5, 1.5), _PROBS_C),
]


def all_parameter_settings(goal: PerformanceGoal = PerformanceGoal.INSTRUCTION_COUNT
                           ) -> List[ParameterSetting]:
    """All 16 settings: Table 8's five plus the rest of the cross-product."""
    settings = [dataclasses.replace(
        setting, cost=dataclasses.replace(setting.cost, goal=goal))
        for setting in TABLE8_SETTINGS]
    setting_id = len(settings) + 1
    probability_cycle = [_PROBS_A, _PROBS_B, _PROBS_C]
    index = 0
    for diff_kind in (DiffKind.ABSOLUTE, DiffKind.POPCOUNT):
        for normalize in (False, True):
            for variant in (NumTestsVariant.INCORRECT, NumTestsVariant.CORRECT):
                for beta in (5.0, 1.5):
                    if len(settings) >= 16:
                        return settings
                    cost = CostSettings(diff_kind, normalize, variant,
                                        alpha=0.5, beta=beta, goal=goal)
                    candidate = ParameterSetting(
                        setting_id, cost, probability_cycle[index % 3])
                    duplicate = any(
                        existing.cost == candidate.cost
                        and existing.probabilities == candidate.probabilities
                        for existing in settings)
                    if not duplicate:
                        settings.append(candidate)
                        setting_id += 1
                    index += 1
    return settings


def best_parameter_settings(count: int = 5,
                            goal: PerformanceGoal = PerformanceGoal.INSTRUCTION_COUNT
                            ) -> List[ParameterSetting]:
    """The ``count`` best settings (Table 8 order), with the given goal."""
    return all_parameter_settings(goal)[:count]
