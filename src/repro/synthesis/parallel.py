"""Parallel multi-chain synthesis: controller/worker orchestration.

The paper launches one Markov chain per Table 8 parameter setting and
attributes most of its wall-clock savings to pruning solver calls via
caching (§5, Table 6).  This module runs those chains as independent,
seeded work units dispatched over a :mod:`concurrent.futures` executor
(:mod:`repro.synthesis.executors`), while letting the chains share
discoveries through two channels:

* a cross-chain :class:`~repro.equivalence.EquivalenceCache` keyed on
  canonicalized programs — each worker cache is merged back into the
  controller between generations, so a verdict computed by one chain
  prunes solver calls in every other chain;
* a counterexample pool — a test case found by one chain (from the
  equivalence checker or the safety checker) is added to every other
  chain's test suite, pruning non-equivalent candidates without any
  solver involvement.

Determinism
-----------
Sharing happens only at *generation* boundaries: each chain's iteration
budget is split into chunks of ``SearchOptions.sync_interval`` proposals,
and all shared state (cache entries, counterexample pool) is snapshotted
once per generation, *before* any chain of that generation is dispatched.
Every chain in a generation therefore sees the same snapshot, which makes
the computation independent of dispatch order and executor backend: a
process-pool run produces exactly the same candidates and statistics as a
serial run (only wall-clock fields differ).  With the default single
generation (``sync_interval=None``) the initial snapshot is empty and each
chain behaves exactly like the original sequential engine.

Chains are shipped to workers whole (a :class:`MarkovChain` pickles,
including its RNG, test suite and cache) and shipped back mutated, so
state carries across generations with no separate bookkeeping.

Durable warm start
------------------
With ``SearchOptions.store_path`` set the controller opens a
:class:`~repro.store.VerdictStore` and becomes its single writer: verdicts,
counterexamples and analyzer memos persisted by earlier runs are preseeded
into the shared state before the first generation, and each generation's
fresh discoveries are flushed back after its merge.  Workers never touch the
store — they receive preseeds through the same delta channels used for
cross-chain sharing and buffer their discoveries in their own caches/memos,
which keeps the multi-process path single-writer by construction.  Preseeded
cache entries replay exactly the verdict (and counterexample) the solver
would recompute, and preseeded analyzer memos replay exactly the analysis
outcome, so a warm-started search walks a bit-identical trajectory to a cold
one — only faster.  Preseeding stored counterexamples into the chains' test
suites *does* legitimately perturb the trajectory (suite contents feed the
error cost), so it is opt-in via
``SearchOptions.store_preseed_counterexamples``.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import dataclasses
import time
from typing import Dict, List, Optional, Tuple

from ..analysis.analyzer import AnalysisOutcome
from ..bpf.program import BpfProgram
from ..engine import create_engine
from ..equivalence import EquivalenceCache
from ..equivalence.checker import EquivalenceResult
from ..interpreter import ProgramInput
from ..store import VerdictStore
from .checkpoint import (
    apply_chain_state, build_controller_payload, decode_controller_payload,
)
from .executors import create_executor, resolve_executor_kind
from .mcmc import ChainResult, MarkovChain
from .params import ParameterSetting
from .testcases import TestSuite

__all__ = ["ChainWorkUnit", "ChainWorkUnitResult", "run_chain_generation",
           "ChainController", "SearchInterrupted"]


class SearchInterrupted(RuntimeError):
    """A generation hook stopped the search at a generation boundary.

    Raised *after* the boundary's store flush and checkpoint write, so the
    interrupted run is exactly as resumable as a killed one: re-running the
    same search with the same ``checkpoint_key`` picks up at the next
    generation.  The daemon's cancel and graceful-shutdown paths rely on
    this.
    """


@dataclasses.dataclass
class ChainWorkUnit:
    """One generation of one chain, self-contained and picklable."""

    chain_index: int
    chain: MarkovChain
    iterations: int
    time_budget_seconds: Optional[float]
    shared_cache_entries: Dict[Tuple, EquivalenceResult]
    shared_counterexamples: List[ProgramInput]
    #: Analyzer program-memo entries to seed into the worker's analyzer
    #: (store preseeds plus sibling discoveries; delta since last sync).
    shared_analysis_entries: Dict[Tuple, AnalysisOutcome] = \
        dataclasses.field(default_factory=dict)
    #: Cache keys whose entries came from the durable store — tagged on the
    #: worker cache so its hits count as cross-run (``store_hits``).
    store_keys: frozenset = frozenset()
    #: Ship the analyzer's program memo back with the result (set when the
    #: controller persists memos to a store).
    export_analysis: bool = False


@dataclasses.dataclass
class ChainWorkUnitResult:
    """What a worker sends back: the mutated chain plus its cumulative result."""

    chain_index: int
    chain: MarkovChain
    result: ChainResult
    #: The worker analyzer's program memo (content key → outcome), exported
    #: when the unit asked for it; empty otherwise.
    analysis_entries: Dict[Tuple, AnalysisOutcome] = \
        dataclasses.field(default_factory=dict)


#: Test-only fault injection: when set, called with the unit at the top of
#: every worker execution.  Forked pool workers inherit the parent's module
#: state, so the crash-injection tests install a hook here that SIGKILLs
#: the first worker to claim a marker file.
_FAULT_HOOK = None


def run_chain_generation(unit: ChainWorkUnit) -> ChainWorkUnitResult:
    """Execute one work unit (module-level so process pools can import it)."""
    if _FAULT_HOOK is not None:
        _FAULT_HOOK(unit)
    chain = unit.chain
    if unit.shared_cache_entries and chain.pipeline.options.enable_cache:
        chain.pipeline.cache.seed(unit.shared_cache_entries, foreign=True)
    if unit.store_keys and chain.pipeline.options.enable_cache:
        chain.pipeline.cache.mark_store_origin(unit.store_keys)
    if unit.shared_counterexamples:
        chain.receive_counterexamples(unit.shared_counterexamples)
    analyzer = chain.pipeline.analyzer
    if unit.shared_analysis_entries and analyzer is not None:
        analyzer.seed_program_memo(unit.shared_analysis_entries)
    result = chain.run(unit.iterations,
                       time_budget_seconds=unit.time_budget_seconds)
    analysis_entries = {}
    if unit.export_analysis and analyzer is not None:
        analysis_entries = analyzer.export_program_memo()
    return ChainWorkUnitResult(chain_index=unit.chain_index, chain=chain,
                               result=result,
                               analysis_entries=analysis_entries)


class ChainController:
    """Fans chain generations out to an executor and aggregates shared state.

    After :meth:`run` returns, ``shared_cache`` holds the union of every
    chain's cache entries with coherent aggregate counters (hits/misses
    accumulated across chains via :meth:`EquivalenceCache.merge`), and
    ``counterexamples_shared`` counts the distinct tests that entered the
    cross-chain pool.
    """

    def __init__(self, source: BpfProgram, settings: List[ParameterSetting],
                 options, proposal_region: Optional[Tuple[int, int]] = None,
                 keep_nops: bool = False,
                 collect_all_counterexamples: bool = False,
                 store: Optional[VerdictStore] = None):
        self.source = source
        self.settings = settings
        self.options = options
        #: Restrict every chain's proposals to one instruction span and keep
        #: candidates NOP-padded at full length (windowed segment synthesis;
        #: see :mod:`repro.synthesis.windows`).
        self.proposal_region = proposal_region
        self.keep_nops = keep_nops
        #: Collect discovered counterexamples into the pool even when they
        #: can no longer be delivered to a sibling chain (final generation,
        #: single chain) — the windowed scheduler harvests the pool and
        #: replays it into the *next* window's controller.
        self.collect_all_counterexamples = collect_all_counterexamples
        self.executor_kind = resolve_executor_kind(
            options.executor, options.num_workers)
        self.shared_cache = EquivalenceCache()
        self.num_generations = 0
        #: (origin chain index, test) for every distinct shared counterexample.
        self._pool: List[Tuple[int, ProgramInput]] = []
        self._pool_keys: set = set()
        #: Append-only log of shared cache entries, so each chain can be sent
        #: only the delta since its last sync instead of the full snapshot.
        self._cache_log: List[Tuple[Tuple, EquivalenceResult]] = []
        self._cache_watermarks: List[int] = []
        self._pool_watermarks: List[int] = []
        #: Append-only log of analyzer program-memo entries, delta-shipped to
        #: workers like the cache log (their analyzers restart cold every
        #: process-pool generation: pickling ships configuration only).
        self._analysis_log: List[Tuple[Tuple, AnalysisOutcome]] = []
        self._analysis_seen: set = set()
        self._analysis_watermarks: List[int] = []
        #: Durable cross-run store; the controller is its single writer.
        #: An explicit instance wins (the windowed scheduler shares one
        #: across its per-window controllers); otherwise built from
        #: ``options.store_path``.
        if store is None and getattr(options, "store_path", None):
            store = VerdictStore(options.store_path)
        self.store = store
        #: Canonical keys preseeded from the store this run (first-dispatch
        #: tagging of worker caches for cross-run hit accounting).
        self._store_keys: frozenset = frozenset()
        #: How far into each log the store already reflects (preseeds are
        #: placed behind these marks so they are never re-recorded).
        self._store_flush_cache_mark = 0
        self._store_flush_pool_mark = 0
        self._store_flush_analysis_mark = 0
        self.store_summary: Optional[Dict[str, object]] = None
        if self.store is not None:
            self.store_summary = {
                "path": self.store.path,
                "preseeded_verdicts": 0, "preseeded_counterexamples": 0,
                "preseeded_analysis": 0, "flushed_verdicts": 0,
                "flushed_counterexamples": 0, "flushed_analysis": 0,
                "flushed_records": 0,
            }

    # ------------------------------------------------------------------ #
    @property
    def counterexamples_shared(self) -> int:
        return len(self._pool)

    # ------------------------------------------------------------------ #
    def pool_entries(self) -> List[ProgramInput]:
        """Every distinct counterexample in the pool, in discovery order."""
        return [test for _, test in self._pool]

    def preseed_counterexamples(self, tests: List[ProgramInput]) -> int:
        """Seed the pool before :meth:`run` (cross-window reuse).

        Seeded tests carry origin ``-1``, so the delta path delivers them
        to *every* chain with its first generation.  Distinguishing inputs
        are valid for any window's search base (all bases are equivalent to
        the source), so a counterexample found by one window prunes
        non-equivalent candidates in every later window at the test stage,
        with no solver involvement.  Returns the number adopted.
        """
        inserted = 0
        for test in tests:
            key = test.freeze_key()
            if key in self._pool_keys:
                continue
            self._pool_keys.add(key)
            self._pool.append((-1, test))
            inserted += 1
        return inserted

    def preseed_cache(self, entries: Dict[Tuple, EquivalenceResult]) -> int:
        """Seed the shared cache before :meth:`run` (cross-window reuse).

        The windowed scheduler carries one master cache across its
        per-window searches; every search base is formally equivalent to the
        original source, so "equivalent/non-equivalent to the base" is the
        same predicate for every window and the entries transfer soundly.
        Entries are appended to the delta log, so every chain receives them
        with its first generation.  Returns the number of entries adopted.
        """
        inserted = 0
        for key, value in entries.items():
            if self.shared_cache.seed({key: value}, foreign=True):
                self._cache_log.append((key, value))
                inserted += 1
        return inserted

    # ------------------------------------------------------------------ #
    def run(self) -> List[ChainResult]:
        options = self.options
        generations = self._generation_schedule(options.iterations_per_chain)
        self.num_generations = len(generations)

        start_generation = 0
        chains: Optional[List[MarkovChain]] = None
        resumed = self._try_resume(generations)
        if resumed is not None:
            start_generation, chains = resumed
        else:
            self._preseed_from_store()
            chains = [self._build_chain(index, setting)
                      for index, setting in enumerate(self.settings)]
        chain_budget = None
        if options.time_budget_seconds is not None:
            chain_budget = options.time_budget_seconds / len(self.settings)

        # On resume every chain has completed at least one generation, so
        # its cumulative result is reconstructible from the chain itself —
        # which also covers a crash after the final generation's checkpoint
        # but before the run returned.
        results: List[Optional[ChainResult]] = [
            self._result_snapshot(chain) if start_generation > 0 else None
            for chain in chains]
        self._cache_watermarks = [0] * len(chains)
        self._pool_watermarks = [0] * len(chains)
        self._analysis_watermarks = [0] * len(chains)
        export_analysis = self.store is not None

        pool = create_executor(self.executor_kind, options.num_workers)
        try:
            for generation in range(start_generation, len(generations)):
                iterations = generations[generation]
                # Shared state is frozen once per generation, before anything
                # is dispatched: every chain sees the state as of the same
                # point, so results are independent of dispatch order and
                # backend.  Workers retain what they were seeded with, so
                # each chain is sent only the delta since its last sync.
                units = [
                    ChainWorkUnit(
                        chain_index=index,
                        chain=chain,
                        iterations=iterations,
                        time_budget_seconds=self._remaining_budget(
                            chain_budget, chain),
                        shared_cache_entries=self._cache_delta_for(index),
                        shared_counterexamples=self._pool_delta_for(index),
                        shared_analysis_entries=self._analysis_delta_for(index),
                        store_keys=self._store_keys if generation == 0
                        else frozenset(),
                        export_analysis=export_analysis)
                    for index, chain in enumerate(chains)]
                outcomes, pool = self._dispatch_generation(pool, units)
                # Merge deterministically, in chain-index order.  Skip pool
                # collection after the final generation: a counterexample
                # that can never be delivered to a sibling was not shared
                # (unless a harvester — the windowed scheduler or the durable
                # store — wants it anyway).
                last = generation == len(generations) - 1
                for outcome in sorted(outcomes, key=lambda o: o.chain_index):
                    chains[outcome.chain_index] = outcome.chain
                    results[outcome.chain_index] = outcome.result
                    self._absorb(outcome.chain_index, outcome.chain,
                                 collect_counterexamples=not last,
                                 analysis_entries=outcome.analysis_entries)
                self._flush_store()
                self._write_checkpoint(generation, generations, chains)
                self._notify_generation(generation + 1, len(generations),
                                        chains)
        finally:
            pool.shutdown(wait=True)

        self._clear_checkpoint()
        for chain in chains:
            self.shared_cache.merge(chain.cache, include_counters=True)
        return [result for result in results if result is not None]

    # ------------------------------------------------------------------ #
    # Worker supervision (bounded retry on a dying process pool)
    # ------------------------------------------------------------------ #
    def _dispatch_generation(self, pool, units):
        """Run one generation's units; rebuild a broken process pool.

        A SIGKILL'd worker surfaces as :class:`BrokenProcessPool` on every
        future of the generation.  Process workers receive *pickled copies*
        of the chains, so the parent's units are untouched by a partial
        generation — resubmitting them replays the generation from its
        seeded snapshot and the results stay bit-identical to an
        uninterrupted run.  Serial and thread executors share the parent's
        chain objects (a failed unit may have mutated them), so for those
        backends the error propagates instead of being retried.  Retries
        are bounded with exponential backoff and surfaced via
        ``ChainStatistics.worker_retries``.
        """
        retries = 0
        max_retries = getattr(self.options, "max_worker_retries", 3)
        backoff = getattr(self.options, "worker_retry_backoff_seconds", 0.05)
        while True:
            try:
                futures = [pool.submit(run_chain_generation, unit)
                           for unit in units]
                outcomes = [future.result() for future in futures]
            except concurrent.futures.BrokenExecutor:
                if self.executor_kind != "process" or retries >= max_retries:
                    raise
                retries += 1
                with contextlib.suppress(Exception):
                    pool.shutdown(wait=False, cancel_futures=True)
                delay = backoff * (2 ** (retries - 1))
                if delay > 0:
                    time.sleep(delay)
                pool = create_executor(self.executor_kind,
                                       self.options.num_workers)
                continue
            if retries:
                for outcome in outcomes:
                    outcome.chain.stats.worker_retries += retries
            return outcomes, pool

    # ------------------------------------------------------------------ #
    # Checkpointing (crash-recoverable chains; repro.synthesis.checkpoint)
    # ------------------------------------------------------------------ #
    def _checkpoint_key(self) -> Optional[str]:
        if self.store is None:
            return None
        key = getattr(self.options, "checkpoint_key", None)
        return str(key) if key else None

    def _write_checkpoint(self, generation: int, generations: List[int],
                          chains: List[MarkovChain]) -> None:
        """Persist the full resumable state after a completed generation."""
        key = self._checkpoint_key()
        if key is None:
            return
        payload = build_controller_payload(self, generation + 1,
                                           generations, chains)
        self.store.record_checkpoint(key, generation + 1, payload)
        summary = self.store_summary
        if summary is not None:
            summary["flushed_records"] += self.store.flush()
        else:  # pragma: no cover - store implies a summary today
            self.store.flush()

    def _clear_checkpoint(self) -> None:
        """Drop the job's checkpoint once the search completed normally."""
        key = self._checkpoint_key()
        if key is None:
            return
        if self.store.clear_checkpoint(key):
            summary = self.store_summary
            if summary is not None:
                summary["flushed_records"] += self.store.flush()
            else:  # pragma: no cover - store implies a summary today
                self.store.flush()

    def _try_resume(self, generations: List[int]
                    ) -> Optional[Tuple[int, List[MarkovChain]]]:
        """Restore chains and shared state from the job's last checkpoint.

        Any incompatibility — different options signature, source program,
        generation schedule, or an undecodable payload — degrades to a cold
        start (with the usual warm-store preseed), never to a wrong resume.
        """
        key = self._checkpoint_key()
        if key is None:
            return None
        entry = self.store.checkpoint_for(key)
        if entry is None:
            return None
        decoded = decode_controller_payload(
            entry[1], self.source, self.settings, self.options,
            self.proposal_region, self.keep_nops, generations)
        if decoded is None:
            # Stale checkpoint (e.g. the job spec changed): discard it so
            # the cold restart below does not re-read it forever.
            self.store.clear_checkpoint(key)
            return None

        cache_state = decoded["shared_cache"]
        self.shared_cache = EquivalenceCache.restore_state(cache_state)
        # The shared cache's insertion order *is* the append order of the
        # cache log (they grow in lockstep), so one snapshot restores both
        # — including the store-preseeded provenance of the log's head.
        self._cache_log = [(entry_key, result)
                           for entry_key, result, _, _
                           in cache_state["entries"]]
        self._store_keys = frozenset(
            entry_key for entry_key, _, _, from_store
            in cache_state["entries"] if from_store)
        self._pool = list(decoded["pool"])
        self._pool_keys = {test.freeze_key() for _, test in self._pool}
        self._analysis_log = list(decoded["analysis"])
        self._analysis_seen = {entry_key for entry_key, _
                               in self._analysis_log}
        # Everything restored was flushed before its checkpoint was
        # written, so the store already reflects the full logs.
        self._store_flush_cache_mark = len(self._cache_log)
        self._store_flush_pool_mark = len(self._pool)
        self._store_flush_analysis_mark = len(self._analysis_log)
        if self.store_summary is not None and decoded["store_summary"]:
            summary = dict(decoded["store_summary"])
            summary["path"] = self.store.path
            self.store_summary = summary

        chains = [self._build_chain(index, setting)
                  for index, setting in enumerate(self.settings)]
        for chain, state in zip(chains, decoded["chains"]):
            apply_chain_state(chain, state)
        return decoded["next_generation"], chains

    @staticmethod
    def _result_snapshot(chain: MarkovChain) -> ChainResult:
        """The cumulative ChainResult a restored chain last reported."""
        ordered = sorted(chain.verified, key=lambda c: c.perf_cost)
        return ChainResult(best=ordered[0] if ordered else None,
                           candidates=ordered, statistics=chain.stats)

    def _notify_generation(self, completed: int, total: int,
                           chains: Optional[List[MarkovChain]] = None) -> None:
        """Invoke the caller's progress listener and generation hook.

        Runs after the boundary's flush and checkpoint write; a hook
        returning ``False`` therefore interrupts the search at a resumable
        point.  The listener fires first and is purely observational — the
        serve daemon turns its payload into streaming ``watch`` events.
        """
        listener = getattr(self.options, "progress_listener", None)
        if listener is not None:
            offset = getattr(self.options, "chain_index_offset", 0)
            listener({
                "completed": completed,
                "total": total,
                "checkpoint": self._checkpoint_key() is not None,
                "chains": [
                    {"chain": offset + index,
                     "iterations": chain.stats.iterations,
                     "verified": chain.stats.verified_candidates,
                     "best_cost": min((c.perf_cost for c in chain.verified),
                                      default=None)}
                    for index, chain in enumerate(chains or [])],
            })
        hook = getattr(self.options, "generation_hook", None)
        if hook is None:
            return
        if hook(completed, total) is False:
            raise SearchInterrupted(
                f"search interrupted after generation {completed}/{total}")

    # ------------------------------------------------------------------ #
    def _preseed_from_store(self) -> None:
        """Warm the shared state from the durable store before generation 0.

        Preseeded verdicts and analyzer memos replay exactly what the
        pipeline would recompute, so they accelerate the search without
        touching its trajectory; preseeded counterexamples change the test
        suites (and therefore the trajectory), so they are gated behind
        ``options.store_preseed_counterexamples``.
        """
        if self.store is None:
            return
        summary = self.store_summary
        verdicts = self.store.verdicts_for(self.source)
        if verdicts and self.options.share_cache:
            summary["preseeded_verdicts"] = self.preseed_cache(verdicts)
            self.shared_cache.mark_store_origin(verdicts)
            self._store_keys = frozenset(
                self.shared_cache.store_origin_keys())
        for key, outcome in self.store.analysis_entries(
                strict_alignment=True).items():
            if key not in self._analysis_seen:
                self._analysis_seen.add(key)
                self._analysis_log.append((key, outcome))
                summary["preseeded_analysis"] += 1
        if getattr(self.options, "store_preseed_counterexamples", False):
            summary["preseeded_counterexamples"] = \
                self.preseed_counterexamples(
                    self.store.counterexamples_for(self.source))
        # Everything preseeded is already durable: start the flush marks
        # past it so it is never re-recorded.
        self._store_flush_cache_mark = len(self._cache_log)
        self._store_flush_pool_mark = len(self._pool)
        self._store_flush_analysis_mark = len(self._analysis_log)

    def _flush_store(self) -> None:
        """Persist this generation's fresh discoveries (single writer)."""
        if self.store is None:
            return
        summary = self.store_summary
        for key, result in self._cache_log[self._store_flush_cache_mark:]:
            if self.store.record_verdict(self.source, key, result):
                summary["flushed_verdicts"] += 1
        self._store_flush_cache_mark = len(self._cache_log)
        for _, test in self._pool[self._store_flush_pool_mark:]:
            if self.store.record_counterexample(self.source, test):
                summary["flushed_counterexamples"] += 1
        self._store_flush_pool_mark = len(self._pool)
        for key, outcome in self._analysis_log[
                self._store_flush_analysis_mark:]:
            if self.store.record_analysis(key, outcome,
                                          strict_alignment=True):
                summary["flushed_analysis"] += 1
        self._store_flush_analysis_mark = len(self._analysis_log)
        summary["flushed_records"] += self.store.flush()

    # ------------------------------------------------------------------ #
    def _build_chain(self, index: int, setting: ParameterSetting) -> MarkovChain:
        options = self.options
        # Seeds derive from the chain's *global* index: a sharded run's
        # controller sees only a contiguous slice of the settings, and the
        # offset keeps its chain ``i`` bit-identical to chain ``offset + i``
        # of the unsharded run.
        index += getattr(options, "chain_index_offset", 0)
        # One engine per chain, shared between its test suite and its
        # verification pipeline (chains must not share engines: each is
        # shipped whole to a worker).
        engine = create_engine(getattr(options, "engine", None))
        suite = TestSuite(self.source, num_initial=options.num_initial_tests,
                          seed=options.seed + index, engine=engine)
        # With a durable store, warm the chain's cache at construction time:
        # building a chain evaluates the source against itself, and that
        # verification would otherwise always escalate to the full stage —
        # even when a previous run already proved it.  A preseeded hit
        # returns exactly the verdict the pipeline would recompute, so this
        # only removes redundant work, never changes the trajectory.
        cache = None
        if self.store is not None and options.share_cache and self._cache_log:
            cache = EquivalenceCache()
            cache.seed(dict(self._cache_log), foreign=True)
            cache.mark_store_origin(self._store_keys)
        return MarkovChain(
            self.source,
            cost_settings=setting.cost,
            probabilities=setting.probabilities,
            seed=options.seed * 1009 + index,
            test_suite=suite,
            equivalence_options=options.equivalence,
            cache=cache,
            engine=engine,
            analysis=getattr(options, "analysis", None),
            proposal_region=self.proposal_region,
            keep_nops=self.keep_nops)

    def _generation_schedule(self, iterations: int) -> List[int]:
        interval = self.options.sync_interval
        # Non-positive intervals mean "no mid-run sharing", same as None —
        # never an empty schedule, which would silently run zero iterations.
        if not interval or interval <= 0 or interval >= iterations:
            return [iterations]
        schedule = [interval] * (iterations // interval)
        if iterations % interval:
            schedule.append(iterations % interval)
        return schedule

    @staticmethod
    def _remaining_budget(chain_budget: Optional[float],
                          chain: MarkovChain) -> Optional[float]:
        if chain_budget is None:
            return None
        return max(chain_budget - chain.stats.elapsed_seconds, 0.0)

    # ------------------------------------------------------------------ #
    def _cache_delta_for(self, chain_index: int
                         ) -> Dict[Tuple, EquivalenceResult]:
        """Shared entries added since this chain's last dispatch.

        Chains keep everything they were seeded with (and skip keys they
        already hold, including their own discoveries), so sending the log
        suffix is equivalent to sending the full snapshot.
        """
        if not self.options.share_cache:
            return {}
        watermark = self._cache_watermarks[chain_index]
        self._cache_watermarks[chain_index] = len(self._cache_log)
        return dict(self._cache_log[watermark:])

    def _pool_delta_for(self, chain_index: int) -> List[ProgramInput]:
        """Pool entries from *other* chains since this chain's last dispatch."""
        if not self.options.share_counterexamples:
            return []
        watermark = self._pool_watermarks[chain_index]
        self._pool_watermarks[chain_index] = len(self._pool)
        return [test for origin, test in self._pool[watermark:]
                if origin != chain_index]

    def _analysis_delta_for(self, chain_index: int
                            ) -> Dict[Tuple, AnalysisOutcome]:
        """Analyzer memo entries added since this chain's last dispatch."""
        if self.store is None:
            return {}
        watermark = self._analysis_watermarks[chain_index]
        self._analysis_watermarks[chain_index] = len(self._analysis_log)
        return dict(self._analysis_log[watermark:])

    def _absorb(self, chain_index: int, chain: MarkovChain,
                collect_counterexamples: bool = True,
                analysis_entries: Optional[Dict[Tuple, AnalysisOutcome]]
                = None) -> None:
        """Fold one worker's discoveries back into the controller state."""
        if self.options.share_cache:
            for key, value in chain.cache.local_entries().items():
                if self.shared_cache.seed({key: value}, foreign=False):
                    self._cache_log.append((key, value))
        if analysis_entries:
            for key, outcome in analysis_entries.items():
                if key not in self._analysis_seen:
                    self._analysis_seen.add(key)
                    self._analysis_log.append((key, outcome))
        discovered = chain.drain_discovered_counterexamples()
        if not self.options.share_counterexamples:
            return
        # A counterexample that can never reach a sibling chain is normally
        # not collected; a harvester (the windowed scheduler, the durable
        # store) collects everything — harvesting never feeds back into the
        # chains, so it cannot perturb the search.
        harvesting = self.collect_all_counterexamples or self.store is not None
        if not harvesting and (not collect_counterexamples
                               or len(self._pool_watermarks) < 2):
            return
        for test in discovered:
            key = test.freeze_key()
            if key in self._pool_keys:
                continue
            self._pool_keys.add(key)
            self._pool.append((chain_index, test))
