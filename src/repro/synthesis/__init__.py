"""Stochastic program synthesis for BPF (paper section 3)."""

from .cost import (
    CostSettings, DiffKind, NumTestsVariant, PerformanceGoal, ERR_MAX,
    error_cost, output_distance, performance_cost, total_cost,
)
from .proposals import OperandPools, ProposalGenerator, RewriteRuleProbabilities
from .testcases import TestCaseGenerator, TestSuite
from .params import (
    ParameterSetting, TABLE8_SETTINGS, all_parameter_settings,
    best_parameter_settings,
)
from .mcmc import ChainResult, ChainStatistics, MarkovChain, VerifiedCandidate
from .executors import SerialExecutor, create_executor, resolve_executor_kind
from .checkpoint import (
    CHECKPOINT_VERSION, apply_chain_state, build_controller_payload,
    capture_chain_state, decode_chain_state, decode_controller_payload,
    options_signature,
)
from .parallel import (
    ChainController, ChainWorkUnit, ChainWorkUnitResult, SearchInterrupted,
    run_chain_generation,
)
from .search import SearchOptions, SearchResult, Synthesizer
from .windows import (
    SegmentWindow, WindowStats, WindowedScheduler, plan_windows, split_budget,
)

__all__ = [name for name in dir() if not name.startswith("_")]
