"""Executor backends for the parallel multi-chain search engine.

The controller (:mod:`repro.synthesis.parallel`) dispatches chain work units
over a :class:`concurrent.futures.Executor`.  Three backends are supported:

``serial``
    :class:`SerialExecutor` — runs every submission inline, in submission
    order, in the calling process.  Fully deterministic; the default when
    ``num_workers == 1`` and the backend used by the reproducibility tests.

``process``
    :class:`concurrent.futures.ProcessPoolExecutor` — one OS process per
    worker; the default whenever ``num_workers > 1``.  Work units are
    pickled to the workers and their mutated chains pickled back.

``thread``
    :class:`concurrent.futures.ThreadPoolExecutor` — useful when pickling
    overhead dominates or on platforms without ``fork``; the GIL limits the
    achievable speed-up for this CPU-bound workload.

Because the controller snapshots all shared state at generation boundaries
(see :mod:`repro.synthesis.parallel`), every backend computes the same
results for the same seed — only wall-clock timing differs.
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, Optional

__all__ = ["SerialExecutor", "EXECUTOR_KINDS", "resolve_executor_kind",
           "create_executor"]

#: Accepted values for ``SearchOptions.executor``.
EXECUTOR_KINDS = ("auto", "serial", "process", "thread")


class SerialExecutor(concurrent.futures.Executor):
    """A deterministic in-process executor.

    ``submit`` runs the callable immediately and returns an
    already-completed :class:`concurrent.futures.Future`, so the dispatch
    order is exactly the completion order and no concurrency is involved.
    Used for tests and for single-worker runs, where it reproduces the
    behaviour of the original sequential engine exactly.
    """

    def __init__(self):
        self._shutdown = False

    def submit(self, fn: Callable, /, *args, **kwargs
               ) -> concurrent.futures.Future:
        if self._shutdown:
            raise RuntimeError("cannot submit to a shut-down SerialExecutor")
        future: concurrent.futures.Future = concurrent.futures.Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 — mirror executor API
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False):
        self._shutdown = True


def resolve_executor_kind(kind: str, num_workers: int) -> str:
    """Map an ``executor`` option value to a concrete backend name.

    ``auto`` picks ``process`` when more than one worker is requested and
    ``serial`` otherwise, so the default configuration stays deterministic
    and dependency-free.
    """
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"unknown executor {kind!r}; expected one of {EXECUTOR_KINDS}")
    if kind == "auto":
        return "process" if num_workers > 1 else "serial"
    return kind


def create_executor(kind: str, num_workers: int = 1
                    ) -> concurrent.futures.Executor:
    """Instantiate the executor backend named by ``kind`` (post-``auto``)."""
    kind = resolve_executor_kind(kind, num_workers)
    if kind == "serial":
        return SerialExecutor()
    workers: Optional[int] = max(num_workers, 1)
    if kind == "process":
        return concurrent.futures.ProcessPoolExecutor(max_workers=workers)
    return concurrent.futures.ThreadPoolExecutor(max_workers=workers)
