"""Proposal generation: the Markov chain's rewrite rules (paper §3.1).

Starting from the current program, a proposal is produced by one of six
rules, chosen with fixed probabilities:

1. **Replace an instruction** — new opcode and operands at a random position.
2. **Replace an operand** — one operand of a random instruction is resampled.
3. **Replace by NOP** — effectively shrinks the program.
4. **Exchange memory type 1** — a memory instruction gets a new access width
   and a new value operand; its address operand and load/store type are kept.
5. **Exchange memory type 2** — only the access width changes.
6. **Replace contiguous instructions** — up to ``k = 2`` adjacent instructions
   are replaced wholesale, enabling one-shot multi-instruction rewrites.

Rules 4-6 are K2's domain-specific additions over STOKE; the ablation in
Table 10 toggles them individually.

Operands are sampled from pools harvested from the source program (registers,
immediates, memory offsets, helper ids, map descriptors) plus a few common
constants, which keeps the random walk inside the plausible neighbourhood of
the original code.  Jump offsets are only ever sampled *forward*, so proposals
are loop-free by construction (paper §6, control-flow safety).
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Sequence, Tuple

from ..bpf import builders
from ..bpf.instruction import Instruction, NOP
from ..bpf.opcodes import AluOp, JmpOp, MemSize
from ..bpf.program import BpfProgram

__all__ = ["RewriteRuleProbabilities", "OperandPools", "ProposalGenerator"]


@dataclasses.dataclass(frozen=True)
class RewriteRuleProbabilities:
    """Probabilities of the six rewrite rules (Table 8)."""

    instruction_replacement: float = 0.2    # prob_ir
    operand_replacement: float = 0.4        # prob_or
    nop_replacement: float = 0.15           # prob_nr
    memory_exchange_1: float = 0.2          # prob_me1
    memory_exchange_2: float = 0.0          # prob_me2
    contiguous_replacement: float = 0.05    # prob_cir

    def normalized(self) -> List[float]:
        weights = [self.instruction_replacement, self.operand_replacement,
                   self.nop_replacement, self.memory_exchange_1,
                   self.memory_exchange_2, self.contiguous_replacement]
        total = sum(weights)
        if total <= 0:
            raise ValueError("at least one rewrite rule must have probability > 0")
        return [w / total for w in weights]


_COMMON_IMMEDIATES = [0, 1, 2, 4, 8, 14, 16, 32, 0xFF, 0xFFFF]
_ALU_OPS = [AluOp.ADD, AluOp.SUB, AluOp.MUL, AluOp.OR, AluOp.AND, AluOp.LSH,
            AluOp.RSH, AluOp.XOR, AluOp.MOV, AluOp.ARSH]
_JMP_OPS = [JmpOp.JEQ, JmpOp.JNE, JmpOp.JGT, JmpOp.JGE, JmpOp.JLT, JmpOp.JLE,
            JmpOp.JSGT, JmpOp.JSET]
_MEM_SIZES = [MemSize.B, MemSize.H, MemSize.W, MemSize.DW]


class OperandPools:
    """Operand values harvested from the source program.

    With ``region=(start, end)`` only the instructions inside that span are
    harvested — the *window-local* pools of the windowed scheduler
    (:mod:`repro.synthesis.windows`), which keep each window's random walk
    inside the value neighbourhood of the segment it is rewriting.
    """

    def __init__(self, source: BpfProgram,
                 region: Optional[Tuple[int, int]] = None):
        registers = set()
        immediates = set(_COMMON_IMMEDIATES)
        offsets = {0, -4, -8}
        helpers = set()
        map_fds = set()
        instructions = source.instructions if region is None else \
            source.instructions[region[0]:region[1]]
        for insn in instructions:
            registers |= set(insn.regs_read()) | set(insn.regs_written())
            if insn.is_alu or insn.is_jump:
                immediates.add(insn.imm)
            if insn.is_memory:
                offsets.add(insn.off)
                if insn.is_store_imm:
                    immediates.add(insn.imm)
            if insn.is_call:
                helpers.add(insn.imm)
            if insn.is_lddw and insn.src == 1:
                map_fds.add(insn.imm)
        registers.discard(10)
        self.registers = sorted(registers) or [0, 1, 2]
        self.base_registers = sorted(registers | {10})
        self.immediates = sorted(immediates)
        self.offsets = sorted(offsets)
        self.helpers = sorted(helpers)
        self.map_fds = sorted(map_fds)


class ProposalGenerator:
    """Generates candidate rewrites of a program (one proposal per call)."""

    def __init__(self, source: BpfProgram, rng: random.Random,
                 probabilities: RewriteRuleProbabilities | None = None,
                 contiguous_k: int = 2,
                 region: Optional[Tuple[int, int]] = None):
        if region is not None:
            start, end = region
            if not 0 <= start < end <= len(source.instructions):
                raise ValueError(f"proposal region {region} outside the "
                                 f"program's {len(source.instructions)} "
                                 "instructions")
        self.source = source
        self.rng = rng
        self.probabilities = probabilities or RewriteRuleProbabilities()
        #: Restrict every rewrite to ``[start, end)`` and harvest operand
        #: pools from that span only (windowed segment synthesis).  ``None``
        #: keeps the original whole-program behaviour.
        self.region = region
        self.pools = OperandPools(source, region=region)
        self.contiguous_k = contiguous_k
        self._rules = [
            self._replace_instruction,
            self._replace_operand,
            self._replace_with_nop,
            self._memory_exchange_type1,
            self._memory_exchange_type2,
            self._replace_contiguous,
        ]

    # ------------------------------------------------------------------ #
    def propose(self, current: Sequence[Instruction]) -> List[Instruction]:
        """Return a new candidate instruction list (the input is not mutated)."""
        candidate = list(current)
        if not candidate:
            return candidate
        weights = self.probabilities.normalized()
        rule = self.rng.choices(self._rules, weights=weights, k=1)[0]
        rule(candidate)
        return candidate

    # ------------------------------------------------------------------ #
    # Rule implementations
    # ------------------------------------------------------------------ #
    def _choose_index(self, candidate: List[Instruction]) -> int:
        if self.region is None:
            return self.rng.randrange(len(candidate))
        start, end = self.region
        return self.rng.randrange(start, min(end, len(candidate)))

    def _replace_instruction(self, candidate: List[Instruction]) -> None:
        index = self._choose_index(candidate)
        candidate[index] = self._random_instruction(index, len(candidate))

    def _replace_with_nop(self, candidate: List[Instruction]) -> None:
        index = self._choose_index(candidate)
        candidate[index] = NOP

    def _replace_contiguous(self, candidate: List[Instruction]) -> None:
        index = self._choose_index(candidate)
        limit = len(candidate) if self.region is None \
            else min(self.region[1], len(candidate))
        count = min(self.rng.randint(1, self.contiguous_k), limit - index)
        for position in range(index, index + count):
            candidate[position] = self._random_instruction(position, len(candidate))

    def _replace_operand(self, candidate: List[Instruction]) -> None:
        index = self._choose_index(candidate)
        insn = candidate[index]
        rng = self.rng
        if insn.is_nop or insn.is_exit or insn.is_lddw:
            return
        fields = []
        if insn.is_alu or insn.is_load or insn.is_store_reg or insn.is_xadd:
            fields.append("dst")
        if insn.uses_reg_source and not insn.is_store_imm:
            fields.append("src")
        if (insn.is_alu or insn.is_jump) and not insn.uses_reg_source \
                and not insn.is_call:
            fields.append("imm")
        if insn.is_memory:
            fields.append("off")
        if insn.is_conditional_jump:
            fields.append("jump_off")
        if not fields:
            return
        field = rng.choice(fields)
        if field == "dst":
            candidate[index] = insn.with_fields(dst=rng.choice(self.pools.registers))
        elif field == "src":
            pool = self.pools.base_registers if insn.is_load else self.pools.registers
            candidate[index] = insn.with_fields(src=rng.choice(pool))
        elif field == "imm":
            candidate[index] = insn.with_fields(imm=rng.choice(self.pools.immediates))
        elif field == "off":
            candidate[index] = insn.with_fields(off=rng.choice(self.pools.offsets))
        elif field == "jump_off":
            candidate[index] = insn.with_fields(
                off=self._random_jump_offset(index, len(candidate)))

    def _memory_exchange_type1(self, candidate: List[Instruction]) -> None:
        """New width and new value operand; address operand and type kept."""
        index = self._pick_memory_instruction(candidate)
        if index is None:
            return
        insn = candidate[index]
        size = self.rng.choice(_MEM_SIZES)
        new_opcode = (insn.opcode & ~0x18) | size
        insn = insn.with_fields(opcode=new_opcode)
        if insn.is_store_imm:
            insn = insn.with_fields(imm=self.rng.choice(self.pools.immediates))
        elif insn.is_store_reg or insn.is_xadd:
            insn = insn.with_fields(src=self.rng.choice(self.pools.registers))
        else:  # load: resample the destination register
            insn = insn.with_fields(dst=self.rng.choice(self.pools.registers))
        candidate[index] = insn

    def _memory_exchange_type2(self, candidate: List[Instruction]) -> None:
        """Only the access width changes."""
        index = self._pick_memory_instruction(candidate)
        if index is None:
            return
        insn = candidate[index]
        size = self.rng.choice(_MEM_SIZES)
        candidate[index] = insn.with_fields(opcode=(insn.opcode & ~0x18) | size)

    def _pick_memory_instruction(self, candidate: List[Instruction]):
        start, end = (0, len(candidate)) if self.region is None else \
            (self.region[0], min(self.region[1], len(candidate)))
        indices = [i for i in range(start, end) if candidate[i].is_memory]
        if not indices:
            return None
        return self.rng.choice(indices)

    # ------------------------------------------------------------------ #
    # Random instruction sampling
    # ------------------------------------------------------------------ #
    def _random_jump_offset(self, index: int, length: int) -> int:
        """Forward-only jump offsets keep every proposal loop-free (§6)."""
        max_forward = length - index - 2
        if max_forward <= 0:
            return 0
        return self.rng.randint(0, max_forward)

    def _random_instruction(self, index: int, length: int) -> Instruction:
        rng = self.rng
        pools = self.pools
        kind = rng.random()
        if kind < 0.35:  # ALU
            op = rng.choice(_ALU_OPS)
            is64 = rng.random() < 0.7
            dst = rng.choice(pools.registers)
            if rng.random() < 0.5:
                builder = builders.ALU64_REG if is64 else builders.ALU32_REG
                return builder(op, dst, rng.choice(pools.registers))
            builder = builders.ALU64_IMM if is64 else builders.ALU32_IMM
            return builder(op, dst, rng.choice(pools.immediates))
        if kind < 0.55:  # load
            return builders.LDX_MEM(rng.choice(_MEM_SIZES),
                                    rng.choice(pools.registers),
                                    rng.choice(pools.base_registers),
                                    rng.choice(pools.offsets))
        if kind < 0.75:  # store
            size = rng.choice(_MEM_SIZES)
            base = rng.choice(pools.base_registers)
            offset = rng.choice(pools.offsets)
            if rng.random() < 0.4:
                return builders.ST_MEM(size, base, offset,
                                       rng.choice(pools.immediates))
            if rng.random() < 0.2 and size in (MemSize.W, MemSize.DW):
                return builders.STX_XADD(size, base,
                                         rng.choice(pools.registers), offset)
            return builders.STX_MEM(size, base,
                                    rng.choice(pools.registers), offset)
        if kind < 0.9:  # conditional jump (forward only)
            op = rng.choice(_JMP_OPS)
            dst = rng.choice(pools.registers)
            offset = self._random_jump_offset(index, length)
            if rng.random() < 0.5:
                return builders.JMP_REG(op, dst, rng.choice(pools.registers), offset)
            return builders.JMP_IMM(op, dst, rng.choice(pools.immediates), offset)
        if kind < 0.95 and pools.helpers:  # helper call drawn from the source
            return builders.CALL_HELPER(rng.choice(pools.helpers))
        return NOP
